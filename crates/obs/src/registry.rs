//! Deterministic metrics registry: counters, gauges, and fixed-bucket
//! histograms behind pre-registered handles.
//!
//! All metrics are registered up front through [`RegistryBuilder`]; the
//! registry never allocates after `build()`. Handles are cheap `Arc`
//! clones around atomic slots, so sweep worker threads can share one
//! registry without locks. Snapshots iterate in registration order,
//! which makes the JSON and Prometheus expositions deterministic for a
//! given build of the binary.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Format tag stamped on every [`Registry::to_json`] document. New
/// metrics may appear under the same version; renaming or re-typing an
/// existing metric bumps it.
pub const FORMAT: &str = "lockss-metrics-v1";

/// What kind of metric a registered name refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing `u64`.
    Counter,
    /// Last-write-wins `u64`.
    Gauge,
    /// Fixed-bucket histogram of `u64` observations.
    Histogram,
}

/// A monotonically increasing counter handle.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments the counter by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge handle.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (high-water mark).
    #[inline]
    pub fn raise(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram handle.
///
/// Bucket bounds are inclusive upper edges; an implicit `+Inf` bucket
/// catches everything above the last bound. `observe` is a linear scan
/// over the (small, fixed) bound list plus three relaxed atomic adds.
#[derive(Clone)]
pub struct Histogram {
    bounds: Arc<[u64]>,
    /// One slot per bound, then the overflow slot, then count, then sum.
    slots: Arc<[AtomicU64]>,
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        let mut idx = self.bounds.len();
        for (i, &b) in self.bounds.iter().enumerate() {
            if v <= b {
                idx = i;
                break;
            }
        }
        let n = self.bounds.len();
        self.slots[idx].fetch_add(1, Ordering::Relaxed);
        self.slots[n + 1].fetch_add(1, Ordering::Relaxed);
        self.slots[n + 2].fetch_add(v, Ordering::Relaxed);
    }

    /// Total number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.slots[self.bounds.len() + 1].load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    #[inline]
    pub fn sum(&self) -> u64 {
        self.slots[self.bounds.len() + 2].load(Ordering::Relaxed)
    }

    /// Per-bucket counts in bound order, overflow last.
    fn bucket_counts(&self) -> Vec<u64> {
        (0..=self.bounds.len())
            .map(|i| self.slots[i].load(Ordering::Relaxed))
            .collect()
    }
}

enum Slots {
    Scalar(Arc<AtomicU64>),
    Histogram(Histogram),
}

struct Metric {
    name: String,
    help: String,
    kind: MetricKind,
    slots: Slots,
}

/// Builder that registers every metric up front.
///
/// Names must be non-empty `[a-z0-9_]` identifiers (Prometheus-safe)
/// and unique within the registry; violations panic at registration
/// time, which is a programming error, not a runtime condition.
#[derive(Default)]
pub struct RegistryBuilder {
    metrics: Vec<Metric>,
}

impl RegistryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn check_name(&self, name: &str) {
        assert!(
            !name.is_empty()
                && name
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_'),
            "metric name {name:?} must be non-empty [a-z0-9_]"
        );
        assert!(
            self.metrics.iter().all(|m| m.name != name),
            "metric name {name:?} registered twice"
        );
    }

    /// Registers a counter and returns its handle.
    pub fn counter(&mut self, name: &str, help: &str) -> Counter {
        self.check_name(name);
        let slot = Arc::new(AtomicU64::new(0));
        self.metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            kind: MetricKind::Counter,
            slots: Slots::Scalar(slot.clone()),
        });
        Counter(slot)
    }

    /// Registers a gauge and returns its handle.
    pub fn gauge(&mut self, name: &str, help: &str) -> Gauge {
        self.check_name(name);
        let slot = Arc::new(AtomicU64::new(0));
        self.metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            kind: MetricKind::Gauge,
            slots: Slots::Scalar(slot.clone()),
        });
        Gauge(slot)
    }

    /// Registers a histogram with the given inclusive upper bucket
    /// bounds (must be strictly increasing and non-empty).
    pub fn histogram(&mut self, name: &str, help: &str, bounds: &[u64]) -> Histogram {
        self.check_name(name);
        assert!(!bounds.is_empty(), "histogram {name:?} needs >= 1 bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram {name:?} bounds must be strictly increasing"
        );
        let slots: Arc<[AtomicU64]> = (0..bounds.len() + 3)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into();
        let h = Histogram {
            bounds: bounds.to_vec().into(),
            slots,
        };
        self.metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            kind: MetricKind::Histogram,
            slots: Slots::Histogram(h.clone()),
        });
        h
    }

    /// Finishes registration.
    pub fn build(self) -> Registry {
        Registry {
            metrics: Arc::new(self.metrics),
        }
    }
}

/// A sealed set of metrics; cheap to clone and share across threads.
#[derive(Clone)]
pub struct Registry {
    metrics: Arc<Vec<Metric>>,
}

impl Registry {
    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Renders the registry as a JSON object (format tag
    /// `lockss-metrics-v1`), metrics in registration order. Counters and
    /// gauges render as numbers; histograms as
    /// `{"buckets": [[le, count], ...], "count": n, "sum": s}` with the
    /// overflow bucket keyed `"+Inf"`.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\n  \"format\": \"{FORMAT}\",\n  \"metrics\": {{");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            let _ = write!(out, "{:?}: ", m.name);
            match &m.slots {
                Slots::Scalar(s) => {
                    let _ = write!(out, "{}", s.load(Ordering::Relaxed));
                }
                Slots::Histogram(h) => {
                    out.push_str("{\"buckets\": [");
                    let counts = h.bucket_counts();
                    for (j, c) in counts.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        if j < h.bounds.len() {
                            let _ = write!(out, "[{}, {}]", h.bounds[j], c);
                        } else {
                            let _ = write!(out, "[\"+Inf\", {c}]");
                        }
                    }
                    let _ = write!(out, "], \"count\": {}, \"sum\": {}}}", h.count(), h.sum());
                }
            }
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (version 0.0.4), metrics in registration order.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for m in self.metrics.iter() {
            let _ = writeln!(out, "# HELP {} {}", m.name, m.help);
            let kind = match m.kind {
                MetricKind::Counter => "counter",
                MetricKind::Gauge => "gauge",
                MetricKind::Histogram => "histogram",
            };
            let _ = writeln!(out, "# TYPE {} {}", m.name, kind);
            match &m.slots {
                Slots::Scalar(s) => {
                    let _ = writeln!(out, "{} {}", m.name, s.load(Ordering::Relaxed));
                }
                Slots::Histogram(h) => {
                    // Prometheus buckets are cumulative.
                    let mut cum = 0u64;
                    let counts = h.bucket_counts();
                    for (j, c) in counts.iter().enumerate() {
                        cum += c;
                        if j < h.bounds.len() {
                            let _ = writeln!(
                                out,
                                "{}_bucket{{le=\"{}\"}} {}",
                                m.name, h.bounds[j], cum
                            );
                        } else {
                            let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", m.name, cum);
                        }
                    }
                    let _ = writeln!(out, "{}_sum {}", m.name, h.sum());
                    let _ = writeln!(out, "{}_count {}", m.name, h.count());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Registry, Counter, Gauge, Histogram) {
        let mut b = RegistryBuilder::new();
        let c = b.counter("polls_started_total", "Polls called by pollers");
        let g = b.gauge("arena_live", "Live closures in the event arena");
        let h = b.histogram("poll_votes", "Votes per concluded poll", &[1, 4, 16]);
        (b.build(), c, g, h)
    }

    #[test]
    fn counters_and_gauges_roundtrip() {
        let (_r, c, g, _h) = sample();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        g.set(7);
        g.raise(3); // lower: no-op
        assert_eq!(g.get(), 7);
        g.raise(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn histogram_buckets() {
        let (_r, _c, _g, h) = sample();
        for v in [0, 1, 2, 5, 16, 17, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1041);
        assert_eq!(h.bucket_counts(), vec![2, 1, 2, 2]);
    }

    #[test]
    fn snapshots_are_deterministic() {
        let (r, c, g, h) = sample();
        c.add(2);
        g.set(11);
        h.observe(3);
        let j1 = r.to_json();
        let j2 = r.to_json();
        assert_eq!(j1, j2);
        assert!(j1.contains("\"polls_started_total\": 2"));
        assert!(j1.contains("[4, 1]"));
        let p = r.to_prometheus();
        assert!(p.contains("# TYPE polls_started_total counter"));
        assert!(p.contains("poll_votes_bucket{le=\"+Inf\"} 1"));
        assert!(p.contains("poll_votes_sum 3"));
        assert!(p.contains("arena_live 11"));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_names_panic() {
        let mut b = RegistryBuilder::new();
        b.counter("x", "");
        b.counter("x", "");
    }

    #[test]
    #[should_panic(expected = "must be non-empty")]
    fn bad_names_panic() {
        let mut b = RegistryBuilder::new();
        b.counter("Polls", "");
    }
}

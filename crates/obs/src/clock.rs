//! Wall-clock helpers: unix milliseconds and an RFC 3339 UTC formatter.
//!
//! These exist so log prefixes and heartbeats can carry human-readable
//! timestamps without a date-time dependency. They are only ever used
//! for out-of-band telemetry — simulated time lives in `lockss-sim`.

use std::time::{SystemTime, UNIX_EPOCH};

/// Milliseconds since the unix epoch, saturating at zero for clocks
/// set before 1970.
pub fn unix_ms_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Formats unix milliseconds as `YYYY-MM-DDTHH:MM:SS.mmmZ`.
///
/// Uses the standard civil-from-days calendar conversion (valid for
/// every date this code will ever see; the algorithm itself is exact
/// over ±millions of years).
pub fn utc_timestamp(unix_ms: u64) -> String {
    let secs = unix_ms / 1000;
    let ms = unix_ms % 1000;
    let days = (secs / 86_400) as i64;
    let tod = secs % 86_400;
    let (h, m, s) = (tod / 3600, (tod / 60) % 60, tod % 60);

    // civil_from_days (Hinnant): days since 1970-01-01 -> (y, m, d).
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { y + 1 } else { y };

    format!("{year:04}-{month:02}-{day:02}T{h:02}:{m:02}:{s:02}.{ms:03}Z")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_timestamps() {
        assert_eq!(utc_timestamp(0), "1970-01-01T00:00:00.000Z");
        // 2004-02-29 (leap day) 12:34:56.789
        assert_eq!(utc_timestamp(1_078_058_096_789), "2004-02-29T12:34:56.789Z");
        // 2026-08-07 00:00:00
        assert_eq!(utc_timestamp(1_786_060_800_000), "2026-08-07T00:00:00.000Z");
    }

    #[test]
    fn now_is_after_2020() {
        assert!(unix_ms_now() > 1_577_836_800_000);
    }
}

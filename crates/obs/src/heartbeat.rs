//! Sweep worker heartbeats: periodic JSONL liveness records.
//!
//! Heartbeat files are append-only telemetry (`heartbeat-<shard>.jsonl`
//! under the `--telemetry` directory). They carry enough state for a
//! supervisor — `sweep dispatch` or `sweep status` — to compute
//! progress, rate, and ETA without touching checkpoints. Appends are
//! best-effort: a lost heartbeat costs liveness information, never
//! results, so there is no fsync here.

use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::{self, Write as _};
use std::path::Path;

/// Format tag stamped on every heartbeat line. Consumers parse by key
/// and must ignore keys they do not know, so adding fields is a
/// same-version change; removing or re-typing one bumps the version.
pub const FORMAT: &str = "lockss-heartbeat-v1";

/// One heartbeat record; serialized as a single JSON line.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Heartbeat {
    /// Wall-clock milliseconds since the unix epoch at emission.
    pub unix_ms: u64,
    /// Scenario name the shard is sweeping.
    pub scenario: String,
    /// Scale label the sweep runs at (e.g. `quick`).
    pub scale: String,
    /// One-based shard index, matching the checkpoint file name (1 for
    /// an unsharded sweep).
    pub shard: u32,
    /// Total shard count (1 for an unsharded sweep).
    pub shards: u32,
    /// Seeds completed so far by this shard.
    pub seeds_done: u64,
    /// Seeds this shard is responsible for in total.
    pub seeds_total: u64,
    /// The most recently completed seed (0 before the first finishes).
    pub last_seed: u64,
    /// Polls opened so far — advances *during* a seed, not just between
    /// seeds, which is what lets a supervisor tell slow from stalled.
    pub polls: u64,
    /// Engine events executed across finished run loops.
    pub events: u64,
    /// Poll throughput since the shard started, polls per wall second.
    pub polls_per_sec: f64,
    /// Current resident set size (VmRSS) in KiB, 0 when unavailable.
    pub vm_rss_kb: u64,
    /// Live closures in the event arena after the last seed.
    pub arena_live: u64,
    /// Total slots in the event arena after the last seed.
    pub arena_total: u64,
}

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Heartbeat {
    /// Renders the record as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"format\": \"{FORMAT}\", \"unix_ms\": {}, \"scenario\": ",
            self.unix_ms
        );
        push_escaped(&mut out, &self.scenario);
        out.push_str(", \"scale\": ");
        push_escaped(&mut out, &self.scale);
        let _ = write!(
            out,
            ", \"shard\": {}, \"shards\": {}, \"seeds_done\": {}, \
             \"seeds_total\": {}, \"last_seed\": {}, \"polls\": {}, \"events\": {}, \
             \"polls_per_sec\": {}, \"vm_rss_kb\": {}, \"arena_live\": {}, \
             \"arena_total\": {}}}",
            self.shard,
            self.shards,
            self.seeds_done,
            self.seeds_total,
            self.last_seed,
            self.polls,
            self.events,
            self.polls_per_sec,
            self.vm_rss_kb,
            self.arena_live,
            self.arena_total,
        );
        out
    }

    /// Appends the record (plus newline) to `path`, creating the file
    /// if needed.
    pub fn append_to(&self, path: &Path) -> io::Result<()> {
        let mut f = OpenOptions::new().create(true).append(true).open(path)?;
        let mut line = self.to_json_line();
        line.push('\n');
        f.write_all(line.as_bytes())
    }
}

/// Current resident set size in KiB, read from `/proc/self/status`
/// (`VmRSS`). Returns 0 on platforms without procfs.
pub fn current_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmRSS:"))
                .and_then(|l| l.split_whitespace().nth(1).and_then(|v| v.parse().ok()))
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_shape() {
        let hb = Heartbeat {
            unix_ms: 1000,
            scenario: "att\"ack".into(),
            scale: "quick".into(),
            shard: 2,
            shards: 4,
            seeds_done: 3,
            seeds_total: 10,
            last_seed: 7,
            polls: 42,
            events: 99,
            polls_per_sec: 6.25,
            vm_rss_kb: 2048,
            arena_live: 5,
            arena_total: 64,
        };
        let line = hb.to_json_line();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(!line.contains('\n'));
        assert!(line.contains("\"format\": \"lockss-heartbeat-v1\""));
        assert!(line.contains("\"scenario\": \"att\\\"ack\""));
        assert!(line.contains("\"seeds_done\": 3"));
        assert!(line.contains("\"polls_per_sec\": 6.25"));
        assert!(line.contains("\"scale\": \"quick\""));
    }

    #[test]
    fn append_accumulates_lines() {
        let dir = std::env::temp_dir().join(format!("obs-hb-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("heartbeat-0.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut hb = Heartbeat::default();
        for i in 0..3 {
            hb.seeds_done = i;
            hb.append_to(&path).unwrap();
        }
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.lines().count(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rss_reads_on_linux() {
        // On Linux this must be non-zero; elsewhere 0 is acceptable.
        if cfg!(target_os = "linux") {
            assert!(current_rss_kb() > 0);
        }
    }
}

//! Profiling spans: a self/total wall-clock span tree.
//!
//! A [`Profiler`] accumulates named spans into a tree keyed by call
//! path: entering `"simulate"` under `"run"` always lands in the same
//! node, so repeated calls accumulate `calls` and `total_ns` instead of
//! growing the tree. Spans are scoped guards ([`Span`]) around an
//! `Option<SharedProfiler>`, so un-profiled runs pay one null-check per
//! site. Per-worker profilers from a sweep are merged with
//! [`Profiler::absorb`].
//!
//! Timing uses `Instant` (wall clock): profile output is strictly
//! out-of-band and never feeds back into simulation results.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;
use std::time::Instant;

/// Format tag stamped on every [`Profiler::to_json`] document. Span
/// names are not part of the contract; the document shape is.
pub const FORMAT: &str = "lockss-profile-v1";

/// A profiler shared between the runner and the world it drives.
///
/// `Rc<RefCell<..>>` because the run path is single-threaded; sweep
/// workers each own one and merge at the end.
pub type SharedProfiler = Rc<RefCell<Profiler>>;

#[derive(Debug, Clone)]
struct Node {
    name: &'static str,
    children: Vec<usize>,
    calls: u64,
    total_ns: u64,
}

/// Accumulates a span tree.
#[derive(Debug, Default, Clone)]
pub struct Profiler {
    nodes: Vec<Node>,
    /// Root node indices in first-entered order.
    roots: Vec<usize>,
    /// Indices of currently open spans, outermost first.
    stack: Vec<usize>,
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty profiler already wrapped for sharing.
    pub fn shared() -> SharedProfiler {
        Rc::new(RefCell::new(Self::new()))
    }

    fn child_named(&self, parent: Option<usize>, name: &str) -> Option<usize> {
        let siblings = match parent {
            Some(p) => &self.nodes[p].children,
            None => &self.roots,
        };
        siblings
            .iter()
            .copied()
            .find(|&i| self.nodes[i].name == name)
    }

    /// Opens a span named `name` under the currently open span.
    pub fn enter(&mut self, name: &'static str) {
        let parent = self.stack.last().copied();
        let idx = match self.child_named(parent, name) {
            Some(i) => i,
            None => {
                let i = self.nodes.len();
                self.nodes.push(Node {
                    name,
                    children: Vec::new(),
                    calls: 0,
                    total_ns: 0,
                });
                match parent {
                    Some(p) => self.nodes[p].children.push(i),
                    None => self.roots.push(i),
                }
                i
            }
        };
        self.nodes[idx].calls += 1;
        self.stack.push(idx);
    }

    /// Closes the innermost open span, crediting it `elapsed_ns`.
    pub fn exit(&mut self, elapsed_ns: u64) {
        let idx = self.stack.pop().expect("exit without matching enter");
        self.nodes[idx].total_ns += elapsed_ns;
    }

    /// Merges `other`'s span tree into this one: nodes with the same
    /// call path accumulate calls and time. Open spans in `other` are
    /// ignored (their time was never credited).
    pub fn absorb(&mut self, other: &Profiler) {
        for &r in &other.roots {
            self.absorb_node(other, r, None);
        }
    }

    fn absorb_node(&mut self, other: &Profiler, theirs: usize, parent: Option<usize>) {
        let src = &other.nodes[theirs];
        let idx = match self.child_named(parent, src.name) {
            Some(i) => i,
            None => {
                let i = self.nodes.len();
                self.nodes.push(Node {
                    name: src.name,
                    children: Vec::new(),
                    calls: 0,
                    total_ns: 0,
                });
                match parent {
                    Some(p) => self.nodes[p].children.push(i),
                    None => self.roots.push(i),
                }
                i
            }
        };
        self.nodes[idx].calls += src.calls;
        self.nodes[idx].total_ns += src.total_ns;
        for &c in &other.nodes[theirs].children.clone() {
            self.absorb_node(other, c, Some(idx));
        }
    }

    /// Self time of a node: total minus children's totals (clamped, in
    /// case clock jitter makes an inner reading exceed the outer one).
    fn self_ns(&self, idx: usize) -> u64 {
        let n = &self.nodes[idx];
        let children: u64 = n.children.iter().map(|&c| self.nodes[c].total_ns).sum();
        n.total_ns.saturating_sub(children)
    }

    /// True when every closed node's children sum to no more than the
    /// node's own total — the telescoping invariant of a span tree.
    pub fn telescopes(&self) -> bool {
        self.nodes.iter().enumerate().all(|(i, n)| {
            let children: u64 = n.children.iter().map(|&c| self.nodes[c].total_ns).sum();
            children <= n.total_ns || self.stack.contains(&i)
        })
    }

    /// Renders the tree as a `lockss-profile-v1` JSON document.
    pub fn to_json(&self, name: &str) -> String {
        let mut out = format!("{{\n  \"format\": \"{FORMAT}\",\n");
        let _ = write!(out, "  \"name\": {:?},\n  \"spans\": [", name);
        for (i, &r) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            self.render_node(&mut out, r, 2);
        }
        if !self.roots.is_empty() {
            out.push('\n');
            out.push_str("  ");
        }
        out.push_str("]\n}\n");
        out
    }

    fn render_node(&self, out: &mut String, idx: usize, depth: usize) {
        let pad = "  ".repeat(depth);
        let n = &self.nodes[idx];
        let _ = write!(
            out,
            "{pad}{{\"name\": {:?}, \"calls\": {}, \"total_ns\": {}, \"self_ns\": {}, \"children\": [",
            n.name,
            n.calls,
            n.total_ns,
            self.self_ns(idx)
        );
        for (i, &c) in n.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            self.render_node(out, c, depth + 1);
        }
        if !n.children.is_empty() {
            out.push('\n');
            out.push_str(&pad);
        }
        out.push_str("]}");
    }
}

/// A scoped span guard: credits elapsed wall time on drop.
pub struct Span {
    prof: SharedProfiler,
    start: Instant,
}

impl Span {
    /// Opens `name` when a profiler is installed; `None` otherwise —
    /// the disabled path is a single null-check.
    #[inline]
    pub fn enter(prof: &Option<SharedProfiler>, name: &'static str) -> Option<Span> {
        prof.as_ref().map(|p| {
            p.borrow_mut().enter(name);
            Span {
                prof: Rc::clone(p),
                start: Instant::now(),
            }
        })
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed().as_nanos() as u64;
        self.prof.borrow_mut().exit(elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn walk(p: &mut Profiler) {
        p.enter("run");
        p.enter("build");
        p.exit(10);
        p.enter("simulate");
        p.enter("poll");
        p.exit(5);
        p.enter("poll");
        p.exit(7);
        p.exit(60);
        p.exit(100);
    }

    #[test]
    fn paths_accumulate() {
        let mut p = Profiler::new();
        walk(&mut p);
        walk(&mut p);
        let json = p.to_json("t");
        assert!(json.contains("\"name\": \"poll\", \"calls\": 4, \"total_ns\": 24"));
        assert!(json
            .contains("\"name\": \"simulate\", \"calls\": 2, \"total_ns\": 120, \"self_ns\": 96"));
        assert!(p.telescopes());
    }

    #[test]
    fn absorb_merges_by_path() {
        let mut a = Profiler::new();
        walk(&mut a);
        let mut b = Profiler::new();
        walk(&mut b);
        b.enter("run");
        b.enter("seal");
        b.exit(3);
        b.exit(50);
        a.absorb(&b);
        let json = a.to_json("merged");
        assert!(json.contains("\"name\": \"run\", \"calls\": 3, \"total_ns\": 250"));
        assert!(json.contains("\"name\": \"seal\", \"calls\": 1, \"total_ns\": 3"));
        assert!(a.telescopes());
    }

    #[test]
    fn telescoping_violation_detected() {
        let mut p = Profiler::new();
        p.enter("outer");
        p.enter("inner");
        p.exit(100);
        p.exit(10); // inner > outer: impossible for real guards
        assert!(!p.telescopes());
    }

    #[test]
    fn span_guard_records() {
        let shared = Some(Profiler::shared());
        {
            let _outer = Span::enter(&shared, "outer");
            let _inner = Span::enter(&shared, "inner");
        }
        let p = shared.as_ref().unwrap().borrow();
        assert!(p.telescopes());
        let json = p.to_json("guard");
        assert!(json.contains("\"name\": \"outer\", \"calls\": 1"));
        assert!(json.contains("\"name\": \"inner\", \"calls\": 1"));
        assert!(Span::enter(&None, "x").is_none());
    }
}

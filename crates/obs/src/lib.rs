//! Observability layer for the LOCKSS reproduction: a deterministic
//! metrics registry, a profiling span tree, and sweep heartbeat records.
//!
//! Everything in this crate is strictly *out-of-band*: nothing here may
//! influence simulation results. Instrumented code holds pre-registered
//! handles behind an `Option`, so a run without observability pays one
//! null-check per site — the same discipline as `TraceSink` in
//! `lockss-core`. The crate is dependency-free (std only) so that even
//! the leaf `lockss-sim` crate can depend on it.

#![deny(missing_docs)]

mod clock;
mod heartbeat;
mod profile;
mod registry;

pub use clock::{unix_ms_now, utc_timestamp};
pub use heartbeat::{current_rss_kb, Heartbeat, FORMAT as HEARTBEAT_FORMAT};
pub use profile::{Profiler, SharedProfiler, Span, FORMAT as PROFILE_FORMAT};
pub use registry::{
    Counter, Gauge, Histogram, MetricKind, Registry, RegistryBuilder, FORMAT as METRICS_FORMAT,
};

//! A tiny std-only benchmark harness (the offline dependency policy bans
//! `criterion`), plus the benchmarks under `benches/`:
//!
//! - `substrates`: event queue, RNG, network delay, schedule, damage sets;
//! - `protocol`: SHA-256, MBF prove/verify, sessions, the real-mode
//!   exchange, and whole-world simulation steps;
//! - `figures`: one smoke-scale benchmark per paper table/figure (the full
//!   sweeps are the `lockss-experiments` binaries).
//!
//! Each bench binary (`cargo bench --bench substrates`) prints a table and
//! writes `results/BENCH_<group>.json`:
//!
//! ```json
//! {"group": "substrates", "results": [
//!   {"name": "rng/exponential", "iters": 52000, "samples": 5,
//!    "mean_ns": 19.3, "min_ns": 18.9, "max_ns": 20.1,
//!    "throughput_bytes": null}
//! ]}
//! ```
//!
//! Timing model: one calibration call sizes the per-sample iteration count
//! to roughly `SAMPLE_BUDGET`, then `SAMPLES` samples run back to back;
//! the statistics are over per-iteration sample means. This is deliberately
//! simpler than criterion — no outlier rejection, no bootstrap — because
//! the benches exist to keep regressions visible, not to publish numbers.

pub mod diff;

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Wall-clock budget per sample; the calibration call picks an iteration
/// count so one sample lasts about this long.
const SAMPLE_BUDGET: Duration = Duration::from_millis(50);

/// Samples per benchmark.
const SAMPLES: u32 = 5;

/// Iteration-count ceiling per sample (guards against sub-nanosecond
/// routines spinning forever).
const MAX_ITERS: u64 = 10_000_000;

/// One benchmark's measured statistics.
#[derive(Clone, Debug)]
pub struct BenchResult {
    pub name: String,
    /// Iterations per sample.
    pub iters: u64,
    pub samples: u32,
    /// Mean/min/max of the per-sample mean iteration times, nanoseconds.
    pub mean_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
    /// Bytes processed per iteration, when the bench declares throughput.
    pub throughput_bytes: Option<u64>,
}

impl BenchResult {
    /// Throughput in MiB/s, when declared.
    pub fn mib_per_sec(&self) -> Option<f64> {
        let bytes = self.throughput_bytes?;
        if self.mean_ns <= 0.0 {
            return None;
        }
        Some(bytes as f64 / (1 << 20) as f64 / (self.mean_ns * 1e-9))
    }
}

/// A named group of benchmarks; collects results and writes the JSON
/// report on [`Harness::finish`].
pub struct Harness {
    group: String,
    results: Vec<BenchResult>,
}

impl Harness {
    pub fn new(group: &str) -> Harness {
        println!("benchmark group: {group}");
        Harness {
            group: group.to_string(),
            results: Vec::new(),
        }
    }

    /// Benchmarks `f`, timing `iters` calls per sample.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        self.run(name, None, &mut f);
    }

    /// Benchmarks `f`, reporting bytes-per-iteration throughput.
    pub fn bench_bytes<R>(&mut self, name: &str, bytes: u64, mut f: impl FnMut() -> R) {
        self.run(name, Some(bytes), &mut f);
    }

    /// Benchmarks two routines interleaved — `a, b, a, b, …` with
    /// per-call timing — so slow clock drift (thermal throttling,
    /// frequency scaling) affects both equally and cancels out of their
    /// *difference*. This is the right tool when the quantity of interest
    /// is an overhead ratio between two variants of the same work (e.g.
    /// traced vs. untraced runs); sequential `bench` calls can easily show
    /// a 10% phantom delta from drift alone. Per-call `Instant` overhead
    /// is tens of nanoseconds, so keep the routines at ≥ ~100µs per call.
    pub fn bench_pair<RA, RB>(
        &mut self,
        name_a: &str,
        mut a: impl FnMut() -> RA,
        name_b: &str,
        mut b: impl FnMut() -> RB,
    ) {
        let one = {
            let t = Instant::now();
            std::hint::black_box(a());
            t.elapsed()
        };
        // Each interleaved iteration runs both routines; halve the budget.
        let iters = calibrate(one + one).max(1);
        let mut means_a = Vec::with_capacity(SAMPLES as usize);
        let mut means_b = Vec::with_capacity(SAMPLES as usize);
        for _ in 0..SAMPLES {
            let mut elapsed_a: u128 = 0;
            let mut elapsed_b: u128 = 0;
            for _ in 0..iters {
                let t = Instant::now();
                std::hint::black_box(a());
                elapsed_a += t.elapsed().as_nanos();
                let t = Instant::now();
                std::hint::black_box(b());
                elapsed_b += t.elapsed().as_nanos();
            }
            means_a.push(elapsed_a as f64 / iters as f64);
            means_b.push(elapsed_b as f64 / iters as f64);
        }
        self.record(name_a, iters, None, &means_a);
        self.record(name_b, iters, None, &means_b);
    }

    /// Benchmarks `routine` on a fresh `setup()` value each iteration
    /// (criterion's `iter_batched`); setup time is excluded by building
    /// inputs before the clock starts, in bounded batches so a cheap
    /// routine's calibrated iteration count never materializes millions
    /// of live setup values at once.
    pub fn bench_with_setup<T, R>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> T,
        mut routine: impl FnMut(T) -> R,
    ) {
        const SETUP_BATCH: u64 = 1_024;
        // Calibrate on one input.
        let one = {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            t.elapsed()
        };
        let iters = calibrate(one);
        let mut sample_means = Vec::with_capacity(SAMPLES as usize);
        for _ in 0..SAMPLES {
            let mut elapsed_ns: u128 = 0;
            let mut remaining = iters;
            while remaining > 0 {
                let n = remaining.min(SETUP_BATCH);
                let inputs: Vec<T> = (0..n).map(|_| setup()).collect();
                let t = Instant::now();
                for input in inputs {
                    std::hint::black_box(routine(input));
                }
                elapsed_ns += t.elapsed().as_nanos();
                remaining -= n;
            }
            sample_means.push(elapsed_ns as f64 / iters as f64);
        }
        self.record(name, iters, None, &sample_means);
    }

    fn run<R>(&mut self, name: &str, bytes: Option<u64>, f: &mut impl FnMut() -> R) {
        let one = {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed()
        };
        let iters = calibrate(one);
        let mut sample_means = Vec::with_capacity(SAMPLES as usize);
        for _ in 0..SAMPLES {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            sample_means.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.record(name, iters, bytes, &sample_means);
    }

    fn record(&mut self, name: &str, iters: u64, bytes: Option<u64>, sample_means: &[f64]) {
        let mean = sample_means.iter().sum::<f64>() / sample_means.len() as f64;
        let min = sample_means.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = sample_means.iter().cloned().fold(0.0f64, f64::max);
        let result = BenchResult {
            name: name.to_string(),
            iters,
            samples: SAMPLES,
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
            throughput_bytes: bytes,
        };
        match result.mib_per_sec() {
            Some(rate) => println!("  {name:<44} {:>12}/iter  {rate:>9.1} MiB/s", fmt_ns(mean)),
            None => println!(
                "  {name:<44} {:>12}/iter  [{} .. {}]",
                fmt_ns(mean),
                fmt_ns(min),
                fmt_ns(max)
            ),
        }
        self.results.push(result);
    }

    /// Writes `results/BENCH_<group>.json` and returns the results.
    pub fn finish(self) -> Vec<BenchResult> {
        let mut json = String::new();
        let _ = write!(json, "{{\"group\": {:?}, \"results\": [", self.group);
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                json.push_str(", ");
            }
            let _ = write!(
                json,
                "{{\"name\": {:?}, \"iters\": {}, \"samples\": {}, \
                 \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \
                 \"throughput_bytes\": {}}}",
                r.name,
                r.iters,
                r.samples,
                r.mean_ns,
                r.min_ns,
                r.max_ns,
                r.throughput_bytes
                    .map_or("null".to_string(), |b| b.to_string()),
            );
        }
        json.push_str("]}\n");

        let dir = results_dir();
        let path = dir.join(format!("BENCH_{}.json", self.group));
        let write = fs::create_dir_all(dir)
            .and_then(|_| fs::File::create(&path))
            .and_then(|mut f| f.write_all(json.as_bytes()));
        match write {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
        self.results
    }
}

/// The workspace-root `results/` directory (cargo runs benches with the
/// package directory as CWD, so a relative path would scatter reports).
fn results_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"))
}

/// Picks iterations-per-sample so one sample costs about [`SAMPLE_BUDGET`].
fn calibrate(one: Duration) -> u64 {
    if one >= SAMPLE_BUDGET {
        return 1;
    }
    let one_ns = one.as_nanos().max(1) as u64;
    (SAMPLE_BUDGET.as_nanos() as u64 / one_ns).clamp(1, MAX_ITERS)
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrate_bounds() {
        assert_eq!(calibrate(Duration::from_secs(1)), 1);
        assert_eq!(calibrate(SAMPLE_BUDGET), 1);
        let fast = calibrate(Duration::from_nanos(10));
        assert!(fast > 1_000 && fast <= MAX_ITERS);
        assert_eq!(calibrate(Duration::ZERO), MAX_ITERS);
    }

    #[test]
    fn bench_produces_sane_stats_and_json() {
        let mut h = Harness::new("selftest");
        h.bench("noop-ish", || std::hint::black_box(3u64.wrapping_mul(7)));
        h.bench_bytes("hash-ish", 1024, || {
            std::hint::black_box([0u8; 1024].iter().map(|&b| b as u64).sum::<u64>())
        });
        let results = h.finish();
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(r.mean_ns >= r.min_ns && r.mean_ns <= r.max_ns);
            assert!(r.min_ns > 0.0);
        }
        assert!(results[1].mib_per_sec().unwrap() > 0.0);
        let path = results_dir().join("BENCH_selftest.json");
        let json = fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"group\": \"selftest\""));
        assert!(json.contains("\"throughput_bytes\": 1024"));
        let _ = fs::remove_file(&path);
    }
}

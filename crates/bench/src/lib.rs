//! Benchmark crate: see `benches/` for the Criterion harnesses.
//!
//! - `substrates`: event queue, RNG, network delay, schedule, damage sets;
//! - `protocol`: SHA-256, MBF prove/verify, sessions, the real-mode
//!   exchange, and whole-world simulation steps;
//! - `figures`: one smoke-scale benchmark per paper table/figure (the full
//!   sweeps are the `lockss-experiments` binaries).

//! Bench-report parsing and comparison: the perf-trajectory gate.
//!
//! `results/BENCH_<group>.json` files (written by [`crate::Harness`]) and
//! the merged trajectory anchors (`results/BENCH_baseline.json`,
//! `results/BENCH_opt2.json`, which wrap per-group reports in a `groups`
//! array) are parsed by the workspace's shared fixed-schema JSON reader
//! (`lockss_sim::json`; offline dependency policy: no `serde`), then
//! compared mean-vs-mean with a noise band derived from each side's
//! min/max spread:
//!
//! - a benchmark is *flagged* when its mean moved by more than the band in
//!   either direction;
//! - the CI gate [`gate`] fails only on *regressions* beyond a threshold
//!   (25% in CI) on the named hot benches, so the trajectory can only
//!   ratchet forward.

use std::fmt;

/// One benchmark's parsed statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedBench {
    pub name: String,
    pub mean_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
}

impl ParsedBench {
    /// Relative spread of the sample means, `(max - min) / mean`.
    fn rel_spread(&self) -> f64 {
        if self.mean_ns <= 0.0 {
            return 0.0;
        }
        (self.max_ns - self.min_ns).max(0.0) / self.mean_ns
    }
}

/// A parse failure with a byte offset for context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for ParseError {}

// ---------------------------------------------------------------------
// Report extraction.
// ---------------------------------------------------------------------

use lockss_sim::json::{self, Value};

/// Convenience lookups over the shared reader's [`Value`] for the bench
/// schema (optional fields, `Option`-style access).
fn field<'v>(v: &'v Value, key: &str) -> Option<&'v Value> {
    match v {
        Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, f)| f),
        _ => None,
    }
}

fn field_f64(v: &Value, key: &str) -> Option<f64> {
    field(v, key).and_then(|f| f.as_f64(key).ok())
}

/// Parses one report file's benchmarks, in file order.
///
/// Accepts both shapes in the trajectory: a flat per-group report
/// (`{"group": ..., "results": [...]}`) and a merged anchor
/// (`{..., "groups": [<flat report>, ...]}`).
pub fn parse_report(text: &str) -> Result<Vec<ParsedBench>, ParseError> {
    let root = json::parse(text).map_err(|e| ParseError {
        message: e.message,
        at: e.at,
    })?;
    let mut out = Vec::new();
    if let Some(groups) = field(&root, "groups").and_then(|g| g.as_array("groups").ok()) {
        for g in groups {
            extract_group(g, &mut out)?;
        }
    } else {
        extract_group(&root, &mut out)?;
    }
    Ok(out)
}

fn extract_group(group: &Value, out: &mut Vec<ParsedBench>) -> Result<(), ParseError> {
    let results = field(group, "results")
        .and_then(|r| r.as_array("results").ok())
        .ok_or(ParseError {
            message: "report has no 'results' array".to_string(),
            at: 0,
        })?;
    for r in results {
        match (
            field(r, "name").and_then(|n| n.as_str("name").ok()),
            field_f64(r, "mean_ns"),
            field_f64(r, "min_ns"),
            field_f64(r, "max_ns"),
        ) {
            (Some(name), Some(mean_ns), Some(min_ns), Some(max_ns)) => out.push(ParsedBench {
                name: name.to_string(),
                mean_ns,
                min_ns,
                max_ns,
            }),
            _ => {
                return Err(ParseError {
                    message: "result entry missing name/mean_ns/min_ns/max_ns".to_string(),
                    at: 0,
                })
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Comparison.
// ---------------------------------------------------------------------

/// The noise floor: deltas within ±5% are never flagged, whatever the
/// measured spreads claim (five samples understate tail noise).
pub const NOISE_FLOOR: f64 = 0.05;

/// One benchmark's baseline-vs-new comparison.
#[derive(Clone, Debug)]
pub struct BenchDelta {
    /// Benchmark name (exact match between the two reports).
    pub name: String,
    /// Baseline mean, nanoseconds.
    pub base_mean_ns: f64,
    /// New mean, nanoseconds.
    pub new_mean_ns: f64,
    /// `new / base`: below 1 is a speedup.
    pub ratio: f64,
    /// Relative noise band: the larger of the two runs' min–max spreads,
    /// floored at [`NOISE_FLOOR`].
    pub noise_band: f64,
}

impl BenchDelta {
    /// True if the mean moved beyond the noise band (either direction).
    pub fn significant(&self) -> bool {
        (self.ratio - 1.0).abs() > self.noise_band
    }

    /// True if this is a slowdown beyond `threshold` (e.g. `0.25` for
    /// +25%) *and* beyond the noise band.
    pub fn regressed_beyond(&self, threshold: f64) -> bool {
        self.ratio > 1.0 + threshold.max(self.noise_band)
    }
}

/// The outcome of comparing two reports.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Benchmarks present in both reports, in baseline order.
    pub deltas: Vec<BenchDelta>,
    /// Baseline benchmarks absent from the new report.
    pub missing: Vec<String>,
    /// New benchmarks absent from the baseline (not an error: the
    /// trajectory grows).
    pub added: Vec<String>,
}

/// Compares baseline and new benchmark lists by exact name.
pub fn diff_benches(base: &[ParsedBench], new: &[ParsedBench]) -> DiffReport {
    let mut report = DiffReport::default();
    for b in base {
        match new.iter().find(|n| n.name == b.name) {
            None => report.missing.push(b.name.clone()),
            Some(n) => {
                let ratio = if b.mean_ns > 0.0 {
                    n.mean_ns / b.mean_ns
                } else {
                    1.0
                };
                report.deltas.push(BenchDelta {
                    name: b.name.clone(),
                    base_mean_ns: b.mean_ns,
                    new_mean_ns: n.mean_ns,
                    ratio,
                    noise_band: b.rel_spread().max(n.rel_spread()).max(NOISE_FLOOR),
                });
            }
        }
    }
    for n in new {
        if !base.iter().any(|b| b.name == n.name) {
            report.added.push(n.name.clone());
        }
    }
    report
}

/// True if `name` matches `pattern`: exact, or prefix when the pattern
/// ends with `*` (`"realproto/*"`, `"fig*"`).
pub fn name_matches(pattern: &str, name: &str) -> bool {
    match pattern.strip_suffix('*') {
        Some(prefix) => name.starts_with(prefix),
        None => name == pattern,
    }
}

/// The hot benches the CI regression gate protects, as name patterns.
pub const GATED_BENCHES: [&str; 5] = [
    "world/simulate*",
    "world/scale*",
    "realproto/*",
    "fig*",
    "run/untraced",
];

/// Returns the gated benches that regressed beyond `threshold`
/// (new/base > 1 + threshold, and beyond noise). An empty result means the
/// gate passes; a gated baseline bench *disappearing* is the caller's
/// problem (reported via [`DiffReport::missing`]).
pub fn gate<'r>(report: &'r DiffReport, patterns: &[&str], threshold: f64) -> Vec<&'r BenchDelta> {
    report
        .deltas
        .iter()
        .filter(|d| patterns.iter().any(|p| name_matches(p, &d.name)))
        .filter(|d| d.regressed_beyond(threshold))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench(name: &str, mean: f64, min: f64, max: f64) -> ParsedBench {
        ParsedBench {
            name: name.to_string(),
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
        }
    }

    #[test]
    fn parses_flat_report() {
        let text = r#"{"group": "protocol", "results": [
            {"name": "a/b", "iters": 10, "samples": 5,
             "mean_ns": 100.0, "min_ns": 95.0, "max_ns": 105.0,
             "throughput_bytes": null}]}"#;
        let parsed = parse_report(text).unwrap();
        assert_eq!(parsed, vec![bench("a/b", 100.0, 95.0, 105.0)]);
    }

    #[test]
    fn parses_merged_anchor() {
        let text = r#"{"note": "x", "recorded": "2026-07-28", "groups": [
            {"group": "g1", "results": [{"name": "a", "mean_ns": 1.0, "min_ns": 1.0, "max_ns": 1.0}]},
            {"group": "g2", "results": [{"name": "b", "mean_ns": 2.0, "min_ns": 2.0, "max_ns": 2.0}]}]}"#;
        let parsed = parse_report(text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].name, "b");
    }

    #[test]
    fn parse_errors_carry_position() {
        let err = parse_report("{\"group\": }").unwrap_err();
        assert!(err.at > 0, "{err}");
        assert!(parse_report("[1, 2]").is_err(), "no results array");
    }

    #[test]
    fn parses_the_checked_in_baseline() {
        let text = include_str!("../../../results/BENCH_baseline.json");
        let parsed = parse_report(text).unwrap();
        assert!(parsed.len() >= 20, "got {}", parsed.len());
        assert!(parsed.iter().any(|b| b.name == "crypto/sha256/1048576B"));
        assert!(parsed
            .iter()
            .all(|b| b.mean_ns > 0.0 && b.min_ns <= b.mean_ns && b.mean_ns <= b.max_ns));
    }

    #[test]
    fn diff_flags_only_beyond_noise() {
        let base = vec![
            bench("x", 100.0, 98.0, 102.0),
            bench("y", 100.0, 98.0, 102.0),
        ];
        let new = vec![
            bench("x", 103.0, 101.0, 105.0),
            bench("y", 150.0, 148.0, 152.0),
        ];
        let report = diff_benches(&base, &new);
        assert!(!report.deltas[0].significant(), "3% is inside the floor");
        assert!(report.deltas[1].significant(), "50% is a real move");
        assert!((report.deltas[1].ratio - 1.5).abs() < 1e-9);
    }

    #[test]
    fn missing_and_added_are_reported() {
        let base = vec![bench("gone", 1.0, 1.0, 1.0), bench("kept", 1.0, 1.0, 1.0)];
        let new = vec![bench("kept", 1.0, 1.0, 1.0), bench("fresh", 1.0, 1.0, 1.0)];
        let report = diff_benches(&base, &new);
        assert_eq!(report.missing, vec!["gone"]);
        assert_eq!(report.added, vec!["fresh"]);
        assert_eq!(report.deltas.len(), 1);
    }

    #[test]
    fn gate_matches_patterns_and_threshold() {
        let base = vec![
            bench("realproto/full exchange (intact)", 100.0, 99.0, 101.0),
            bench("world/simulate 30 days", 100.0, 99.0, 101.0),
            bench("engine/schedule+run", 100.0, 99.0, 101.0),
        ];
        let new = vec![
            bench("realproto/full exchange (intact)", 140.0, 139.0, 141.0),
            bench("world/simulate 30 days", 110.0, 109.0, 111.0),
            bench("engine/schedule+run", 300.0, 299.0, 301.0),
        ];
        let report = diff_benches(&base, &new);
        let offenders = gate(&report, &GATED_BENCHES, 0.25);
        // realproto +40% trips; world/simulate +10% is under 25%; the
        // engine bench is not gated at all.
        assert_eq!(offenders.len(), 1);
        assert_eq!(offenders[0].name, "realproto/full exchange (intact)");
    }

    #[test]
    fn speedups_never_trip_the_gate() {
        let base = vec![bench("fig2/baseline point", 100.0, 99.0, 101.0)];
        let new = vec![bench("fig2/baseline point", 20.0, 19.0, 21.0)];
        let report = diff_benches(&base, &new);
        assert!(gate(&report, &GATED_BENCHES, 0.25).is_empty());
        assert!(report.deltas[0].significant());
    }
}

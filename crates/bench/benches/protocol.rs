//! Benchmarks of the protocol layers: real crypto substrates (SHA-256,
//! MBF, sessions), the real-mode exchange, and whole simulated worlds.

use std::hint::black_box;

use lockss_adversary::MobileTakeover;
use lockss_bench::Harness;
use lockss_core::realproto::{run_real_exchange, RealParams, RealPoller, RealVoter};
use lockss_core::types::Identity;
use lockss_core::{World, WorldConfig};
use lockss_crypto::mbf::{MbfParams, MbfPuzzle};
use lockss_crypto::sha256::sha256;
use lockss_effort::CostModel;
use lockss_net::session::Session;
use lockss_sim::{Duration, Engine, SimTime};
use lockss_storage::AuSpec;

fn bench_crypto(h: &mut Harness) {
    for size in [1usize << 10, 1 << 16, 1 << 20] {
        let data = vec![0xABu8; size];
        h.bench_bytes(&format!("crypto/sha256/{size}B"), size as u64, move || {
            black_box(sha256(&data))
        });
    }

    let params = MbfParams {
        table_bits: 14,
        walk_len: 128,
        n_walks: 4,
        difficulty_bits: 2,
    };
    let puzzle = MbfPuzzle::new(params, 99);
    let mut i = 0u64;
    h.bench("mbf/prove", || {
        i += 1;
        black_box(puzzle.prove(&i.to_le_bytes()))
    });
    let proof = puzzle.prove(b"fixed");
    h.bench("mbf/verify", || black_box(puzzle.verify(b"fixed", &proof)));

    let (mut tx, mut rx) = Session::pair(42);
    let payload = vec![0u8; 1_024];
    h.bench("session/seal+open", move || {
        let sealed = tx.seal(&payload);
        black_box(rx.open(&payload, &sealed))
    });
}

fn bench_real_exchange(h: &mut Harness) {
    h.bench("realproto/full exchange (intact)", || {
        let params = RealParams::small();
        let mut poller = RealPoller::new(Identity::loyal(0), 1, &params);
        let mut voter = RealVoter::new(Identity::loyal(1), 2, &params);
        black_box(run_real_exchange(&mut poller, &mut voter, b"bench-nonce"))
    });
    h.bench("realproto/full exchange (1 repair)", || {
        let params = RealParams::small();
        let mut poller = RealPoller::new(Identity::loyal(0), 1, &params);
        poller.replica.damage(2);
        let mut voter = RealVoter::new(Identity::loyal(1), 2, &params);
        black_box(run_real_exchange(&mut poller, &mut voter, b"bench-nonce"))
    });
    // The poll-level hash cache at work: ten votes against one poller, one
    // AU hashing pass shared by all evaluations.
    let params = RealParams::small();
    let mut poller = RealPoller::new(Identity::loyal(0), 1, &params);
    let votes: Vec<_> = (0..10)
        .map(|i| {
            let mut voter = RealVoter::new(Identity::loyal(1 + i), 2 + i as u64, &params);
            let (challenge, intro) = poller.solicit_effort(b"bench-nonce", voter.identity);
            voter
                .solicit(&challenge, &intro, b"bench-nonce")
                .expect("honest voter")
        })
        .collect();
    h.bench("realproto/evaluate 10 votes (one poll)", move || {
        for v in &votes {
            black_box(poller.evaluate(b"bench-nonce", v).expect("valid vote"));
        }
    });
}

fn sim_config(n_peers: usize, n_aus: usize) -> WorldConfig {
    let au_spec = AuSpec {
        size_bytes: 100_000_000,
        block_bytes: 1_000_000,
    };
    let mut cfg = WorldConfig {
        n_peers,
        n_aus,
        au_spec,
        mtbf_years: 5.0,
        seed: 1,
        ..WorldConfig::default()
    };
    cfg.cost = CostModel::default().with_au_bytes(au_spec.size_bytes);
    cfg
}

fn bench_world(h: &mut Harness) {
    h.bench("world/build 100 peers x 10 AUs", || {
        black_box(World::new(sim_config(100, 10)))
    });
    h.bench("world/simulate 30 days, 50 peers x 5 AUs", || {
        let mut world = World::new(sim_config(50, 5));
        let mut eng: Engine<World> = Engine::new();
        world.start(&mut eng);
        eng.run_until(&mut world, SimTime::ZERO + Duration::from_days(30));
        black_box(eng.executed())
    });
    // The compromise/cure/poisoned-repair machinery under a weekly
    // migration: holds the mobile-adversary overhead on the same world
    // shape as the plain simulate bench above.
    h.bench(
        "world/simulate 30 days mobile-takeover, 50 peers x 5 AUs",
        || {
            let mut world = World::new(sim_config(50, 5));
            world.install_adversary(Box::new(
                MobileTakeover::new(8).with_period(Duration::from_days(7)),
            ));
            let mut eng: Engine<World> = Engine::new();
            world.start(&mut eng);
            eng.run_until(&mut world, SimTime::ZERO + Duration::from_days(30));
            black_box(eng.executed())
        },
    );
}

fn main() {
    let mut h = Harness::new("protocol");
    bench_crypto(&mut h);
    bench_real_exchange(&mut h);
    bench_world(&mut h);
    h.finish();
}

//! Benchmarks of the protocol layers: real crypto substrates (SHA-256,
//! MBF, sessions), the real-mode exchange, and whole simulated worlds.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use lockss_core::realproto::{run_real_exchange, RealParams, RealPoller, RealVoter};
use lockss_core::types::Identity;
use lockss_core::{World, WorldConfig};
use lockss_crypto::mbf::{MbfParams, MbfPuzzle};
use lockss_crypto::sha256::sha256;
use lockss_effort::CostModel;
use lockss_net::session::Session;
use lockss_sim::{Duration, Engine, SimTime};
use lockss_storage::AuSpec;

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    for size in [1usize << 10, 1 << 16, 1 << 20] {
        let data = vec![0xABu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("sha256/{size}B"), |b| {
            b.iter(|| black_box(sha256(&data)));
        });
    }
    g.finish();

    let params = MbfParams {
        table_bits: 14,
        walk_len: 128,
        n_walks: 4,
        difficulty_bits: 2,
    };
    let puzzle = MbfPuzzle::new(params, 99);
    c.bench_function("mbf/prove", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(puzzle.prove(&i.to_le_bytes()))
        });
    });
    let proof = puzzle.prove(b"fixed");
    c.bench_function("mbf/verify", |b| {
        b.iter(|| black_box(puzzle.verify(b"fixed", &proof)));
    });

    c.bench_function("session/seal+open", |b| {
        let (mut tx, mut rx) = Session::pair(42);
        let payload = vec![0u8; 1_024];
        b.iter(|| {
            let sealed = tx.seal(&payload);
            black_box(rx.open(&payload, &sealed))
        });
    });
}

fn bench_real_exchange(c: &mut Criterion) {
    c.bench_function("realproto/full exchange (intact)", |b| {
        let params = RealParams::small();
        b.iter(|| {
            let mut poller = RealPoller::new(Identity::loyal(0), 1, &params);
            let mut voter = RealVoter::new(Identity::loyal(1), 2, &params);
            black_box(run_real_exchange(&mut poller, &mut voter, b"bench-nonce"))
        });
    });
    c.bench_function("realproto/full exchange (1 repair)", |b| {
        let params = RealParams::small();
        b.iter(|| {
            let mut poller = RealPoller::new(Identity::loyal(0), 1, &params);
            poller.replica.damage(2);
            let mut voter = RealVoter::new(Identity::loyal(1), 2, &params);
            black_box(run_real_exchange(&mut poller, &mut voter, b"bench-nonce"))
        });
    });
}

fn sim_config(n_peers: usize, n_aus: usize) -> WorldConfig {
    let au_spec = AuSpec {
        size_bytes: 100_000_000,
        block_bytes: 1_000_000,
    };
    let mut cfg = WorldConfig {
        n_peers,
        n_aus,
        au_spec,
        mtbf_years: 5.0,
        seed: 1,
        ..WorldConfig::default()
    };
    cfg.cost = CostModel::default().with_au_bytes(au_spec.size_bytes);
    cfg
}

fn bench_world(c: &mut Criterion) {
    let mut g = c.benchmark_group("world");
    g.sample_size(10);
    g.bench_function("build 100 peers x 10 AUs", |b| {
        b.iter(|| black_box(World::new(sim_config(100, 10))));
    });
    g.bench_function("simulate 30 days, 50 peers x 5 AUs", |b| {
        b.iter(|| {
            let mut world = World::new(sim_config(50, 5));
            let mut eng: Engine<World> = Engine::new();
            world.start(&mut eng);
            eng.run_until(&mut world, SimTime::ZERO + Duration::from_days(30));
            black_box(eng.executed())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_crypto, bench_real_exchange, bench_world);
criterion_main!(benches);

//! Micro-benchmarks of the simulation substrates: event queue, RNG,
//! network delay computation, schedule reservation, damage sets.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use lockss_core::schedule::TaskSchedule;
use lockss_net::{LinkSpec, Network};
use lockss_sim::{Duration, Engine, SimRng, SimTime};
use lockss_storage::Replica;

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine/schedule+run 10k events", |b| {
        b.iter(|| {
            let mut eng: Engine<u64> = Engine::new();
            for i in 0..10_000u64 {
                eng.schedule_at(SimTime(i % 997), |w: &mut u64, _| *w += 1);
            }
            let mut w = 0u64;
            eng.run_until(&mut w, SimTime(1_000));
            black_box(w)
        });
    });

    c.bench_function("engine/self-rescheduling chain 10k", |b| {
        fn tick(w: &mut u64, e: &mut Engine<u64>) {
            *w += 1;
            if *w < 10_000 {
                e.schedule_in(Duration(1), tick);
            }
        }
        b.iter(|| {
            let mut eng: Engine<u64> = Engine::new();
            eng.schedule_at(SimTime(0), tick);
            let mut w = 0u64;
            eng.run_until(&mut w, SimTime(u64::MAX - 1));
            black_box(w)
        });
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/exponential", |b| {
        let mut rng = SimRng::seed_from_u64(1);
        let mean = Duration::from_days(100);
        b.iter(|| black_box(rng.exponential(mean)));
    });
    c.bench_function("rng/sample 20 of 100", |b| {
        let mut rng = SimRng::seed_from_u64(2);
        let items: Vec<u32> = (0..100).collect();
        b.iter(|| black_box(rng.sample(&items, 20)));
    });
}

fn bench_network(c: &mut Criterion) {
    let mut rng = SimRng::seed_from_u64(3);
    let mut net = Network::new();
    let nodes = net.add_sampled_nodes(100, &mut rng);
    c.bench_function("net/transfer_delay", |b| {
        b.iter(|| black_box(net.transfer_delay(nodes[3], nodes[77], 10_256)));
    });
    c.bench_function("net/send (counted)", |b| {
        let mut net = Network::new();
        let a = net.add_node(LinkSpec {
            bandwidth_bps: 10_000_000,
            latency: Duration::from_millis(5),
        });
        let z = net.add_node(LinkSpec {
            bandwidth_bps: 1_500_000,
            latency: Duration::from_millis(20),
        });
        b.iter(|| black_box(net.send(a, z, 4_096)));
    });
}

fn bench_schedule(c: &mut Criterion) {
    c.bench_function("schedule/reserve under load", |b| {
        b.iter_batched(
            || {
                let mut s = TaskSchedule::new();
                for k in 0..50u64 {
                    let _ = s.try_reserve(
                        SimTime(0),
                        SimTime(k * 100_000),
                        SimTime(k * 100_000 + 60_000),
                        Duration::from_secs(30),
                    );
                }
                s
            },
            |mut s| {
                black_box(s.try_reserve(
                    SimTime(0),
                    SimTime(0),
                    SimTime(10_000_000),
                    Duration::from_secs(40),
                ))
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_replica(c: &mut Criterion) {
    c.bench_function("replica/disagreements sparse", |b| {
        let mut a = Replica::pristine();
        a.damage(17);
        a.damage(401);
        let other: Vec<u64> = vec![17, 350];
        b.iter(|| black_box(a.disagreeing_blocks(&other)));
    });
    c.bench_function("replica/snapshot 16 damaged", |b| {
        let mut a = Replica::pristine();
        for i in 0..16 {
            a.damage(i * 31);
        }
        b.iter(|| black_box(a.snapshot()));
    });
}

criterion_group!(
    benches,
    bench_engine,
    bench_rng,
    bench_network,
    bench_schedule,
    bench_replica
);
criterion_main!(benches);

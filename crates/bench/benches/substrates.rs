//! Micro-benchmarks of the simulation substrates: event queue, RNG,
//! network delay computation, schedule reservation, damage sets.

use std::hint::black_box;

use lockss_bench::Harness;
use lockss_core::schedule::TaskSchedule;
use lockss_net::{LinkSpec, Network};
use lockss_sim::{Duration, Engine, SimRng, SimTime};
use lockss_storage::Replica;

fn bench_engine(h: &mut Harness) {
    h.bench("engine/schedule+run 10k events", || {
        let mut eng: Engine<u64> = Engine::new();
        for i in 0..10_000u64 {
            eng.schedule_at(SimTime(i % 997), |w: &mut u64, _| *w += 1);
        }
        let mut w = 0u64;
        eng.run_until(&mut w, SimTime(1_000));
        black_box(w)
    });

    h.bench("engine/self-rescheduling chain 10k", || {
        fn tick(w: &mut u64, e: &mut Engine<u64>) {
            *w += 1;
            if *w < 10_000 {
                e.schedule_in(Duration(1), tick);
            }
        }
        let mut eng: Engine<u64> = Engine::new();
        eng.schedule_at(SimTime(0), tick);
        let mut w = 0u64;
        eng.run_until(&mut w, SimTime(u64::MAX - 1));
        black_box(w)
    });
}

fn bench_rng(h: &mut Harness) {
    let mut rng = SimRng::seed_from_u64(1);
    let mean = Duration::from_days(100);
    h.bench("rng/exponential", move || black_box(rng.exponential(mean)));

    let mut rng = SimRng::seed_from_u64(2);
    let items: Vec<u32> = (0..100).collect();
    h.bench("rng/sample 20 of 100", move || {
        black_box(rng.sample(&items, 20))
    });
}

fn bench_network(h: &mut Harness) {
    let mut rng = SimRng::seed_from_u64(3);
    let mut net = Network::new();
    let nodes = net.add_sampled_nodes(100, &mut rng);
    h.bench("net/transfer_delay", move || {
        black_box(net.transfer_delay(nodes[3], nodes[77], 10_256))
    });

    let mut net = Network::new();
    let a = net.add_node(LinkSpec {
        bandwidth_bps: 10_000_000,
        latency: Duration::from_millis(5),
    });
    let z = net.add_node(LinkSpec {
        bandwidth_bps: 1_500_000,
        latency: Duration::from_millis(20),
    });
    h.bench("net/send (counted)", move || {
        black_box(net.send(a, z, 4_096))
    });
}

fn bench_schedule(h: &mut Harness) {
    h.bench_with_setup(
        "schedule/reserve under load",
        || {
            let mut s = TaskSchedule::new();
            for k in 0..50u64 {
                let _ = s.try_reserve(
                    SimTime(0),
                    SimTime(k * 100_000),
                    SimTime(k * 100_000 + 60_000),
                    Duration::from_secs(30),
                );
            }
            s
        },
        |mut s| {
            black_box(s.try_reserve(
                SimTime(0),
                SimTime(0),
                SimTime(10_000_000),
                Duration::from_secs(40),
            ))
        },
    );
}

fn bench_replica(h: &mut Harness) {
    let mut a = Replica::pristine();
    a.damage(17);
    a.damage(401);
    let other: Vec<u64> = vec![17, 350];
    h.bench("replica/disagreements sparse", move || {
        black_box(a.disagreeing_blocks(&other))
    });

    let mut a = Replica::pristine();
    for i in 0..16 {
        a.damage(i * 31);
    }
    h.bench("replica/snapshot 16 damaged", move || {
        black_box(a.snapshot())
    });
}

fn main() {
    let mut h = Harness::new("substrates");
    bench_engine(&mut h);
    bench_rng(&mut h);
    bench_network(&mut h);
    bench_schedule(&mut h);
    bench_replica(&mut h);
    h.finish();
}

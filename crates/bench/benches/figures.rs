//! Figure-regeneration benchmarks: one benchmark per paper table/figure,
//! each running a single smoke-scale instance of the corresponding
//! experiment point (the full sweeps live in the `lockss-experiments`
//! binaries; these benches keep the per-point cost visible and the
//! regeneration paths exercised by `cargo bench`).

use std::hint::black_box;

use lockss_adversary::Defection;
use lockss_bench::Harness;
use lockss_experiments::runner::run_once;
use lockss_experiments::scenario::{AttackSpec, Scenario};
use lockss_experiments::Scale;
use lockss_sim::Duration;

fn smoke(attack: AttackSpec) -> Scenario {
    let mut s = Scenario::attacked(Scale::Quick, 2, attack);
    s.run_length = Duration::from_days(180);
    s
}

fn main() {
    let mut h = Harness::new("figures");

    let s = smoke(AttackSpec::None);
    h.bench("fig2/baseline point", move || black_box(run_once(&s, 1)));

    let s = smoke(AttackSpec::PipeStoppage {
        coverage: 1.0,
        days: 30,
    });
    h.bench("fig3-5/pipe-stoppage point", move || {
        black_box(run_once(&s, 1))
    });

    let s = smoke(AttackSpec::AdmissionFlood {
        coverage: 1.0,
        days: 180,
    });
    h.bench("fig6-8/admission-flood point", move || {
        black_box(run_once(&s, 1))
    });

    let s = smoke(AttackSpec::BruteForce {
        defection: Defection::None_,
    });
    h.bench("table1/brute-force NONE point", move || {
        black_box(run_once(&s, 1))
    });

    let s = smoke(AttackSpec::BruteForce {
        defection: Defection::Intro,
    });
    h.bench("table1/brute-force INTRO point", move || {
        black_box(run_once(&s, 1))
    });

    h.finish();
}

//! Figure-regeneration benchmarks: one benchmark per paper table/figure,
//! each running a single smoke-scale instance of the corresponding
//! experiment point (the full sweeps live in the `lockss-experiments`
//! binaries; these benches keep the per-point cost visible and the
//! regeneration paths exercised by `cargo bench`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lockss_adversary::Defection;
use lockss_experiments::runner::run_once;
use lockss_experiments::scenario::{AttackSpec, Scenario};
use lockss_experiments::Scale;
use lockss_sim::Duration;

fn smoke(attack: AttackSpec) -> Scenario {
    let mut s = Scenario::attacked(Scale::Quick, 2, attack);
    s.run_length = Duration::from_days(180);
    s
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    g.bench_function("fig2/baseline point", |b| {
        let s = smoke(AttackSpec::None);
        b.iter(|| black_box(run_once(&s, 1)));
    });

    g.bench_function("fig3-5/pipe-stoppage point", |b| {
        let s = smoke(AttackSpec::PipeStoppage {
            coverage: 1.0,
            days: 30,
        });
        b.iter(|| black_box(run_once(&s, 1)));
    });

    g.bench_function("fig6-8/admission-flood point", |b| {
        let s = smoke(AttackSpec::AdmissionFlood {
            coverage: 1.0,
            days: 180,
        });
        b.iter(|| black_box(run_once(&s, 1)));
    });

    g.bench_function("table1/brute-force NONE point", |b| {
        let s = smoke(AttackSpec::BruteForce {
            defection: Defection::None_,
        });
        b.iter(|| black_box(run_once(&s, 1)));
    });

    g.bench_function("table1/brute-force INTRO point", |b| {
        let s = smoke(AttackSpec::BruteForce {
            defection: Defection::Intro,
        });
        b.iter(|| black_box(run_once(&s, 1)));
    });

    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);

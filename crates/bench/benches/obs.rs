//! Observability-layer benchmarks: the cost of running with metric
//! handles wired in, against the identical run with the handles absent.
//!
//! The registry contract mirrors `TraceSink`: instrumented sites hold
//! pre-registered handles behind an `Option`, so a run without
//! observability pays one null check per site. The acceptance bar for
//! the layer is that the *disabled* path costs <2% against the
//! pre-instrumentation trajectory — CI holds `world/simulate*` to that
//! with `bench diff --gate-pct 2` — while this group measures the other
//! side: what turning the instruments on actually costs, plus the raw
//! per-operation prices (counter bump, histogram observe, span
//! enter/exit).

use std::hint::black_box;

use lockss_bench::Harness;
use lockss_experiments::obs::ObsSession;
use lockss_experiments::runner::{run_once, run_once_observed};
use lockss_experiments::scenario::{AttackSpec, Scenario};
use lockss_experiments::Scale;
use lockss_obs::{Profiler, RegistryBuilder, Span};
use lockss_sim::Duration;

fn smoke() -> Scenario {
    let mut s = Scenario::attacked(Scale::Quick, 2, AttackSpec::None);
    s.cfg.n_peers = 30;
    s.run_length = Duration::from_days(120);
    s
}

fn main() {
    let mut h = Harness::new("obs");

    // The overhead pair: identical (scenario, seed), instruments absent
    // vs every registry handle wired — interleaved so clock drift
    // cancels out of the overhead ratio.
    let s = smoke();
    let session = ObsSession::new();
    {
        let sa = s.clone();
        let sb = s.clone();
        let ins = session.instruments(None);
        h.bench_pair(
            "run/instruments-off",
            move || black_box(run_once(&sa, 1)),
            "run/instruments-on",
            move || black_box(run_once_observed(&sb, 1, &ins)),
        );
    }

    // Raw handle prices. The counter is the common case (every poll
    // lifecycle edge bumps one); the histogram pays a short linear
    // bucket scan; the span pays two clock reads and a tree update.
    let mut b = RegistryBuilder::new();
    let counter = b.counter("bench_counter_total", "bench");
    let histogram = b.histogram("bench_histogram", "bench", &[1, 8, 64, 512, 4096]);
    let registry = b.build();
    h.bench("handle/counter-inc", || counter.inc());
    let mut v = 0u64;
    h.bench("handle/histogram-observe", move || {
        v = v.wrapping_add(97) & 0xFFF;
        histogram.observe(v)
    });
    h.bench("handle/registry-snapshot", || black_box(registry.to_json()));

    {
        let prof = Some(Profiler::shared());
        h.bench("profile/span-enter-exit", move || {
            black_box(Span::enter(&prof, "bench-span"))
        });
    }

    let results = h.finish();
    let mean = |name: &str| {
        results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.mean_ns)
            .unwrap_or(f64::NAN)
    };
    let off = mean("run/instruments-off");
    let on = mean("run/instruments-on");
    println!(
        "\nobs/enabled overhead: {:+.2}% on this {:.0}ms world \
         (instruments off -> on; the disabled-path bar is held by \
         `bench diff --gate-pct 2` on world/simulate*)",
        (on - off) / off * 100.0,
        off / 1e6
    );
}

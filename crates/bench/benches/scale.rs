//! `world/scale` benchmarks: the production-scale workload class.
//!
//! Construction and simulation cost of 10k-peer worlds (struct-of-arrays
//! peer table, lazy founding-population reputation, sparse index
//! sampling), plus a mid-size world as the bridge point to the existing
//! `world/simulate` benches. Short horizons keep a full `cargo bench
//! --bench scale` run in tens of seconds while still exercising millions
//! of events; the numbers feed `results/BENCH_scale.json` and the
//! `bench diff --gate` trajectory like every other group.

use std::hint::black_box;

use lockss_bench::Harness;
use lockss_core::World;
use lockss_experiments::runner::run_once;
use lockss_experiments::{Scale, ScenarioRegistry};
use lockss_sim::Duration;

fn main() {
    let mut h = Harness::new("scale");
    let registry = ScenarioRegistry::standard();

    // World construction at 10k peers: dominated by reference-list
    // sampling; the lazy reputation rule keeps it allocation-light.
    let base = registry
        .build("scale-10k-baseline", Scale::Quick)
        .expect("registered");
    let cfg = base.cfg.clone();
    h.bench("world/scale/build 10k peers", move || {
        let mut c = cfg.clone();
        c.seed = 7;
        black_box(World::new(c))
    });

    // Short-horizon simulation of the same world: 20 simulated days cover
    // the solicitation ramp of the first poll generation.
    let mut short = base.clone();
    short.run_length = Duration::from_days(20);
    h.bench("world/scale/simulate 10k peers 20d", move || {
        black_box(run_once(&short, 1))
    });

    // The bridge point: a 2k-peer world through a full poll generation,
    // connecting the figure-scale `world/simulate` benches to the 10k
    // class.
    let mut mid = base.clone();
    mid.cfg.n_peers = 2_000;
    mid.run_length = Duration::from_days(120);
    h.bench("world/scale/simulate 2k peers 120d", move || {
        black_box(run_once(&mid, 1))
    });

    h.finish();
}

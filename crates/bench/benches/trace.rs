//! Trace-layer benchmarks: recording overhead against the untraced run,
//! plus the encode/decode substrate.
//!
//! The `TraceSink` contract is that untraced runs pay one `Option` null
//! check per emission point and traced runs stay within a few percent of
//! untraced wall-clock (the ISSUE bar: <5%). `trace/record overhead %` is
//! the measured number; it is printed explicitly and written into
//! `results/BENCH_trace.json` alongside the raw timings so the perf
//! trajectory keeps it visible.

use std::hint::black_box;

use lockss_bench::Harness;
use lockss_core::trace::{TraceEventKind, TraceSink};
use lockss_core::World;
use lockss_crypto::sha256::sha256;
use lockss_experiments::runner::{replay_once, run_once, run_once_recorded};
use lockss_experiments::scenario::{AttackSpec, Scenario};
use lockss_experiments::Scale;
use lockss_sim::{Duration, Engine, SimTime};
use lockss_trace::{trace_stats, Recorder, RecorderV1, TraceMeta};

fn smoke(attack: AttackSpec) -> Scenario {
    let mut s = Scenario::attacked(Scale::Quick, 2, attack);
    s.cfg.n_peers = 30;
    s.run_length = Duration::from_days(120);
    s
}

fn meta(s: &Scenario) -> TraceMeta {
    TraceMeta {
        scenario: "bench".to_string(),
        scale: "quick".to_string(),
        seed: 1,
        run_length_ms: s.run_length.as_millis(),
    }
}

/// Runs one seed with a recorder streaming into its buffer but without
/// sealing the trace — the pure record-path cost the `<5%` bar is about.
/// (The seal — one SHA-256 over the finished bytes — is a per-trace,
/// post-run cost, benched separately as `trace/seal`.) Ends with the same
/// summarize/phase passes as `run_once` so the pair differs *only* in the
/// recording.
fn run_streaming(scenario: &Scenario, seed: u64, m: &TraceMeta) {
    let recorder = Recorder::new(m);
    let mut cfg = scenario.cfg.clone();
    cfg.seed = seed;
    let mut world = World::new(cfg);
    world.set_trace_sink(Box::new(recorder));
    if let Some(adv) = scenario.attack.build() {
        world.install_adversary(adv);
    }
    let mut eng: Engine<World> = Engine::new();
    world.start(&mut eng);
    let end = SimTime::ZERO + scenario.run_length;
    eng.run_until(&mut world, end);
    black_box(world.metrics.summarize(end));
    black_box(world.metrics.phase_summaries(end));
}

fn main() {
    let mut h = Harness::new("trace");

    // The overhead pair: identical (scenario, seed), with and without a
    // recorder streaming — interleaved so clock drift cancels out of the
    // overhead ratio.
    let s = smoke(AttackSpec::None);
    let m = meta(&s);
    {
        let sa = s.clone();
        let sb = s.clone();
        let m = m.clone();
        h.bench_pair(
            "run/untraced",
            move || black_box(run_once(&sa, 1)),
            "run/recording",
            move || run_streaming(&sb, 1, &m),
        );
    }
    {
        let s = s.clone();
        let m = m.clone();
        h.bench("run/record-and-seal", move || {
            black_box(run_once_recorded(&s, 1, &m))
        });
    }

    // Replay verification cost (decodes + compares every event).
    let (_, _, trace) = run_once_recorded(&s, 1, &m);
    {
        let s = s.clone();
        let trace = trace.clone();
        h.bench("run/replay-verify", move || {
            black_box(replay_once(&s, 1, &trace).expect("replay decodes"))
        });
    }

    // The seal: one SHA-256 over the trace body (amortizes with run
    // length; dominates nothing but the tiniest bench worlds).
    let events = trace.decode_all().expect("decodes").len() as u64;
    {
        let body: Vec<u8> = trace.as_bytes()[..trace.as_bytes().len() - 32].to_vec();
        h.bench_bytes("trace/seal", body.len() as u64, move || {
            black_box(sha256(&body))
        });
    }

    // Decode/stats substrate over the recorded stream.
    {
        let trace = trace.clone();
        h.bench_bytes(
            "trace/decode-all",
            trace.as_bytes().len() as u64,
            move || black_box(trace.decode_all().expect("decodes")),
        );
    }
    {
        let trace = trace.clone();
        h.bench("trace/stats-pass", move || {
            black_box(trace_stats(&trace).expect("stats"))
        });
    }

    // The wire pairs: the same record stream encoded and decoded in both
    // wires, interleaved so the v2-vs-v1 ratios are clock-drift-free.
    let records = trace.decode_all().expect("decodes");
    let v1_trace = {
        let mut rec = RecorderV1::new(&m);
        for r in &records {
            rec.record(r.at, r.seq, &r.event);
        }
        rec.finish()
    };
    {
        let (ra, rb) = (records.clone(), records.clone());
        let (ma, mb) = (m.clone(), m.clone());
        h.bench_pair(
            "trace/encode-v2",
            move || {
                let mut rec = Recorder::new(&ma);
                for r in &ra {
                    rec.record(r.at, r.seq, &r.event);
                }
                black_box(rec.finish())
            },
            "trace/encode-v1",
            move || {
                let mut rec = RecorderV1::new(&mb);
                for r in &rb {
                    rec.record(r.at, r.seq, &r.event);
                }
                black_box(rec.finish())
            },
        );
    }
    {
        let v2 = trace.clone();
        let v1 = v1_trace.clone();
        h.bench_pair(
            "trace/decode-v2",
            move || black_box(v2.decode_all().expect("decodes")),
            "trace/decode-v1",
            move || black_box(v1.decode_all().expect("decodes")),
        );
    }
    // Seek/skip: materialize only the poll events. The v2 index skips
    // whole payload columns without decompressing them; v1 has no index
    // and must decode every record to filter.
    {
        let mask = TraceEventKind::PollStart.bit() | TraceEventKind::PollOutcome.bit();
        let v2 = trace.clone();
        let v1 = v1_trace.clone();
        h.bench_pair(
            "trace/seek-skip-v2",
            move || {
                let mut polls = Vec::new();
                for b in 0..v2.blocks().len() {
                    polls.extend(v2.decode_block_masked(b, mask).expect("decodes"));
                }
                black_box(polls)
            },
            "trace/filter-scan-v1",
            move || {
                let polls: Vec<_> = v1
                    .decode_all()
                    .expect("decodes")
                    .into_iter()
                    .filter(|r| mask & r.event.kind().bit() != 0)
                    .collect();
                black_box(polls)
            },
        );
    }

    let results = h.finish();

    let mean = |name: &str| {
        results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.mean_ns)
            .unwrap_or(f64::NAN)
    };
    let untraced = mean("run/untraced");
    let recording = mean("run/recording");
    let sealed = mean("run/record-and-seal");
    let overhead_pct = (recording - untraced) / untraced * 100.0;
    println!(
        "\ntrace/record overhead: {overhead_pct:+.2}% while running \
         ({events} events, {} bytes, target < 5%); \
         seal adds {:+.2}% on this {:.0}ms world (one SHA-256, amortizes \
         with run length)",
        trace.as_bytes().len(),
        (sealed - recording) / untraced * 100.0,
        untraced / 1e6,
    );
    println!(
        "trace/size: LTRC1 {} bytes -> LTRC2 {} bytes ({:.2}x smaller on \
         this stream; the ratio grows with run length as columns fill)",
        v1_trace.as_bytes().len(),
        trace.as_bytes().len(),
        v1_trace.as_bytes().len() as f64 / trace.as_bytes().len() as f64,
    );
}

//! Real content materialization and hashing ("real mode").
//!
//! The simulator charges time for hashing instead of doing it (as the
//! paper's Narses runs did), but tests, examples, and the real protocol
//! datapath need actual bytes: canonical block content is a pure function
//! of `(content seed, AU, block)` via `lockss_crypto::prg`, and votes can be
//! computed as genuine running hashes.

use lockss_crypto::prg::fill_block;
use lockss_crypto::sha256::{Digest, Sha256};

use crate::au::{AuId, AuSpec, Replica};

/// Materializes canonical block content into a caller-supplied buffer,
/// resized to the block length. The allocation-free form of
/// [`canonical_block`]: a hot loop reuses one scratch buffer across blocks
/// instead of materializing a fresh `Vec` per block.
pub fn canonical_block_into(seed: u64, au: AuId, block: u64, spec: &AuSpec, out: &mut Vec<u8>) {
    out.resize(spec.block_bytes as usize, 0);
    fill_block(seed, au.0 as u64, block, out);
}

/// Materializes canonical block content.
pub fn canonical_block(seed: u64, au: AuId, block: u64, spec: &AuSpec) -> Vec<u8> {
    let mut buf = Vec::new();
    canonical_block_into(seed, au, block, spec, &mut buf);
    buf
}

/// Materializes the *stored* content of a block into a caller-supplied
/// buffer: canonical if intact, deterministic garbage if damaged (damage
/// flips the content derivation so two damaged replicas still disagree with
/// each other).
pub fn stored_block_into(
    seed: u64,
    au: AuId,
    block: u64,
    spec: &AuSpec,
    replica: &Replica,
    peer_salt: u64,
    out: &mut Vec<u8>,
) {
    if replica.is_damaged(block) {
        // Garbage unique to this peer; `!seed` guarantees it differs from
        // canonical and `peer_salt` from other peers' garbage.
        out.resize(spec.block_bytes as usize, 0);
        fill_block(!seed ^ peer_salt, au.0 as u64, block, out);
    } else {
        canonical_block_into(seed, au, block, spec, out);
    }
}

/// Materializes the stored content of a block (allocating convenience form
/// of [`stored_block_into`]).
pub fn stored_block(
    seed: u64,
    au: AuId,
    block: u64,
    spec: &AuSpec,
    replica: &Replica,
    peer_salt: u64,
) -> Vec<u8> {
    let mut buf = Vec::new();
    stored_block_into(seed, au, block, spec, replica, peer_salt, &mut buf);
    buf
}

/// Computes a real vote into caller-supplied buffers: `out` receives the
/// running hash after each block, `scratch` is block-content workspace
/// reused across blocks. Both are cleared/resized here, so a loop hashing
/// many replicas allocates exactly twice in total.
#[allow(clippy::too_many_arguments)]
pub fn running_hashes_into(
    seed: u64,
    au: AuId,
    spec: &AuSpec,
    replica: &Replica,
    peer_salt: u64,
    nonce: &[u8],
    scratch: &mut Vec<u8>,
    out: &mut Vec<Digest>,
) {
    out.clear();
    out.reserve(spec.blocks() as usize);
    let mut h = Sha256::new();
    h.update(nonce);
    for block in 0..spec.blocks() {
        stored_block_into(seed, au, block, spec, replica, peer_salt, scratch);
        h.update(scratch);
        // Running hash at the block boundary; cloning keeps the stream
        // going, matching the paper's incremental-evaluation design.
        out.push(h.clone().finalize());
    }
}

/// Computes a real vote: the running hash after each block, keyed by the
/// poller's nonce (§4.1: "hash the nonce supplied by the poller, followed by
/// its replica of the AU, block by block").
pub fn running_hashes(
    seed: u64,
    au: AuId,
    spec: &AuSpec,
    replica: &Replica,
    peer_salt: u64,
    nonce: &[u8],
) -> Vec<Digest> {
    let mut scratch = Vec::new();
    let mut hashes = Vec::new();
    running_hashes_into(
        seed,
        au,
        spec,
        replica,
        peer_salt,
        nonce,
        &mut scratch,
        &mut hashes,
    );
    hashes
}

/// Compares two running-hash votes, returning the indices of disagreeing
/// blocks (the first divergent prefix positions).
pub fn disagreements(a: &[Digest], b: &[Digest]) -> Vec<u64> {
    let mut out = Vec::new();
    let mut diverged = false;
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        if x != y && !diverged {
            out.push(i as u64);
            diverged = true;
        } else if x == y {
            diverged = false;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> AuSpec {
        AuSpec {
            size_bytes: 4096,
            block_bytes: 1024,
        }
    }

    #[test]
    fn intact_replicas_vote_identically() {
        let spec = small_spec();
        let a = running_hashes(7, AuId(0), &spec, &Replica::pristine(), 1, b"nonce");
        let b = running_hashes(7, AuId(0), &spec, &Replica::pristine(), 2, b"nonce");
        assert_eq!(a, b);
    }

    #[test]
    fn nonce_changes_every_hash() {
        let spec = small_spec();
        let a = running_hashes(7, AuId(0), &spec, &Replica::pristine(), 1, b"nonce-1");
        let b = running_hashes(7, AuId(0), &spec, &Replica::pristine(), 1, b"nonce-2");
        for (x, y) in a.iter().zip(b.iter()) {
            assert_ne!(x, y, "fresh nonce must make votes unpredictable");
        }
    }

    #[test]
    fn damaged_block_detected_at_boundary() {
        let spec = small_spec();
        let mut damaged = Replica::pristine();
        damaged.damage(2);
        let good = running_hashes(7, AuId(0), &spec, &Replica::pristine(), 1, b"n");
        let bad = running_hashes(7, AuId(0), &spec, &damaged, 1, b"n");
        assert_eq!(good[0], bad[0]);
        assert_eq!(good[1], bad[1]);
        assert_ne!(good[2], bad[2], "divergence starts at the damaged block");
        // Running hashes never re-converge after divergence.
        assert_ne!(good[3], bad[3]);
    }

    #[test]
    fn two_damaged_replicas_disagree_with_each_other() {
        let spec = small_spec();
        let mut a = Replica::pristine();
        a.damage(1);
        let mut b = Replica::pristine();
        b.damage(1);
        let va = running_hashes(7, AuId(0), &spec, &a, /*salt*/ 10, b"n");
        let vb = running_hashes(7, AuId(0), &spec, &b, /*salt*/ 20, b"n");
        assert_ne!(va[1], vb[1], "distinct garbage must not collide");
    }

    #[test]
    fn repair_with_canonical_block_restores_agreement() {
        let spec = small_spec();
        let mut r = Replica::pristine();
        r.damage(3);
        r.repair(3);
        let fixed = running_hashes(7, AuId(0), &spec, &r, 1, b"n");
        let good = running_hashes(7, AuId(0), &spec, &Replica::pristine(), 9, b"n");
        assert_eq!(fixed, good);
    }

    #[test]
    fn into_forms_match_allocating_forms_with_dirty_buffers() {
        let spec = small_spec();
        let mut damaged = Replica::pristine();
        damaged.damage(1);
        // Deliberately dirty, wrongly sized buffers: the _into forms must
        // resize and overwrite completely.
        let mut scratch = vec![0xEE; 7];
        let mut out = vec![[0xEEu8; 32]; 3];
        for (replica, salt) in [(&Replica::pristine(), 4u64), (&damaged, 9)] {
            for block in 0..spec.blocks() {
                canonical_block_into(7, AuId(0), block, &spec, &mut scratch);
                assert_eq!(scratch, canonical_block(7, AuId(0), block, &spec));
                stored_block_into(7, AuId(0), block, &spec, replica, salt, &mut scratch);
                assert_eq!(
                    scratch,
                    stored_block(7, AuId(0), block, &spec, replica, salt)
                );
            }
            running_hashes_into(
                7,
                AuId(0),
                &spec,
                replica,
                salt,
                b"n",
                &mut scratch,
                &mut out,
            );
            assert_eq!(out, running_hashes(7, AuId(0), &spec, replica, salt, b"n"));
        }
    }

    #[test]
    fn disagreement_positions_reported() {
        let spec = small_spec();
        let mut d = Replica::pristine();
        d.damage(1);
        let good = running_hashes(7, AuId(0), &spec, &Replica::pristine(), 1, b"n");
        let bad = running_hashes(7, AuId(0), &spec, &d, 2, b"n");
        let diffs = disagreements(&good, &bad);
        // Running hashes diverge from block 1 onward; the first divergence
        // position is the damaged block.
        assert_eq!(diffs.first(), Some(&1));
    }
}

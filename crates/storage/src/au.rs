//! Archival units and block-granular replicas.

use std::collections::BTreeSet;

/// Identifies an archival unit.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AuId(pub u32);

impl AuId {
    /// The AU's index, for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for AuId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "au{}", self.0)
    }
}

/// Static description of an archival unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AuSpec {
    /// Total size in bytes (0.5 GB in the paper's experiments).
    pub size_bytes: u64,
    /// Block size in bytes; votes carry one running hash per block and
    /// repairs transfer single blocks.
    pub block_bytes: u64,
}

impl Default for AuSpec {
    fn default() -> Self {
        AuSpec {
            size_bytes: 500_000_000,
            block_bytes: 1_000_000,
        }
    }
}

impl AuSpec {
    /// Number of blocks in the AU.
    pub fn blocks(&self) -> u64 {
        self.size_bytes.div_ceil(self.block_bytes)
    }
}

/// One peer's replica of one AU, as a sparse set of damaged block indices.
///
/// A freshly ingested replica (obtained from the publisher) is undamaged.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Replica {
    damaged: BTreeSet<u64>,
}

impl Replica {
    /// A pristine replica.
    pub fn pristine() -> Replica {
        Replica::default()
    }

    /// True if no block is damaged.
    pub fn is_intact(&self) -> bool {
        self.damaged.is_empty()
    }

    /// Number of damaged blocks.
    pub fn damaged_count(&self) -> usize {
        self.damaged.len()
    }

    /// True if `block` is damaged.
    pub fn is_damaged(&self, block: u64) -> bool {
        self.damaged.contains(&block)
    }

    /// Marks `block` damaged. Returns true if it was previously intact.
    pub fn damage(&mut self, block: u64) -> bool {
        self.damaged.insert(block)
    }

    /// Repairs `block` (idempotent). Returns true if it was damaged.
    pub fn repair(&mut self, block: u64) -> bool {
        self.damaged.remove(&block)
    }

    /// Iterates damaged block indices in ascending order.
    pub fn damaged_blocks(&self) -> impl Iterator<Item = u64> + '_ {
        self.damaged.iter().copied()
    }

    /// Snapshot of the damage set (what a vote effectively encodes: the
    /// voter's per-block hashes differ from canonical exactly on these
    /// blocks).
    pub fn snapshot(&self) -> Vec<u64> {
        self.damaged.iter().copied().collect()
    }

    /// Blocks on which `self` and `other` disagree: exactly the symmetric
    /// difference of the damage sets, since damaged content is garbage and
    /// never collides.
    pub fn disagreeing_blocks(&self, other_damage: &[u64]) -> Vec<u64> {
        let other: BTreeSet<u64> = other_damage.iter().copied().collect();
        self.damaged.symmetric_difference(&other).copied().collect()
    }

    /// True if the two replicas would produce identical votes.
    pub fn agrees_with(&self, other_damage: &[u64]) -> bool {
        self.damaged.len() == other_damage.len()
            && self
                .damaged
                .iter()
                .copied()
                .eq(other_damage.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pristine_is_intact() {
        let r = Replica::pristine();
        assert!(r.is_intact());
        assert_eq!(r.damaged_count(), 0);
        assert!(!r.is_damaged(0));
    }

    #[test]
    fn damage_and_repair_roundtrip() {
        let mut r = Replica::pristine();
        assert!(r.damage(7));
        assert!(!r.damage(7), "double damage is idempotent");
        assert!(r.is_damaged(7));
        assert_eq!(r.damaged_count(), 1);
        assert!(r.repair(7));
        assert!(!r.repair(7), "double repair is idempotent");
        assert!(r.is_intact());
    }

    #[test]
    fn disagreement_is_symmetric_difference() {
        let mut a = Replica::pristine();
        a.damage(1);
        a.damage(2);
        let other = vec![2, 3];
        assert_eq!(a.disagreeing_blocks(&other), vec![1, 3]);
    }

    #[test]
    fn identical_damage_agrees() {
        let mut a = Replica::pristine();
        a.damage(5);
        assert!(a.agrees_with(&[5]));
        assert!(!a.agrees_with(&[]));
        assert!(!a.agrees_with(&[5, 6]));
        assert!(Replica::pristine().agrees_with(&[]));
    }

    #[test]
    fn au_spec_blocks_round_up() {
        let spec = AuSpec {
            size_bytes: 2_500_000,
            block_bytes: 1_000_000,
        };
        assert_eq!(spec.blocks(), 3);
        assert_eq!(AuSpec::default().blocks(), 500);
    }

    #[test]
    fn snapshot_is_sorted() {
        let mut r = Replica::pristine();
        r.damage(9);
        r.damage(1);
        r.damage(4);
        assert_eq!(r.snapshot(), vec![1, 4, 9]);
    }
}

// Seeded randomized property sweeps (no proptest under the offline
// dependency policy; cases are a pure function of the fixed seed).
#[cfg(test)]
mod proptests {
    use super::*;
    use lockss_sim::SimRng;

    /// Up to 15 distinct damaged block indices in `0..64`.
    fn random_damage(rng: &mut SimRng) -> Vec<u64> {
        let blocks: Vec<u64> = (0..64).collect();
        let k = rng.below(16);
        rng.sample(&blocks, k)
    }

    /// Disagreement is symmetric: A vs B's snapshot equals B vs A's.
    #[test]
    fn disagreement_symmetric() {
        let mut rng = SimRng::seed_from_u64(0x0061_7501);
        for _ in 0..256 {
            let da = random_damage(&mut rng);
            let db = random_damage(&mut rng);
            let mut a = Replica::pristine();
            for b in &da {
                a.damage(*b);
            }
            let mut b = Replica::pristine();
            for x in &db {
                b.damage(*x);
            }
            assert_eq!(
                a.disagreeing_blocks(&b.snapshot()),
                b.disagreeing_blocks(&a.snapshot())
            );
        }
    }

    /// Repairing every disagreeing block from an intact reference
    /// restores agreement.
    #[test]
    fn repair_restores_agreement() {
        let mut rng = SimRng::seed_from_u64(0x0061_7502);
        for _ in 0..256 {
            let da = random_damage(&mut rng);
            let mut a = Replica::pristine();
            for b in &da {
                a.damage(*b);
            }
            let reference = Replica::pristine();
            for blk in a.disagreeing_blocks(&reference.snapshot()) {
                a.repair(blk);
            }
            assert!(a.agrees_with(&reference.snapshot()));
            assert!(a.is_intact());
        }
    }
}

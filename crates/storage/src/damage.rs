//! The storage-damage (bit rot) process.
//!
//! §7.1: "Our simulated peers suffer random storage damage at rates of one
//! block in 1 to 5 disk years (50 AUs per disk)." Damage arrivals at one
//! peer form a Poisson process whose rate scales with the number of disks
//! (AUs / 50); each arrival corrupts one uniformly random block of one
//! uniformly random AU.

use lockss_sim::{Duration, SimRng};

/// Poisson damage process for one peer.
#[derive(Clone, Debug)]
pub struct DamageProcess {
    /// Mean time between damage events *per disk*.
    pub mean_per_disk: Duration,
    /// AUs resident on one disk (50 in the paper).
    pub aus_per_disk: u32,
    /// AUs stored at this peer.
    pub aus: u32,
}

impl DamageProcess {
    /// A process with the paper's defaults: `mtbf_years` per disk, 50
    /// AUs/disk, `aus` stored.
    pub fn paper(mtbf_years: f64, aus: u32) -> DamageProcess {
        DamageProcess {
            mean_per_disk: Duration::YEAR.mul_f64(mtbf_years),
            aus_per_disk: 50,
            aus,
        }
    }

    /// Number of physical disks this peer needs (informational).
    pub fn disks(&self) -> u32 {
        self.aus.div_ceil(self.aus_per_disk).max(1)
    }

    /// Mean time between damage events at this peer.
    ///
    /// The paper's rate is *per disk of 50 AUs*, i.e. a per-AU rate of
    /// `1 / (mean_per_disk × 50)`. Collections smaller than a full disk
    /// scale fractionally so the per-AU rate — and hence the access
    /// failure probability — is independent of collection size (the paper
    /// observes 50-AU and 600-AU collections overlap in Fig. 2).
    pub fn mean_per_peer(&self) -> Duration {
        let fractional_disks = self.aus as f64 / self.aus_per_disk as f64;
        Duration::from_millis(
            (self.mean_per_disk.as_millis() as f64 / fractional_disks).round() as u64,
        )
    }

    /// Samples the wait until this peer's next damage event.
    pub fn next_arrival(&self, rng: &mut SimRng) -> Duration {
        rng.exponential(self.mean_per_peer())
    }

    /// Picks the (AU index, block index) hit by a damage event.
    pub fn pick_target(&self, rng: &mut SimRng, blocks_per_au: u64) -> (u32, u64) {
        let au = rng.below(self.aus as usize) as u32;
        let block = rng.below(blocks_per_au as usize) as u64;
        (au, block)
    }

    /// Expected damage events per AU per year — the analytic rate the
    /// baseline experiment (Fig. 2) is checked against.
    pub fn rate_per_au_per_year(&self) -> f64 {
        let per_disk_per_year = Duration::YEAR / self.mean_per_disk;
        per_disk_per_year / self.aus_per_disk as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_count_rounds_up() {
        assert_eq!(DamageProcess::paper(5.0, 50).disks(), 1);
        assert_eq!(DamageProcess::paper(5.0, 51).disks(), 2);
        assert_eq!(DamageProcess::paper(5.0, 600).disks(), 12);
        assert_eq!(DamageProcess::paper(5.0, 1).disks(), 1);
    }

    #[test]
    fn merged_rate_scales_with_disks() {
        let p = DamageProcess::paper(5.0, 600);
        // 12 disks at 5 years each => one event every 5/12 years.
        let expect = Duration::YEAR.mul_f64(5.0 / 12.0);
        let got = p.mean_per_peer();
        let err = (got.as_secs_f64() - expect.as_secs_f64()).abs() / expect.as_secs_f64();
        assert!(err < 1e-6, "{got} vs {expect}");
    }

    #[test]
    fn analytic_rate_per_au() {
        let p = DamageProcess::paper(5.0, 50);
        // 1/(5 yr) per disk over 50 AUs => 1/250 per AU-year.
        assert!((p.rate_per_au_per_year() - 0.004).abs() < 1e-9);
    }

    #[test]
    fn arrivals_have_right_mean() {
        let mut rng = SimRng::seed_from_u64(21);
        let p = DamageProcess::paper(1.0, 50);
        let n = 5000;
        let total: f64 = (0..n)
            .map(|_| p.next_arrival(&mut rng).as_years_f64())
            .sum();
        let avg = total / n as f64;
        assert!((avg - 1.0).abs() < 0.05, "avg {avg}");
    }

    #[test]
    fn targets_cover_space() {
        let mut rng = SimRng::seed_from_u64(22);
        let p = DamageProcess::paper(5.0, 10);
        let mut seen_aus = std::collections::BTreeSet::new();
        for _ in 0..500 {
            let (au, block) = p.pick_target(&mut rng, 500);
            assert!(au < 10);
            assert!(block < 500);
            seen_aus.insert(au);
        }
        assert_eq!(seen_aus.len(), 10, "all AUs should be hit eventually");
    }
}

#[cfg(test)]
mod fractional_tests {
    use super::*;

    #[test]
    fn per_au_rate_is_collection_size_independent() {
        // The paper's Fig. 2 shows 50-AU and 600-AU collections overlap:
        // the per-AU damage rate must not depend on collection size.
        for aus in [4u32, 12, 50, 200, 600] {
            let p = DamageProcess::paper(5.0, aus);
            let per_peer_per_year = Duration::YEAR / p.mean_per_peer();
            let per_au = per_peer_per_year / aus as f64;
            assert!(
                (per_au - 0.004).abs() < 1e-6,
                "aus={aus}: per-AU rate {per_au}"
            );
        }
    }
}

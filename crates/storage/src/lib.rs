//! Archival units, replicas, and the storage-damage (bit rot) process.
//!
//! The paper preserves *archival units* (AUs — a year's run of a journal,
//! 0.5 GB each in the experiments) replicated at every peer. Replicas decay:
//! "our simulated peers suffer random storage damage at rates of one block
//! in 1 to 5 disk years (50 AUs per disk)" (§7.1), deliberately inflated to
//! encompass tampering and human error. Damage is only discovered and
//! repaired through the audit protocol — that is the entire point of the
//! system.
//!
//! Replicas are represented as sparse *damage sets* over block indices: two
//! replicas agree on a block iff neither has damaged it (damage produces
//! garbage, and two garbage blocks never collide). Real content and hashes
//! exist behind the [`content`] module for real-mode tests.

pub mod au;
pub mod content;
pub mod damage;

pub use au::{AuId, AuSpec, Replica};
pub use damage::DamageProcess;

//! Time-weighted damaged-replica accounting.
//!
//! The access failure probability is "the fraction of all replicas in the
//! system that are damaged, averaged over all time points in the
//! experiment" (§6.1). Tracking the damaged-replica *count* and integrating
//! it against simulated time gives the exact continuous-time average
//! without sampling error.

use lockss_sim::SimTime;

/// Integrates `damaged_replicas(t) / total_replicas` over time.
#[derive(Clone, Debug)]
pub struct DamageClock {
    total_replicas: u64,
    damaged_now: u64,
    last_change: SimTime,
    /// ∫ damaged dt, in replica·milliseconds.
    integral: f64,
}

impl DamageClock {
    /// Starts the clock at `t = start` with all `total_replicas` intact.
    pub fn new(total_replicas: u64, start: SimTime) -> DamageClock {
        DamageClock {
            total_replicas,
            damaged_now: 0,
            last_change: start,
            integral: 0.0,
        }
    }

    fn advance(&mut self, now: SimTime) {
        let dt = now.since(self.last_change).as_millis() as f64;
        self.integral += self.damaged_now as f64 * dt;
        self.last_change = now;
    }

    /// Records that one replica became damaged at `now`.
    ///
    /// Call only for transitions (an intact block set becoming non-intact);
    /// additional damage to an already-damaged replica is not a transition.
    pub fn on_damaged(&mut self, now: SimTime) {
        self.advance(now);
        debug_assert!(self.damaged_now < self.total_replicas);
        self.damaged_now += 1;
    }

    /// Records that one replica became fully repaired at `now`.
    pub fn on_repaired(&mut self, now: SimTime) {
        self.advance(now);
        debug_assert!(self.damaged_now > 0);
        self.damaged_now = self.damaged_now.saturating_sub(1);
    }

    /// Number of replicas damaged right now.
    pub fn damaged_now(&self) -> u64 {
        self.damaged_now
    }

    /// Total replicas tracked.
    pub fn total_replicas(&self) -> u64 {
        self.total_replicas
    }

    /// The damage integral (replica·milliseconds) accumulated up to `now`,
    /// without mutating the clock. `now` must not precede the last recorded
    /// transition.
    pub fn integral_at(&self, now: SimTime) -> f64 {
        self.integral + self.damaged_now as f64 * now.since(self.last_change).as_millis() as f64
    }

    /// The access failure probability over `[start, end]`.
    ///
    /// Returns 0 for an empty interval or zero replicas.
    pub fn access_failure_probability(&self, end: SimTime) -> f64 {
        let mut integral = self.integral;
        integral += self.damaged_now as f64 * end.since(self.last_change).as_millis() as f64;
        let span = end.since(SimTime::ZERO).as_millis() as f64;
        if span <= 0.0 || self.total_replicas == 0 {
            return 0.0;
        }
        integral / (span * self.total_replicas as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockss_sim::Duration;

    #[test]
    fn no_damage_is_zero() {
        let c = DamageClock::new(100, SimTime::ZERO);
        assert_eq!(
            c.access_failure_probability(SimTime::ZERO + Duration::YEAR),
            0.0
        );
    }

    #[test]
    fn half_time_damaged_single_replica() {
        let mut c = DamageClock::new(1, SimTime::ZERO);
        c.on_damaged(SimTime::ZERO);
        c.on_repaired(SimTime::ZERO + Duration::from_days(50));
        let p = c.access_failure_probability(SimTime::ZERO + Duration::from_days(100));
        assert!((p - 0.5).abs() < 1e-9, "{p}");
    }

    #[test]
    fn fraction_scales_with_population() {
        let mut c = DamageClock::new(10, SimTime::ZERO);
        c.on_damaged(SimTime::ZERO);
        // One of ten replicas damaged for the whole run: p = 0.1.
        let p = c.access_failure_probability(SimTime::ZERO + Duration::from_days(10));
        assert!((p - 0.1).abs() < 1e-9, "{p}");
    }

    #[test]
    fn overlapping_damage_integrates() {
        let mut c = DamageClock::new(2, SimTime::ZERO);
        let day = Duration::DAY;
        c.on_damaged(SimTime::ZERO); // replica A damaged [0, 3d)
        c.on_damaged(SimTime::ZERO + day); // replica B damaged [1d, 2d)
        c.on_repaired(SimTime::ZERO + day * 2);
        c.on_repaired(SimTime::ZERO + day * 3);
        // Integral = 1*1d + 2*1d + 1*1d = 4 replica-days over 4d*2 replicas.
        let p = c.access_failure_probability(SimTime::ZERO + day * 4);
        assert!((p - 0.5).abs() < 1e-9, "{p}");
    }

    #[test]
    fn damage_still_open_at_end_counts() {
        let mut c = DamageClock::new(4, SimTime::ZERO);
        c.on_damaged(SimTime::ZERO + Duration::from_days(75));
        let p = c.access_failure_probability(SimTime::ZERO + Duration::from_days(100));
        // Damaged 25 of 100 days at 1/4 population weight.
        assert!((p - 0.0625).abs() < 1e-9, "{p}");
    }

    #[test]
    fn zero_span_is_zero() {
        let c = DamageClock::new(4, SimTime::ZERO);
        assert_eq!(c.access_failure_probability(SimTime::ZERO), 0.0);
    }
}

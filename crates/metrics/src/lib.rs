//! Evaluation metrics (paper §6.1).
//!
//! Four metrics measure the effectiveness of the attrition defenses:
//!
//! - **access failure probability** — the fraction of all replicas that are
//!   damaged, averaged over all time points of the experiment;
//! - **delay ratio** — mean time between successful polls at loyal peers
//!   under attack, divided by the same measurement without the attack;
//! - **coefficient of friction** — average effort expended by loyal peers
//!   per successful poll during an attack, divided by their per-poll effort
//!   absent the attack;
//! - **cost ratio** — total attacker effort divided by total defender
//!   effort during the attack.
//!
//! [`RunMetrics`] collects raw observations during a run; [`Summary`]
//! condenses them; ratio metrics divide an attack summary by a baseline
//! summary of the same configuration.

#![deny(missing_docs)]

pub mod damage_clock;
pub mod poll_stats;
pub mod streaming;
pub mod summary;
pub mod table;
pub mod timeline;

pub use damage_clock::DamageClock;
pub use poll_stats::PollStats;
pub use streaming::{EventBuckets, Reservoir};
pub use summary::{PhaseSummary, RunMetrics, Summary};
pub use table::Table;
pub use timeline::{PollTimeline, TimeBuckets, TimelineSummary};

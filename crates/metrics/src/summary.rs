//! Run-level metric collection and condensation.

use lockss_sim::{Duration, SimTime};

use crate::damage_clock::DamageClock;
use crate::poll_stats::PollStats;
use crate::streaming::EventBuckets;

/// Event kinds tracked by the run timeline buckets.
const TIMELINE_KINDS: usize = 4;

/// Everything a run records as it executes.
#[derive(Clone, Debug)]
pub struct RunMetrics {
    /// Time-weighted damaged-replica accounting (access failure).
    pub damage: DamageClock,
    /// Poll outcome counts and success-gap tracking.
    pub polls: PollStats,
    /// Time-bucketed success/failure/damage/repair counters (kinds indexed
    /// by the `KIND_*` constants). Fixed bucket budget: arbitrarily long
    /// runs coarsen instead of growing.
    pub timeline: EventBuckets<TIMELINE_KINDS>,
    /// Total CPU-seconds spent by loyal peers.
    pub loyal_effort_secs: f64,
    /// Total CPU-seconds spent by the adversary.
    pub adversary_effort_secs: f64,
    /// Named phase boundaries recorded by [`RunMetrics::mark_phase`].
    phases: Vec<PhaseMark>,
}

/// A checkpoint of the cumulative counters at a phase boundary.
#[derive(Clone, Debug)]
struct PhaseMark {
    label: String,
    at: SimTime,
    damage_integral: f64,
    successful_polls: u64,
    failed_polls: u64,
    alarms: u64,
    loyal_effort_secs: f64,
    adversary_effort_secs: f64,
}

/// The §6.1 observations restricted to one named attack phase.
///
/// Produced by [`RunMetrics::phase_summaries`] from the checkpoints that
/// phased composite adversaries record when each sub-attack starts, so a
/// campaign like "pipe stoppage, then admission flood during recovery"
/// reports how each leg moved the metrics rather than only the blend.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseSummary {
    /// Phase label (the sub-attack's strategy name).
    pub label: String,
    /// When the phase began.
    pub start: SimTime,
    /// When the phase ended (the next mark, or the end of the run).
    pub end: SimTime,
    /// Access failure probability *within this phase only*.
    pub access_failure_probability: f64,
    /// Successful polls concluded during the phase.
    pub successful_polls: u64,
    /// Failed polls concluded during the phase.
    pub failed_polls: u64,
    /// Inconclusive-poll alarms raised during the phase.
    pub alarms: u64,
    /// Loyal CPU-seconds spent during the phase.
    pub loyal_effort_secs: f64,
    /// Adversary CPU-seconds spent during the phase.
    pub adversary_effort_secs: f64,
}

impl RunMetrics {
    /// Timeline kind: a poll concluded in a landslide win.
    pub const KIND_SUCCESS: usize = 0;
    /// Timeline kind: a poll concluded without a landslide win.
    pub const KIND_FAILURE: usize = 1;
    /// Timeline kind: an intact replica became damaged.
    pub const KIND_DAMAGE: usize = 2;
    /// Timeline kind: a damaged replica became fully intact again.
    pub const KIND_REPAIR: usize = 3;

    /// Initializes collection for `total_replicas` replicas starting at
    /// `start`.
    pub fn new(total_replicas: u64, start: SimTime) -> RunMetrics {
        RunMetrics {
            damage: DamageClock::new(total_replicas, start),
            polls: PollStats::new(),
            timeline: EventBuckets::new(Duration::from_days(7), 64),
            loyal_effort_secs: 0.0,
            adversary_effort_secs: 0.0,
            phases: Vec::new(),
        }
    }

    /// Records the start of a named phase at `now` by checkpointing every
    /// cumulative counter. [`RunMetrics::phase_summaries`] later reports
    /// the deltas between consecutive marks. Marks landing at the same
    /// instant merge into one `a+b` phase (concurrent sub-attacks).
    pub fn mark_phase(&mut self, label: &str, now: SimTime) {
        if let Some(last) = self.phases.last_mut() {
            if last.at == now {
                last.label = format!("{}+{label}", last.label);
                return;
            }
        }
        self.phases.push(PhaseMark {
            label: label.to_string(),
            at: now,
            damage_integral: self.damage.integral_at(now),
            successful_polls: self.polls.successful_polls,
            failed_polls: self.polls.failed_polls,
            alarms: self.polls.alarms,
            loyal_effort_secs: self.loyal_effort_secs,
            adversary_effort_secs: self.adversary_effort_secs,
        });
    }

    /// Per-phase metric deltas, one entry per recorded mark, each spanning
    /// from its mark to the next (the last runs to `end`). Empty if no
    /// phase was ever marked. A gap between the run start and the first
    /// mark is reported as a synthetic `(pre)` phase.
    pub fn phase_summaries(&self, end: SimTime) -> Vec<PhaseSummary> {
        if self.phases.is_empty() {
            return Vec::new();
        }
        let total = self.damage.total_replicas();
        let final_mark = PhaseMark {
            label: String::new(),
            at: end,
            damage_integral: self.damage.integral_at(end),
            successful_polls: self.polls.successful_polls,
            failed_polls: self.polls.failed_polls,
            alarms: self.polls.alarms,
            loyal_effort_secs: self.loyal_effort_secs,
            adversary_effort_secs: self.adversary_effort_secs,
        };
        let mut marks: Vec<&PhaseMark> = Vec::new();
        let pre;
        if self.phases[0].at > SimTime::ZERO {
            pre = PhaseMark {
                label: "(pre)".to_string(),
                at: SimTime::ZERO,
                damage_integral: 0.0,
                successful_polls: 0,
                failed_polls: 0,
                alarms: 0,
                loyal_effort_secs: 0.0,
                adversary_effort_secs: 0.0,
            };
            marks.push(&pre);
        }
        marks.extend(self.phases.iter());
        let mut out = Vec::with_capacity(marks.len());
        for (i, mark) in marks.iter().enumerate() {
            let next = marks.get(i + 1).copied().unwrap_or(&final_mark);
            let span_ms = next.at.since(mark.at).as_millis() as f64;
            let afp = if span_ms > 0.0 && total > 0 {
                (next.damage_integral - mark.damage_integral) / (span_ms * total as f64)
            } else {
                0.0
            };
            out.push(PhaseSummary {
                label: mark.label.clone(),
                start: mark.at,
                end: next.at,
                access_failure_probability: afp,
                successful_polls: next.successful_polls - mark.successful_polls,
                failed_polls: next.failed_polls - mark.failed_polls,
                alarms: next.alarms - mark.alarms,
                loyal_effort_secs: next.loyal_effort_secs - mark.loyal_effort_secs,
                adversary_effort_secs: next.adversary_effort_secs - mark.adversary_effort_secs,
            });
        }
        out
    }

    /// Condenses the raw observations at the end of a run.
    pub fn summarize(&self, end: SimTime) -> Summary {
        Summary {
            access_failure_probability: self.damage.access_failure_probability(end),
            mean_time_between_successes: self.polls.mean_gap_censored(end),
            gap_p50: self.polls.gap_quantile(0.5),
            gap_p90: self.polls.gap_quantile(0.9),
            successful_polls: self.polls.successful_polls,
            failed_polls: self.polls.failed_polls,
            alarms: self.polls.alarms,
            loyal_effort_secs: self.loyal_effort_secs,
            adversary_effort_secs: self.adversary_effort_secs,
        }
    }
}

/// Condensed results of one run (or the mean of several seeds).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Summary {
    /// Fraction of replica-time spent damaged (§6.1).
    pub access_failure_probability: f64,
    /// Mean gap between successful polls per (peer, AU), right-censored
    /// (§6.1 delay-ratio numerator/denominator); `None` for an empty run.
    pub mean_time_between_successes: Option<Duration>,
    /// Median completed success gap, from the streaming reservoir sample;
    /// `None` before the first completed gap.
    pub gap_p50: Option<Duration>,
    /// 90th-percentile completed success gap (attacks show up in the tail
    /// long before they move the mean); `None` before the first gap.
    pub gap_p90: Option<Duration>,
    /// Polls that concluded in a landslide win.
    pub successful_polls: u64,
    /// Polls that concluded inquorate or without a landslide win.
    pub failed_polls: u64,
    /// Inconclusive-poll alarms (§4.3).
    pub alarms: u64,
    /// Total CPU-seconds spent by loyal peers.
    pub loyal_effort_secs: f64,
    /// Total CPU-seconds spent by the adversary.
    pub adversary_effort_secs: f64,
}

impl Summary {
    /// Loyal effort per successful poll (CPU-seconds); `None` if no poll
    /// succeeded.
    pub fn effort_per_successful_poll(&self) -> Option<f64> {
        if self.successful_polls == 0 {
            return None;
        }
        Some(self.loyal_effort_secs / self.successful_polls as f64)
    }

    /// Delay ratio against a no-attack baseline (§6.1). `None` if either
    /// run lacks successful-poll gaps.
    pub fn delay_ratio(&self, baseline: &Summary) -> Option<f64> {
        let attacked = self.mean_time_between_successes?;
        let base = baseline.mean_time_between_successes?;
        if base.is_zero() {
            return None;
        }
        Some(attacked / base)
    }

    /// Coefficient of friction against a no-attack baseline (§6.1).
    pub fn coefficient_of_friction(&self, baseline: &Summary) -> Option<f64> {
        let attacked = self.effort_per_successful_poll()?;
        let base = baseline.effort_per_successful_poll()?;
        if base == 0.0 {
            return None;
        }
        Some(attacked / base)
    }

    /// Cost ratio: attacker effort over defender effort (§6.1). `None` if
    /// defenders spent nothing.
    pub fn cost_ratio(&self) -> Option<f64> {
        if self.loyal_effort_secs == 0.0 {
            return None;
        }
        Some(self.adversary_effort_secs / self.loyal_effort_secs)
    }

    /// The mean of several per-seed summaries.
    ///
    /// # Panics
    ///
    /// Panics if `runs` is empty.
    pub fn mean_of(runs: &[Summary]) -> Summary {
        assert!(!runs.is_empty(), "mean of zero runs");
        let n = runs.len() as f64;
        let gap_runs: Vec<f64> = runs
            .iter()
            .filter_map(|r| r.mean_time_between_successes)
            .map(|d| d.as_millis() as f64)
            .collect();
        let mean_gap = if gap_runs.is_empty() {
            None
        } else {
            Some(Duration::from_millis(
                (gap_runs.iter().sum::<f64>() / gap_runs.len() as f64).round() as u64,
            ))
        };
        // Mean-of-quantiles across seeds: not a quantile of the pooled
        // distribution, but the standard per-seed condensation used for
        // every other field here.
        let mean_quantile = |get: fn(&Summary) -> Option<Duration>| {
            let qs: Vec<f64> = runs
                .iter()
                .filter_map(get)
                .map(|d| d.as_millis() as f64)
                .collect();
            if qs.is_empty() {
                None
            } else {
                Some(Duration::from_millis(
                    (qs.iter().sum::<f64>() / qs.len() as f64).round() as u64,
                ))
            }
        };
        Summary {
            access_failure_probability: runs
                .iter()
                .map(|r| r.access_failure_probability)
                .sum::<f64>()
                / n,
            mean_time_between_successes: mean_gap,
            gap_p50: mean_quantile(|r| r.gap_p50),
            gap_p90: mean_quantile(|r| r.gap_p90),
            successful_polls: (runs.iter().map(|r| r.successful_polls).sum::<u64>() as f64 / n)
                .round() as u64,
            failed_polls: (runs.iter().map(|r| r.failed_polls).sum::<u64>() as f64 / n).round()
                as u64,
            alarms: (runs.iter().map(|r| r.alarms).sum::<u64>() as f64 / n).round() as u64,
            loyal_effort_secs: runs.iter().map(|r| r.loyal_effort_secs).sum::<f64>() / n,
            adversary_effort_secs: runs.iter().map(|r| r.adversary_effort_secs).sum::<f64>() / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(gap_days: u64, polls: u64, loyal: f64, adversary: f64) -> Summary {
        Summary {
            access_failure_probability: 0.001,
            mean_time_between_successes: Some(Duration::from_days(gap_days)),
            gap_p50: Some(Duration::from_days(gap_days)),
            gap_p90: Some(Duration::from_days(gap_days * 2)),
            successful_polls: polls,
            failed_polls: 0,
            alarms: 0,
            loyal_effort_secs: loyal,
            adversary_effort_secs: adversary,
        }
    }

    #[test]
    fn ratio_metrics() {
        let base = summary(90, 100, 1000.0, 0.0);
        let attacked = summary(180, 50, 1500.0, 3000.0);
        assert!((attacked.delay_ratio(&base).unwrap() - 2.0).abs() < 1e-9);
        // friction: (1500/50) / (1000/100) = 30 / 10 = 3.
        assert!((attacked.coefficient_of_friction(&base).unwrap() - 3.0).abs() < 1e-9);
        assert!((attacked.cost_ratio().unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_cases_are_none() {
        let empty = Summary::default();
        let base = summary(90, 100, 1000.0, 0.0);
        assert_eq!(empty.delay_ratio(&base), None);
        assert_eq!(empty.coefficient_of_friction(&base), None);
        assert_eq!(empty.cost_ratio(), None);
        assert_eq!(empty.effort_per_successful_poll(), None);
    }

    #[test]
    fn mean_of_averages_fields() {
        let a = summary(80, 100, 1000.0, 100.0);
        let b = summary(100, 200, 2000.0, 300.0);
        let m = Summary::mean_of(&[a, b]);
        assert_eq!(m.mean_time_between_successes, Some(Duration::from_days(90)));
        assert_eq!(m.successful_polls, 150);
        assert!((m.loyal_effort_secs - 1500.0).abs() < 1e-9);
        assert!((m.adversary_effort_secs - 200.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "mean of zero runs")]
    fn mean_of_empty_panics() {
        let _ = Summary::mean_of(&[]);
    }

    #[test]
    fn phase_summaries_split_the_run() {
        use lockss_sim::SimTime;
        let t = |days: u64| SimTime::ZERO + Duration::from_days(days);
        let mut rm = RunMetrics::new(10, SimTime::ZERO);
        assert!(rm.phase_summaries(t(100)).is_empty(), "no marks, no phases");

        // Phase A starts at t=0; one replica damaged the whole run.
        rm.damage.on_damaged(t(0));
        rm.mark_phase("a", t(0));
        rm.polls.on_success(0, 0, t(10));
        rm.loyal_effort_secs = 5.0;
        // Phase B from day 50.
        rm.mark_phase("b", t(50));
        rm.polls.on_success(0, 0, t(60));
        rm.polls.on_failure();
        rm.loyal_effort_secs = 8.0;
        rm.adversary_effort_secs = 2.0;

        let phases = rm.phase_summaries(t(100));
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].label, "a");
        assert_eq!(phases[0].start, t(0));
        assert_eq!(phases[0].end, t(50));
        assert_eq!(phases[0].successful_polls, 1);
        assert_eq!(phases[0].failed_polls, 0);
        assert!((phases[0].loyal_effort_secs - 5.0).abs() < 1e-12);
        // One of ten replicas damaged throughout: afp = 0.1 in both phases.
        assert!((phases[0].access_failure_probability - 0.1).abs() < 1e-9);
        assert_eq!(phases[1].label, "b");
        assert_eq!(phases[1].end, t(100));
        assert_eq!(phases[1].successful_polls, 1);
        assert_eq!(phases[1].failed_polls, 1);
        assert!((phases[1].loyal_effort_secs - 3.0).abs() < 1e-12);
        assert!((phases[1].adversary_effort_secs - 2.0).abs() < 1e-12);
    }

    #[test]
    fn late_first_mark_gets_a_pre_phase() {
        use lockss_sim::SimTime;
        let t = |days: u64| SimTime::ZERO + Duration::from_days(days);
        let mut rm = RunMetrics::new(4, SimTime::ZERO);
        rm.polls.on_success(0, 0, t(5));
        rm.mark_phase("attack", t(30));
        let phases = rm.phase_summaries(t(60));
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].label, "(pre)");
        assert_eq!(phases[0].start, SimTime::ZERO);
        assert_eq!(phases[0].end, t(30));
        assert_eq!(phases[0].successful_polls, 1);
        assert_eq!(phases[1].label, "attack");
        assert_eq!(phases[1].successful_polls, 0);
    }

    #[test]
    fn run_metrics_summarize() {
        use lockss_sim::SimTime;
        let mut rm = RunMetrics::new(10, SimTime::ZERO);
        rm.damage.on_damaged(SimTime::ZERO);
        rm.polls.on_success(0, 0, SimTime::ZERO + Duration::DAY);
        rm.loyal_effort_secs = 5.0;
        let s = rm.summarize(SimTime::ZERO + Duration::from_days(10));
        assert!((s.access_failure_probability - 0.1).abs() < 1e-9);
        assert_eq!(s.successful_polls, 1);
        assert_eq!(s.loyal_effort_secs, 5.0);
    }
}

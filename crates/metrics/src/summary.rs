//! Run-level metric collection and condensation.

use lockss_sim::{Duration, SimTime};

use crate::damage_clock::DamageClock;
use crate::poll_stats::PollStats;

/// Everything a run records as it executes.
#[derive(Clone, Debug)]
pub struct RunMetrics {
    pub damage: DamageClock,
    pub polls: PollStats,
    /// Total CPU-seconds spent by loyal peers.
    pub loyal_effort_secs: f64,
    /// Total CPU-seconds spent by the adversary.
    pub adversary_effort_secs: f64,
}

impl RunMetrics {
    /// Initializes collection for `total_replicas` replicas starting at
    /// `start`.
    pub fn new(total_replicas: u64, start: SimTime) -> RunMetrics {
        RunMetrics {
            damage: DamageClock::new(total_replicas, start),
            polls: PollStats::new(),
            loyal_effort_secs: 0.0,
            adversary_effort_secs: 0.0,
        }
    }

    /// Condenses the raw observations at the end of a run.
    pub fn summarize(&self, end: SimTime) -> Summary {
        Summary {
            access_failure_probability: self.damage.access_failure_probability(end),
            mean_time_between_successes: self.polls.mean_gap_censored(end),
            successful_polls: self.polls.successful_polls,
            failed_polls: self.polls.failed_polls,
            alarms: self.polls.alarms,
            loyal_effort_secs: self.loyal_effort_secs,
            adversary_effort_secs: self.adversary_effort_secs,
        }
    }
}

/// Condensed results of one run (or the mean of several seeds).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Summary {
    pub access_failure_probability: f64,
    pub mean_time_between_successes: Option<Duration>,
    pub successful_polls: u64,
    pub failed_polls: u64,
    pub alarms: u64,
    pub loyal_effort_secs: f64,
    pub adversary_effort_secs: f64,
}

impl Summary {
    /// Loyal effort per successful poll (CPU-seconds); `None` if no poll
    /// succeeded.
    pub fn effort_per_successful_poll(&self) -> Option<f64> {
        if self.successful_polls == 0 {
            return None;
        }
        Some(self.loyal_effort_secs / self.successful_polls as f64)
    }

    /// Delay ratio against a no-attack baseline (§6.1). `None` if either
    /// run lacks successful-poll gaps.
    pub fn delay_ratio(&self, baseline: &Summary) -> Option<f64> {
        let attacked = self.mean_time_between_successes?;
        let base = baseline.mean_time_between_successes?;
        if base.is_zero() {
            return None;
        }
        Some(attacked / base)
    }

    /// Coefficient of friction against a no-attack baseline (§6.1).
    pub fn coefficient_of_friction(&self, baseline: &Summary) -> Option<f64> {
        let attacked = self.effort_per_successful_poll()?;
        let base = baseline.effort_per_successful_poll()?;
        if base == 0.0 {
            return None;
        }
        Some(attacked / base)
    }

    /// Cost ratio: attacker effort over defender effort (§6.1). `None` if
    /// defenders spent nothing.
    pub fn cost_ratio(&self) -> Option<f64> {
        if self.loyal_effort_secs == 0.0 {
            return None;
        }
        Some(self.adversary_effort_secs / self.loyal_effort_secs)
    }

    /// The mean of several per-seed summaries.
    ///
    /// # Panics
    ///
    /// Panics if `runs` is empty.
    pub fn mean_of(runs: &[Summary]) -> Summary {
        assert!(!runs.is_empty(), "mean of zero runs");
        let n = runs.len() as f64;
        let gap_runs: Vec<f64> = runs
            .iter()
            .filter_map(|r| r.mean_time_between_successes)
            .map(|d| d.as_millis() as f64)
            .collect();
        let mean_gap = if gap_runs.is_empty() {
            None
        } else {
            Some(Duration::from_millis(
                (gap_runs.iter().sum::<f64>() / gap_runs.len() as f64).round() as u64,
            ))
        };
        Summary {
            access_failure_probability: runs
                .iter()
                .map(|r| r.access_failure_probability)
                .sum::<f64>()
                / n,
            mean_time_between_successes: mean_gap,
            successful_polls: (runs.iter().map(|r| r.successful_polls).sum::<u64>() as f64 / n)
                .round() as u64,
            failed_polls: (runs.iter().map(|r| r.failed_polls).sum::<u64>() as f64 / n).round()
                as u64,
            alarms: (runs.iter().map(|r| r.alarms).sum::<u64>() as f64 / n).round() as u64,
            loyal_effort_secs: runs.iter().map(|r| r.loyal_effort_secs).sum::<f64>() / n,
            adversary_effort_secs: runs.iter().map(|r| r.adversary_effort_secs).sum::<f64>() / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(gap_days: u64, polls: u64, loyal: f64, adversary: f64) -> Summary {
        Summary {
            access_failure_probability: 0.001,
            mean_time_between_successes: Some(Duration::from_days(gap_days)),
            successful_polls: polls,
            failed_polls: 0,
            alarms: 0,
            loyal_effort_secs: loyal,
            adversary_effort_secs: adversary,
        }
    }

    #[test]
    fn ratio_metrics() {
        let base = summary(90, 100, 1000.0, 0.0);
        let attacked = summary(180, 50, 1500.0, 3000.0);
        assert!((attacked.delay_ratio(&base).unwrap() - 2.0).abs() < 1e-9);
        // friction: (1500/50) / (1000/100) = 30 / 10 = 3.
        assert!((attacked.coefficient_of_friction(&base).unwrap() - 3.0).abs() < 1e-9);
        assert!((attacked.cost_ratio().unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_cases_are_none() {
        let empty = Summary::default();
        let base = summary(90, 100, 1000.0, 0.0);
        assert_eq!(empty.delay_ratio(&base), None);
        assert_eq!(empty.coefficient_of_friction(&base), None);
        assert_eq!(empty.cost_ratio(), None);
        assert_eq!(empty.effort_per_successful_poll(), None);
    }

    #[test]
    fn mean_of_averages_fields() {
        let a = summary(80, 100, 1000.0, 100.0);
        let b = summary(100, 200, 2000.0, 300.0);
        let m = Summary::mean_of(&[a, b]);
        assert_eq!(m.mean_time_between_successes, Some(Duration::from_days(90)));
        assert_eq!(m.successful_polls, 150);
        assert!((m.loyal_effort_secs - 1500.0).abs() < 1e-9);
        assert!((m.adversary_effort_secs - 200.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "mean of zero runs")]
    fn mean_of_empty_panics() {
        let _ = Summary::mean_of(&[]);
    }

    #[test]
    fn run_metrics_summarize() {
        use lockss_sim::SimTime;
        let mut rm = RunMetrics::new(10, SimTime::ZERO);
        rm.damage.on_damaged(SimTime::ZERO);
        rm.polls.on_success(0, 0, SimTime::ZERO + Duration::DAY);
        rm.loyal_effort_secs = 5.0;
        let s = rm.summarize(SimTime::ZERO + Duration::from_days(10));
        assert!((s.access_failure_probability - 0.1).abs() < 1e-9);
        assert_eq!(s.successful_polls, 1);
        assert_eq!(s.loyal_effort_secs, 5.0);
    }
}

//! Streaming run-time summaries with O(1) memory per observation.
//!
//! Production-scale runs (10k–100k peers, hundreds of thousands of poll
//! conclusions) cannot afford to buffer per-event vectors the way a
//! figure-scale run could; these collectors keep fixed-size state no
//! matter how long the run:
//!
//! - [`Reservoir`] — a uniform fixed-capacity sample (Vitter's
//!   Algorithm R) with quantile readout, driven by its own embedded
//!   deterministic RNG so runs stay byte-reproducible;
//! - [`EventBuckets`] — time-bucketed counters over `K` event kinds whose
//!   bucket width doubles (adjacent buckets merging) whenever the run
//!   outgrows the fixed bucket budget.

use lockss_sim::{Duration, SimRng, SimTime};

/// A uniform reservoir sample of a stream of `f64` observations.
///
/// Holds at most `cap` values; after the reservoir fills, each new
/// observation replaces a uniformly random held one with probability
/// `cap / seen`, so the retained set is always a uniform sample of
/// everything observed. The replacement draws come from an embedded
/// [`SimRng`] seeded at construction — identical streams in, identical
/// sample out, regardless of threads or wall clock.
#[derive(Clone, Debug)]
pub struct Reservoir {
    cap: usize,
    seen: u64,
    sample: Vec<f64>,
    rng: SimRng,
}

/// Fixed default seed: the reservoir is a run-local sketch, so a constant
/// salt keeps every run of the same scenario byte-identical.
const RESERVOIR_SEED: u64 = 0x7265_7376_7232;

impl Reservoir {
    /// An empty reservoir holding at most `cap` observations.
    pub fn new(cap: usize) -> Reservoir {
        Reservoir::with_seed(cap, RESERVOIR_SEED)
    }

    /// An empty reservoir with an explicit RNG seed.
    pub fn with_seed(cap: usize, seed: u64) -> Reservoir {
        Reservoir {
            cap,
            seen: 0,
            sample: Vec::with_capacity(cap.min(4096)),
            rng: SimRng::seed_from_u64(seed),
        }
    }

    /// Observes one value.
    pub fn add(&mut self, value: f64) {
        self.seen += 1;
        if self.sample.len() < self.cap {
            self.sample.push(value);
            return;
        }
        if self.cap == 0 {
            return;
        }
        // Algorithm R: keep with probability cap/seen, evicting uniformly.
        let j = self.rng.below(self.seen as usize);
        if j < self.cap {
            self.sample[j] = value;
        }
    }

    /// Observations seen (not the retained count).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Retained observations.
    pub fn len(&self) -> usize {
        self.sample.len()
    }

    /// True if nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.sample.is_empty()
    }

    /// The retained sample, in observation order.
    pub fn sample(&self) -> &[f64] {
        &self.sample
    }

    /// The `q`-quantile (`0.0..=1.0`) of the retained sample, by
    /// nearest-rank on a sorted copy. `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sample.is_empty() {
            return None;
        }
        let mut sorted = self.sample.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
        Some(sorted[rank])
    }
}

/// Time-bucketed counters over `K` event kinds with a fixed bucket budget.
///
/// Events land in the bucket `time / width`. When an event falls past the
/// last budgeted bucket, adjacent buckets merge pairwise and the width
/// doubles until it fits — so an arbitrarily long run is always summarized
/// by at most `max_buckets` rows, at whatever resolution the run length
/// affords. Counts are never dropped, only coarsened.
#[derive(Clone, Debug)]
pub struct EventBuckets<const K: usize> {
    width: Duration,
    max_buckets: usize,
    counts: Vec<[u64; K]>,
}

impl<const K: usize> EventBuckets<K> {
    /// Empty buckets starting at `width` resolution, capped at
    /// `max_buckets` rows.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or `max_buckets < 2`.
    pub fn new(width: Duration, max_buckets: usize) -> EventBuckets<K> {
        assert!(!width.is_zero(), "bucket width must be positive");
        assert!(max_buckets >= 2, "need at least two buckets to compact");
        EventBuckets {
            width,
            max_buckets,
            counts: Vec::new(),
        }
    }

    /// Counts one event of `kind` at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `kind >= K`.
    pub fn add(&mut self, at: SimTime, kind: usize) {
        assert!(kind < K, "kind {kind} out of range");
        let mut idx = (at.since(SimTime::ZERO).as_millis() / self.width.as_millis()) as usize;
        while idx >= self.max_buckets {
            self.compact();
            idx = (at.since(SimTime::ZERO).as_millis() / self.width.as_millis()) as usize;
        }
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, [0; K]);
        }
        self.counts[idx][kind] += 1;
    }

    /// Merges adjacent bucket pairs and doubles the width.
    fn compact(&mut self) {
        let merged: Vec<[u64; K]> = self
            .counts
            .chunks(2)
            .map(|pair| {
                let mut row = pair[0];
                if let Some(second) = pair.get(1) {
                    for (a, b) in row.iter_mut().zip(second.iter()) {
                        *a += b;
                    }
                }
                row
            })
            .collect();
        self.counts = merged;
        self.width = self.width * 2;
    }

    /// Current bucket width.
    pub fn width(&self) -> Duration {
        self.width
    }

    /// The counter rows, oldest first; row `i` covers
    /// `[i * width, (i+1) * width)`.
    pub fn rows(&self) -> &[[u64; K]] {
        &self.counts
    }

    /// Total events of `kind` across all buckets.
    pub fn total(&self, kind: usize) -> u64 {
        self.counts.iter().map(|row| row[kind]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(days: u64) -> SimTime {
        SimTime::ZERO + Duration::from_days(days)
    }

    #[test]
    fn reservoir_keeps_everything_under_capacity() {
        let mut r = Reservoir::new(10);
        for i in 0..10 {
            r.add(i as f64);
        }
        assert_eq!(r.len(), 10);
        assert_eq!(r.seen(), 10);
        assert_eq!(r.quantile(0.0), Some(0.0));
        assert_eq!(r.quantile(1.0), Some(9.0));
        assert_eq!(r.quantile(0.5), Some(5.0), "rank 4.5 rounds up");
    }

    #[test]
    fn reservoir_is_bounded_and_deterministic() {
        let run = || {
            let mut r = Reservoir::new(64);
            for i in 0..100_000u64 {
                r.add((i % 1000) as f64);
            }
            r.sample().to_vec()
        };
        let a = run();
        let b = run();
        assert_eq!(a.len(), 64, "capacity bound holds");
        assert_eq!(a, b, "same stream, same sample");
    }

    #[test]
    fn reservoir_quantiles_approximate_the_stream() {
        let mut r = Reservoir::new(512);
        // Uniform 0..10_000.
        for i in 0..10_000 {
            r.add(i as f64);
        }
        let p50 = r.quantile(0.5).unwrap();
        let p90 = r.quantile(0.9).unwrap();
        assert!((p50 - 5_000.0).abs() < 700.0, "p50 {p50}");
        assert!((p90 - 9_000.0).abs() < 700.0, "p90 {p90}");
        assert!(r.quantile(0.1).unwrap() < p50);
    }

    #[test]
    fn empty_reservoir_has_no_quantiles() {
        let r = Reservoir::new(8);
        assert!(r.is_empty());
        assert_eq!(r.quantile(0.5), None);
    }

    #[test]
    fn buckets_count_and_compact() {
        let mut b: EventBuckets<2> = EventBuckets::new(Duration::DAY, 4);
        b.add(t(0), 0);
        b.add(t(1), 0);
        b.add(t(2), 1);
        b.add(t(3), 0);
        assert_eq!(b.rows().len(), 4);
        assert_eq!(b.width(), Duration::DAY);
        // Day 8 forces two compactions: width 1d -> 2d -> 4d.
        b.add(t(8), 1);
        assert_eq!(b.width(), Duration::DAY * 4);
        assert!(b.rows().len() <= 4);
        // Nothing was lost, only coarsened.
        assert_eq!(b.total(0), 3);
        assert_eq!(b.total(1), 2);
        // Rows 0..4d hold days 0-3; day 8 sits in row 2.
        assert_eq!(b.rows()[0], [3, 1]);
        assert_eq!(b.rows()[2], [0, 1]);
    }

    #[test]
    fn buckets_handle_long_runs_within_budget() {
        let mut b: EventBuckets<1> = EventBuckets::new(Duration::DAY, 64);
        for d in 0..3650 {
            b.add(t(d), 0);
        }
        assert!(b.rows().len() <= 64);
        assert_eq!(b.total(0), 3650);
        // Ten years at 64 buckets: width became a power-of-two of days.
        assert!(b.width() >= Duration::from_days(57));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bucket_kind_bound_is_enforced() {
        let mut b: EventBuckets<1> = EventBuckets::new(Duration::DAY, 4);
        b.add(t(0), 1);
    }
}

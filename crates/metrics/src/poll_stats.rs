//! Poll outcome statistics.
//!
//! Tracks, per (peer, AU), the times between consecutive *successful* polls;
//! their mean is the numerator/denominator of the delay ratio (§6.1). Also
//! counts failed (inquorate) polls and inconclusive-poll alarms.

use lockss_sim::FxHashMap;

use lockss_sim::{Duration, SimTime};

use crate::streaming::Reservoir;

/// Success gaps retained for quantile readout; a fixed-size uniform sample
/// no matter how many polls a production-scale run concludes.
const GAP_RESERVOIR_CAP: usize = 512;

/// Aggregated poll outcomes for one run.
#[derive(Clone, Debug)]
pub struct PollStats {
    last_success: FxHashMap<(u32, u32), SimTime>,
    gap_sum_ms: f64,
    gap_count: u64,
    /// Streaming uniform sample of completed success gaps (milliseconds),
    /// for the p50/p90 readout — the mean alone hides attack-induced tail
    /// stretching.
    gaps: Reservoir,
    /// Polls that concluded in a landslide win.
    pub successful_polls: u64,
    /// Polls that concluded inquorate or without a landslide win.
    pub failed_polls: u64,
    /// Inconclusive-poll alarms (§4.3: operator attention required).
    pub alarms: u64,
}

impl Default for PollStats {
    fn default() -> Self {
        PollStats {
            last_success: FxHashMap::default(),
            gap_sum_ms: 0.0,
            gap_count: 0,
            gaps: Reservoir::new(GAP_RESERVOIR_CAP),
            successful_polls: 0,
            failed_polls: 0,
            alarms: 0,
        }
    }
}

impl PollStats {
    /// Fresh, empty statistics.
    pub fn new() -> PollStats {
        PollStats::default()
    }

    /// Registers a (peer, AU) pair when its first poll opens at `t`, so a
    /// pair that *never* succeeds still contributes a censored gap — an
    /// attack that starves polls entirely must not vanish from the delay
    /// ratio.
    pub fn register(&mut self, peer: u32, au: u32, t: SimTime) {
        self.last_success.entry((peer, au)).or_insert(t);
    }

    /// Records a successful poll by `peer` on `au` concluding at `now`.
    pub fn on_success(&mut self, peer: u32, au: u32, now: SimTime) {
        self.successful_polls += 1;
        if let Some(prev) = self.last_success.insert((peer, au), now) {
            let gap_ms = now.since(prev).as_millis() as f64;
            self.gap_sum_ms += gap_ms;
            self.gap_count += 1;
            self.gaps.add(gap_ms);
        }
    }

    /// Records a failed (inquorate or abandoned) poll.
    pub fn on_failure(&mut self) {
        self.failed_polls += 1;
    }

    /// Records an inconclusive-poll alarm (§4.3: requires operator
    /// attention).
    pub fn on_alarm(&mut self) {
        self.alarms += 1;
    }

    /// Mean time between successful polls on the same (peer, AU), counting
    /// only completed gaps. `None` if no gap was observed.
    pub fn mean_time_between_successes(&self) -> Option<Duration> {
        if self.gap_count == 0 {
            return None;
        }
        Some(Duration::from_millis(
            (self.gap_sum_ms / self.gap_count as f64).round() as u64,
        ))
    }

    /// Mean time between successes *including* one right-censored gap per
    /// registered pair (from its last success — or registration — to the
    /// end of the run). This is the delay-ratio numerator/denominator:
    /// starving a pair completely must lengthen the metric, not remove the
    /// pair from it.
    pub fn mean_gap_censored(&self, end: SimTime) -> Option<Duration> {
        let pairs = self.last_success.len() as u64;
        if self.gap_count + pairs == 0 {
            return None;
        }
        let tail: f64 = self
            .last_success
            .values()
            .map(|&t| end.since(t).as_millis() as f64)
            .sum();
        Some(Duration::from_millis(
            ((self.gap_sum_ms + tail) / (self.gap_count + pairs) as f64).round() as u64,
        ))
    }

    /// The `q`-quantile of completed success gaps, from the streaming
    /// reservoir sample. `None` before the first completed gap.
    pub fn gap_quantile(&self, q: f64) -> Option<Duration> {
        self.gaps
            .quantile(q)
            .map(|ms| Duration::from_millis(ms.round() as u64))
    }

    /// Fraction of polls that succeeded.
    pub fn success_rate(&self) -> f64 {
        let total = self.successful_polls + self.failed_polls;
        if total == 0 {
            return 0.0;
        }
        self.successful_polls as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(days: u64) -> SimTime {
        SimTime::ZERO + Duration::from_days(days)
    }

    #[test]
    fn gaps_are_per_peer_au() {
        let mut s = PollStats::new();
        s.on_success(0, 0, t(0));
        s.on_success(1, 0, t(10)); // different peer: no gap yet
        s.on_success(0, 0, t(90));
        s.on_success(1, 0, t(100));
        assert_eq!(s.successful_polls, 4);
        // Gaps: 90 days and 90 days.
        assert_eq!(
            s.mean_time_between_successes(),
            Some(Duration::from_days(90))
        );
    }

    #[test]
    fn no_gap_without_two_successes() {
        let mut s = PollStats::new();
        assert_eq!(s.mean_time_between_successes(), None);
        s.on_success(0, 0, t(5));
        assert_eq!(s.mean_time_between_successes(), None);
    }

    #[test]
    fn success_rate() {
        let mut s = PollStats::new();
        s.on_success(0, 0, t(1));
        s.on_failure();
        s.on_failure();
        s.on_success(0, 1, t(2));
        assert!((s.success_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_success_rate_is_zero() {
        assert_eq!(PollStats::new().success_rate(), 0.0);
    }

    #[test]
    fn alarms_count() {
        let mut s = PollStats::new();
        s.on_alarm();
        s.on_alarm();
        assert_eq!(s.alarms, 2);
    }

    #[test]
    fn distinct_aus_tracked_separately() {
        let mut s = PollStats::new();
        s.on_success(0, 0, t(0));
        s.on_success(0, 1, t(50));
        s.on_success(0, 0, t(100));
        // Only one gap (au 0): 100 days.
        assert_eq!(
            s.mean_time_between_successes(),
            Some(Duration::from_days(100))
        );
    }
}

#[cfg(test)]
mod censored_tests {
    use super::*;

    fn t(days: u64) -> SimTime {
        SimTime::ZERO + Duration::from_days(days)
    }

    #[test]
    fn starved_pair_contributes_full_run_gap() {
        let mut s = PollStats::new();
        s.register(0, 0, t(0));
        // Never succeeds: the censored mean must be the whole run.
        assert_eq!(s.mean_gap_censored(t(720)), Some(Duration::from_days(720)));
        // Uncensored variant would report nothing at all.
        assert_eq!(s.mean_time_between_successes(), None);
    }

    #[test]
    fn censored_mixes_completed_and_tail_gaps() {
        let mut s = PollStats::new();
        s.register(0, 0, t(0));
        s.on_success(0, 0, t(90)); // completed gap: 90
        s.on_success(0, 0, t(180)); // completed gap: 90
                                    // Tail: 360-180 = 180. Mean = (90+90+180)/3 = 120.
        assert_eq!(s.mean_gap_censored(t(360)), Some(Duration::from_days(120)));
    }

    #[test]
    fn register_is_idempotent_and_does_not_override_success() {
        let mut s = PollStats::new();
        s.register(0, 0, t(0));
        s.register(0, 0, t(50)); // later registration ignored
        s.on_success(0, 0, t(90));
        s.register(0, 0, t(100)); // ignored after success too
        assert_eq!(s.mean_gap_censored(t(180)), Some(Duration::from_days(90)));
    }

    #[test]
    fn empty_stats_have_no_censored_gap() {
        let s = PollStats::new();
        assert_eq!(s.mean_gap_censored(t(100)), None);
    }
}

//! Trace-derived timelines: the per-poll and per-window views the live
//! metric counters cannot reconstruct after the fact.
//!
//! [`RunMetrics`](crate::RunMetrics) condenses a run as it executes —
//! counts, integrals, phase deltas — and deliberately forgets individual
//! polls. The event-trace layer (`lockss-trace`) keeps the full causal
//! stream, and its stats pass rebuilds *timelines* from it: one
//! [`PollTimeline`] per poll (when it opened, how long it ran, how many
//! votes it gathered, how it concluded) and [`TimeBuckets`] histograms of
//! event activity over simulated time. This module owns those types so any
//! consumer of the metrics crate can aggregate them without depending on
//! the trace format itself.

use lockss_sim::{Duration, SimTime};

/// The reconstructed lifecycle of one poll.
#[derive(Clone, Debug, PartialEq)]
pub struct PollTimeline {
    /// The globally unique poll id.
    pub poll: u64,
    /// The poller's peer index.
    pub peer: u32,
    /// The audited AU index.
    pub au: u32,
    /// When the poll opened.
    pub started: SimTime,
    /// When it concluded (`None` if the run ended first).
    pub concluded: Option<SimTime>,
    /// Outcome label (`"win"`, `"loss"`, `"inconclusive"`, `"inquorate"`);
    /// `None` while unconcluded.
    pub outcome: Option<&'static str>,
    /// Valid votes recorded at conclusion.
    pub votes: u32,
    /// Poll invitations the poller shipped (including retries).
    pub invites_sent: u32,
    /// Repair blocks applied during the poll.
    pub repairs: u32,
}

impl PollTimeline {
    /// A poll that has just opened.
    pub fn open(poll: u64, peer: u32, au: u32, started: SimTime) -> PollTimeline {
        PollTimeline {
            poll,
            peer,
            au,
            started,
            concluded: None,
            outcome: None,
            votes: 0,
            invites_sent: 0,
            repairs: 0,
        }
    }

    /// How long the poll ran (up to `end` if it never concluded).
    pub fn duration(&self, end: SimTime) -> Duration {
        self.concluded.unwrap_or(end).since(self.started)
    }
}

/// Aggregate view over a run's poll timelines.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimelineSummary {
    /// Polls that opened.
    pub polls_started: u64,
    /// Polls that concluded before the run ended.
    pub polls_concluded: u64,
    /// Concluded with a landslide win.
    pub wins: u64,
    /// Concluded with a landslide loss.
    pub losses: u64,
    /// Concluded quorate but without a landslide.
    pub inconclusive: u64,
    /// Concluded inquorate.
    pub inquorate: u64,
    /// Mean open-to-conclusion time of concluded polls.
    pub mean_poll_duration: Option<Duration>,
    /// Mean valid votes per concluded poll.
    pub mean_votes: f64,
    /// Mean invitations shipped per poll (retries included).
    pub mean_invites: f64,
    /// Total repair blocks applied.
    pub repairs: u64,
}

impl TimelineSummary {
    /// Condenses a set of poll timelines.
    pub fn from_polls(polls: &[PollTimeline]) -> TimelineSummary {
        let mut s = TimelineSummary {
            polls_started: polls.len() as u64,
            ..TimelineSummary::default()
        };
        let mut dur_ms = 0u64;
        let mut votes = 0u64;
        let mut invites = 0u64;
        for p in polls {
            invites += p.invites_sent as u64;
            s.repairs += p.repairs as u64;
            let Some(concluded) = p.concluded else {
                continue;
            };
            s.polls_concluded += 1;
            dur_ms += concluded.since(p.started).as_millis();
            votes += p.votes as u64;
            match p.outcome {
                Some("win") => s.wins += 1,
                Some("loss") => s.losses += 1,
                Some("inconclusive") => s.inconclusive += 1,
                Some("inquorate") => s.inquorate += 1,
                _ => {}
            }
        }
        if let Some(mean_ms) = dur_ms.checked_div(s.polls_concluded) {
            s.mean_poll_duration = Some(Duration::from_millis(mean_ms));
            s.mean_votes = votes as f64 / s.polls_concluded as f64;
        }
        if s.polls_started > 0 {
            s.mean_invites = invites as f64 / s.polls_started as f64;
        }
        s
    }

    /// Fraction of concluded polls that won; `None` with nothing concluded.
    pub fn win_rate(&self) -> Option<f64> {
        if self.polls_concluded == 0 {
            return None;
        }
        Some(self.wins as f64 / self.polls_concluded as f64)
    }
}

/// A fixed-width histogram of event counts over simulated time.
///
/// Trace diffing uses two of these to show *where* two runs' behaviors
/// fork: aligned buckets subtract cleanly even when the runs drift apart
/// event-by-event.
#[derive(Clone, Debug, PartialEq)]
pub struct TimeBuckets {
    width: Duration,
    counts: Vec<u64>,
}

impl TimeBuckets {
    /// An empty histogram with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: Duration) -> TimeBuckets {
        assert!(!width.is_zero(), "bucket width must be positive");
        TimeBuckets {
            width,
            counts: Vec::new(),
        }
    }

    /// The bucket width.
    pub fn width(&self) -> Duration {
        self.width
    }

    /// Counts one event at `at`.
    pub fn add(&mut self, at: SimTime) {
        let idx = (at.as_millis() / self.width.as_millis()) as usize;
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
    }

    /// Number of buckets (through the latest seen event).
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True if no event was counted.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// The count in bucket `idx` (0 past the end).
    pub fn count(&self, idx: usize) -> u64 {
        self.counts.get(idx).copied().unwrap_or(0)
    }

    /// Total events counted.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Per-bucket signed difference `self - other` (buckets must have the
    /// same width).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn delta(&self, other: &TimeBuckets) -> Vec<i64> {
        assert_eq!(self.width, other.width, "bucket widths must match");
        let n = self.counts.len().max(other.counts.len());
        (0..n)
            .map(|i| self.count(i) as i64 - other.count(i) as i64)
            .collect()
    }

    /// The bucket with the largest absolute difference against `other`,
    /// as `(bucket index, signed delta)`; ties go to the earliest bucket;
    /// `None` if identical.
    pub fn widest_gap(&self, other: &TimeBuckets) -> Option<(usize, i64)> {
        let mut best: Option<(usize, i64)> = None;
        for (i, d) in self.delta(other).into_iter().enumerate() {
            if d != 0 && best.is_none_or(|(_, b)| d.unsigned_abs() > b.unsigned_abs()) {
                best = Some((i, d));
            }
        }
        best
    }

    /// The simulated span bucket `idx` covers, as `(start, end)`.
    pub fn span(&self, idx: usize) -> (SimTime, SimTime) {
        let start = SimTime(self.width.as_millis() * idx as u64);
        (start, start + self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(days: u64) -> SimTime {
        SimTime::ZERO + Duration::from_days(days)
    }

    #[test]
    fn timeline_summary_aggregates() {
        let mut a = PollTimeline::open(0, 1, 0, t(0));
        a.concluded = Some(t(10));
        a.outcome = Some("win");
        a.votes = 8;
        a.invites_sent = 12;
        a.repairs = 1;
        let mut b = PollTimeline::open(1, 2, 0, t(5));
        b.concluded = Some(t(25));
        b.outcome = Some("inquorate");
        b.invites_sent = 10;
        let c = PollTimeline::open(2, 1, 1, t(30)); // never concluded
        let s = TimelineSummary::from_polls(&[a, b, c.clone()]);
        assert_eq!(s.polls_started, 3);
        assert_eq!(s.polls_concluded, 2);
        assert_eq!(s.wins, 1);
        assert_eq!(s.inquorate, 1);
        assert_eq!(s.mean_poll_duration, Some(Duration::from_days(15)));
        assert!((s.mean_votes - 4.0).abs() < 1e-12);
        assert_eq!(s.repairs, 1);
        assert_eq!(s.win_rate(), Some(0.5));
        assert_eq!(c.duration(t(40)), Duration::from_days(10));
        assert_eq!(TimelineSummary::from_polls(&[]).win_rate(), None);
    }

    #[test]
    fn buckets_count_and_diff() {
        let w = Duration::from_days(30);
        let mut a = TimeBuckets::new(w);
        let mut b = TimeBuckets::new(w);
        for d in [1, 2, 40, 40, 100] {
            a.add(t(d));
        }
        for d in [1, 40, 95] {
            b.add(t(d));
        }
        assert_eq!(a.total(), 5);
        assert_eq!(a.len(), 4);
        assert_eq!(a.count(0), 2);
        assert_eq!(a.delta(&b), vec![1, 1, 0, 0]);
        assert_eq!(a.widest_gap(&b), Some((0, 1)));
        assert!(a.widest_gap(&a).is_none());
        let (start, end) = a.span(1);
        assert_eq!(start, t(30));
        assert_eq!(end, t(60));
        assert!(!a.is_empty());
        assert!(TimeBuckets::new(w).is_empty());
    }

    #[test]
    #[should_panic(expected = "bucket widths must match")]
    fn mismatched_widths_panic() {
        let a = TimeBuckets::new(Duration::from_days(1));
        let b = TimeBuckets::new(Duration::from_days(2));
        let _ = a.delta(&b);
    }
}

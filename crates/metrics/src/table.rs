//! Plain-text table rendering for experiment outputs.
//!
//! The experiment binaries print the same rows/series the paper's figures
//! and Table 1 report; this helper keeps them aligned and also emits CSV.

/// A simple column-aligned table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        while cells.len() < self.header.len() {
            cells.push(String::new());
        }
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", c, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (no quoting; experiment cells never contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a probability in the paper's scientific style, e.g. `4.8e-4`.
pub fn sci(p: f64) -> String {
    if p == 0.0 {
        return "0".to_string();
    }
    format!("{p:.2e}")
}

/// Formats a ratio with two decimals, e.g. `2.61`.
pub fn ratio(r: Option<f64>) -> String {
    match r {
        Some(v) => format!("{v:.2}"),
        None => "n/a".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["x", "longer"]);
        t.row(vec!["12345", "1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "x      longer");
        assert_eq!(lines[2], "12345  1");
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["1"]);
        assert_eq!(t.len(), 1);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b,c\n1,,\n");
    }

    #[test]
    fn sci_formatting() {
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(4.8e-4), "4.80e-4");
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(ratio(Some(2.613)), "2.61");
        assert_eq!(ratio(None), "n/a");
    }
}

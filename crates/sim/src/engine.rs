//! The discrete-event engine.
//!
//! Events are boxed closures over a caller-supplied world type `W`. Popping
//! an event hands `&mut W` and `&mut Engine<W>` to the closure, which may
//! schedule further events. Ties in time are broken by insertion order, so a
//! run is a pure function of (initial world, seed).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{Duration, SimTime};

/// An event body: runs against the world and may schedule more events.
pub type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Engine<W>)>;

struct Scheduled<W> {
    at: SimTime,
    seq: u64,
    run: EventFn<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A single-threaded discrete-event engine.
///
/// # Examples
///
/// ```
/// use lockss_sim::{Duration, Engine, SimTime};
///
/// let mut engine: Engine<Vec<u64>> = Engine::new();
/// engine.schedule_in(Duration::SECOND, |log: &mut Vec<u64>, eng| {
///     log.push(eng.now().as_millis());
/// });
/// let mut log = Vec::new();
/// engine.run_until(&mut log, SimTime::ZERO + Duration::MINUTE);
/// assert_eq!(log, vec![1000]);
/// ```
pub struct Engine<W> {
    now: SimTime,
    seq: u64,
    executed: u64,
    queue: BinaryHeap<Scheduled<W>>,
    /// Hard stop; events scheduled past this instant are silently dropped at
    /// pop time (they stay queued but never run).
    horizon: Option<SimTime>,
    /// Set by [`Engine::request_stop`] from inside an event; cleared when a
    /// run loop is entered.
    stop_requested: bool,
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Engine<W> {
    /// Creates an engine at time zero with an empty queue.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            executed: 0,
            queue: BinaryHeap::new(),
            horizon: None,
            stop_requested: false,
        }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently queued.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// The stop horizon, if one was set by `run_until`.
    pub fn horizon(&self) -> Option<SimTime> {
        self.horizon
    }

    /// Asks the current run loop to stop after the executing event returns.
    ///
    /// Only meaningful from inside an event handler: the flag is cleared
    /// when `run_until` / `run_to_exhaustion` is entered, so a request made
    /// between runs has no effect. Observers that verify a run as it
    /// executes (e.g. a trace-replay sink) use this to abort at the first
    /// divergence instead of simulating months past it; queued events stay
    /// queued, and the clock stays at the stopping event's instant.
    pub fn request_stop(&mut self) {
        self.stop_requested = true;
    }

    /// True if [`Engine::request_stop`] fired during the last run loop.
    pub fn stop_requested(&self) -> bool {
        self.stop_requested
    }

    /// Schedules `f` to run at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to "now": the event runs at the
    /// current instant, after already-queued events for this instant.
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F)
    where
        F: FnOnce(&mut W, &mut Engine<W>) + 'static,
    {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled {
            at,
            seq,
            run: Box::new(f),
        });
    }

    /// Schedules `f` to run `delay` after the current instant.
    pub fn schedule_in<F>(&mut self, delay: Duration, f: F)
    where
        F: FnOnce(&mut W, &mut Engine<W>) + 'static,
    {
        self.schedule_at(self.now + delay, f);
    }

    /// Runs events in order until the queue empties or simulated time
    /// reaches `until`. Returns the number of events executed by this call.
    ///
    /// Events timestamped exactly at `until` do *not* run; the engine's
    /// clock finishes at `until`.
    pub fn run_until(&mut self, world: &mut W, until: SimTime) -> u64 {
        self.horizon = Some(until);
        self.stop_requested = false;
        let before = self.executed;
        while let Some(head) = self.queue.peek() {
            if head.at >= until {
                break;
            }
            let ev = self.queue.pop().expect("peeked head exists");
            debug_assert!(ev.at >= self.now, "time must be monotone");
            self.now = ev.at;
            self.executed += 1;
            (ev.run)(world, self);
            if self.stop_requested {
                return self.executed - before;
            }
        }
        self.now = self.now.max(until);
        self.executed - before
    }

    /// Runs all queued events to exhaustion (use with care: self-rescheduling
    /// periodic events make this diverge; prefer `run_until`).
    pub fn run_to_exhaustion(&mut self, world: &mut W) -> u64 {
        let before = self.executed;
        self.stop_requested = false;
        while let Some(ev) = self.queue.pop() {
            debug_assert!(ev.at >= self.now, "time must be monotone");
            self.now = ev.at;
            self.executed += 1;
            (ev.run)(world, self);
            if self.stop_requested {
                break;
            }
        }
        self.executed - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        eng.schedule_at(SimTime(30), |w: &mut Vec<u32>, _| w.push(3));
        eng.schedule_at(SimTime(10), |w: &mut Vec<u32>, _| w.push(1));
        eng.schedule_at(SimTime(20), |w: &mut Vec<u32>, _| w.push(2));
        let mut w = Vec::new();
        eng.run_until(&mut w, SimTime(100));
        assert_eq!(w, vec![1, 2, 3]);
        assert_eq!(eng.executed(), 3);
        assert_eq!(eng.now(), SimTime(100));
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        for i in 0..10 {
            eng.schedule_at(SimTime(5), move |w: &mut Vec<u32>, _| w.push(i));
        }
        let mut w = Vec::new();
        eng.run_to_exhaustion(&mut w);
        assert_eq!(w, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        eng.schedule_at(SimTime(1), |_, e| {
            e.schedule_in(Duration(5), |w: &mut Vec<u64>, e2| {
                w.push(e2.now().as_millis());
            });
        });
        let mut w = Vec::new();
        eng.run_until(&mut w, SimTime(100));
        assert_eq!(w, vec![6]);
    }

    #[test]
    fn horizon_is_exclusive() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule_at(SimTime(10), |w: &mut u32, _| *w += 1);
        eng.schedule_at(SimTime(11), |w: &mut u32, _| *w += 1);
        let mut w = 0;
        eng.run_until(&mut w, SimTime(11));
        assert_eq!(w, 1);
        assert_eq!(eng.now(), SimTime(11));
        // Resuming picks up the remaining event.
        eng.run_until(&mut w, SimTime(12));
        assert_eq!(w, 2);
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut eng: Engine<Vec<&'static str>> = Engine::new();
        eng.schedule_at(SimTime(50), |_, e| {
            e.schedule_at(SimTime(10), |w: &mut Vec<&'static str>, _| w.push("late"));
            e.schedule_at(SimTime(50), |w: &mut Vec<&'static str>, _| w.push("same"));
        });
        let mut w = Vec::new();
        eng.run_to_exhaustion(&mut w);
        assert_eq!(w, vec!["late", "same"]);
        assert_eq!(eng.now(), SimTime(50));
    }

    #[test]
    fn request_stop_halts_the_run_loop() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        eng.schedule_at(SimTime(10), |w: &mut Vec<u32>, e| {
            w.push(1);
            e.request_stop();
        });
        eng.schedule_at(SimTime(20), |w: &mut Vec<u32>, _| w.push(2));
        let mut w = Vec::new();
        let ran = eng.run_until(&mut w, SimTime(100));
        assert_eq!(ran, 1);
        assert_eq!(w, vec![1]);
        assert!(eng.stop_requested());
        assert_eq!(eng.now(), SimTime(10), "clock stays at the stop event");
        assert_eq!(eng.queued(), 1, "later events stay queued");
        // A fresh run clears the flag and resumes from the queue.
        eng.run_until(&mut w, SimTime(100));
        assert_eq!(w, vec![1, 2]);
        assert!(!eng.stop_requested());
    }

    #[test]
    fn periodic_self_rescheduling() {
        struct W {
            ticks: u32,
        }
        fn tick(w: &mut W, e: &mut Engine<W>) {
            w.ticks += 1;
            e.schedule_in(Duration(10), tick);
        }
        let mut eng: Engine<W> = Engine::new();
        eng.schedule_at(SimTime(0), tick);
        let mut w = W { ticks: 0 };
        eng.run_until(&mut w, SimTime(100));
        assert_eq!(w.ticks, 10); // t = 0, 10, ..., 90
    }
}

//! The discrete-event engine.
//!
//! Events are closures over a caller-supplied world type `W`. Popping an
//! event hands `&mut W` and `&mut Engine<W>` to the closure, which may
//! schedule further events. Ties in time are broken by insertion order, so a
//! run is a pure function of (initial world, seed).
//!
//! # Storage
//!
//! The priority queue itself holds only plain `(time, seq, slot)` keys; the
//! closures live in a slab-backed arena (`EventArena`) whose slots are
//! recycled through a free list as events execute. Closures at most
//! `INLINE_BYTES` (32) bytes — the protocol's common captures — are stored
//! *inline* in their slot, so the steady state allocates nothing per
//! event: no `Box` per closure, and no heap churn in the `BinaryHeap`
//! beyond its amortized growth. Oversized closures transparently fall back
//! to a boxed representation. The `(time, seq)` total order is bitwise
//! identical to the boxed implementation this replaced, which is what keeps
//! recorded traces replayable across the change.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::mem::{self, MaybeUninit};

use lockss_obs::{Counter, Gauge, RegistryBuilder};

use crate::time::{Duration, SimTime};

/// Pre-registered metric handles for one engine (see `lockss-obs`).
///
/// The engine publishes into these when a run loop *exits* — never per
/// event — so an instrumented engine pays one null-check per `run_until`
/// call, and an un-instrumented one pays nothing in the hot loop.
/// Metrics are strictly out-of-band: they never influence event order.
#[derive(Clone)]
pub struct EngineObs {
    /// Events executed, accumulated across run loops (and, when the
    /// registry is shared, across every engine in a sweep).
    pub events_executed: Counter,
    /// Events still queued when the last run loop exited.
    pub events_queued: Gauge,
    /// Live arena slots when the last run loop exited.
    pub arena_live: Gauge,
    /// High-water mark of arena slots across all observed engines.
    pub arena_total: Gauge,
}

impl EngineObs {
    /// Registers the engine's metrics on `b` and returns the handles.
    pub fn register(b: &mut RegistryBuilder) -> EngineObs {
        EngineObs {
            events_executed: b.counter(
                "engine_events_executed_total",
                "Events executed by the discrete-event engine",
            ),
            events_queued: b.gauge(
                "engine_events_queued",
                "Events queued when the last run loop exited",
            ),
            arena_live: b.gauge(
                "engine_arena_live",
                "Live event-arena slots when the last run loop exited",
            ),
            arena_total: b.gauge("engine_arena_total", "High-water mark of event-arena slots"),
        }
    }
}

/// A boxed event body: runs against the world and may schedule more events.
///
/// Retained as the engine's public name for an owned event closure;
/// internally events of ordinary size are stored inline in the arena and
/// never boxed.
pub type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Engine<W>)>;

/// Inline storage per arena slot. Sized for the protocol layer's common
/// captures — a few ids and indices — while keeping a slot at one cache
/// line, so scheduling moves at most 48 bytes. Rare fat closures (message
/// deliveries capturing a whole `Message`) take the boxed fallback, which
/// is exactly what the previous all-boxed representation paid for *every*
/// event.
const INLINE_BYTES: usize = 32;

/// Maximum supported alignment for inline closures; larger-aligned ones are
/// boxed.
const INLINE_ALIGN: usize = 16;

/// Raw closure storage: an aligned byte array written and read via typed
/// raw pointers.
#[repr(C, align(16))]
struct Payload([MaybeUninit<u8>; INLINE_BYTES]);

type CallFn<W> = unsafe fn(*mut u8, &mut W, &mut Engine<W>);
type DropFn = unsafe fn(*mut u8);

/// Reads an `F` out of the payload and runs it.
///
/// # Safety
///
/// `p` must point to a valid, initialized `F` that is never read again.
unsafe fn call_inline<W, F: FnOnce(&mut W, &mut Engine<W>)>(
    p: *mut u8,
    w: &mut W,
    eng: &mut Engine<W>,
) {
    let f = unsafe { p.cast::<F>().read() };
    f(w, eng);
}

/// Reads a `Box<F>` out of the payload and runs it.
///
/// # Safety
///
/// `p` must point to a valid, initialized `Box<F>` that is never read again.
unsafe fn call_boxed<W, F: FnOnce(&mut W, &mut Engine<W>)>(
    p: *mut u8,
    w: &mut W,
    eng: &mut Engine<W>,
) {
    let b = unsafe { p.cast::<Box<F>>().read() };
    b(w, eng);
}

/// Drops the `T` stored in the payload in place.
///
/// # Safety
///
/// `p` must point to a valid, initialized `T` that is never used again.
unsafe fn drop_payload<T>(p: *mut u8) {
    unsafe { std::ptr::drop_in_place(p.cast::<T>()) }
}

/// One type-erased event closure, stored inline when it fits.
struct EventCell<W> {
    call: CallFn<W>,
    drop_fn: DropFn,
    payload: Payload,
    /// The erased closure is neither `Send` nor `Sync` in general; without
    /// this marker the raw-bytes representation would be auto-`Send`/`Sync`
    /// and safe code could move an engine holding (say) `Rc`-capturing
    /// events across threads. Mirrors the auto-traits of the boxed
    /// representation this replaced.
    _not_send: std::marker::PhantomData<EventFn<W>>,
}

impl<W> EventCell<W> {
    fn new<F>(f: F) -> EventCell<W>
    where
        F: FnOnce(&mut W, &mut Engine<W>) + 'static,
    {
        let mut payload = Payload([MaybeUninit::uninit(); INLINE_BYTES]);
        if mem::size_of::<F>() <= INLINE_BYTES && mem::align_of::<F>() <= INLINE_ALIGN {
            // SAFETY: the payload is large and aligned enough for `F`; the
            // value is owned by the cell from here on (run exactly once by
            // `invoke` or dropped exactly once by `Drop`).
            unsafe { payload.0.as_mut_ptr().cast::<F>().write(f) };
            EventCell {
                call: call_inline::<W, F>,
                drop_fn: drop_payload::<F>,
                payload,
                _not_send: std::marker::PhantomData,
            }
        } else {
            let boxed = Box::new(f);
            // SAFETY: a `Box` pointer always fits the payload.
            unsafe { payload.0.as_mut_ptr().cast::<Box<F>>().write(boxed) };
            EventCell {
                call: call_boxed::<W, F>,
                drop_fn: drop_payload::<Box<F>>,
                payload,
                _not_send: std::marker::PhantomData,
            }
        }
    }

    /// Runs the stored closure, consuming the cell.
    fn invoke(self, world: &mut W, eng: &mut Engine<W>) {
        // The payload is moved out by `call`; suppress the cell's own drop
        // so it is not dropped a second time. If the closure panics it is
        // already on the callee's stack and unwinding drops it there.
        let mut this = mem::ManuallyDrop::new(self);
        // SAFETY: `call` matches the payload's contents by construction,
        // and the ManuallyDrop guarantees this is the only consumption.
        unsafe { (this.call)(this.payload.0.as_mut_ptr().cast::<u8>(), world, eng) }
    }
}

impl<W> Drop for EventCell<W> {
    fn drop(&mut self) {
        // SAFETY: a cell that was not `invoke`d still owns its payload;
        // `drop_fn` matches the stored type by construction.
        unsafe { (self.drop_fn)(self.payload.0.as_mut_ptr().cast::<u8>()) }
    }
}

/// Slab of event cells with free-list slot reuse.
struct EventArena<W> {
    slots: Vec<Option<EventCell<W>>>,
    free: Vec<u32>,
}

impl<W> EventArena<W> {
    fn with_capacity(n: usize) -> EventArena<W> {
        EventArena {
            slots: Vec::with_capacity(n),
            free: Vec::new(),
        }
    }

    fn insert(&mut self, cell: EventCell<W>) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(cell);
                i
            }
            None => {
                let i = u32::try_from(self.slots.len()).expect("under 4G outstanding events");
                self.slots.push(Some(cell));
                i
            }
        }
    }

    fn take(&mut self, slot: u32) -> EventCell<W> {
        let cell = self.slots[slot as usize].take().expect("live event slot");
        self.free.push(slot);
        cell
    }
}

/// Heap key for one scheduled event; the closure lives in the arena.
struct HeapKey {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialEq for HeapKey {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapKey {}
impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A single-threaded discrete-event engine.
///
/// # Examples
///
/// ```
/// use lockss_sim::{Duration, Engine, SimTime};
///
/// let mut engine: Engine<Vec<u64>> = Engine::new();
/// engine.schedule_in(Duration::SECOND, |log: &mut Vec<u64>, eng| {
///     log.push(eng.now().as_millis());
/// });
/// let mut log = Vec::new();
/// engine.run_until(&mut log, SimTime::ZERO + Duration::MINUTE);
/// assert_eq!(log, vec![1000]);
/// ```
pub struct Engine<W> {
    now: SimTime,
    seq: u64,
    executed: u64,
    queue: BinaryHeap<HeapKey>,
    arena: EventArena<W>,
    /// Hard stop; events scheduled past this instant are silently dropped at
    /// pop time (they stay queued but never run).
    horizon: Option<SimTime>,
    /// Set by [`Engine::request_stop`] from inside an event; cleared when a
    /// run loop is entered.
    stop_requested: bool,
    /// Metric handles published when a run loop exits; `None` costs one
    /// null-check per run loop, nothing per event.
    obs: Option<Box<EngineObs>>,
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Engine<W> {
    /// Creates an engine at time zero with an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an engine whose queue and event arena are pre-sized for
    /// roughly `events` simultaneously outstanding events.
    ///
    /// Purely a performance knob for large-population worlds: a 10k+-peer
    /// world schedules tens of thousands of first-poll and damage events
    /// before the run starts, and pre-sizing avoids the doubling cascade on
    /// both the binary heap and the slot slab. Behaviour is identical to
    /// [`Engine::new`].
    pub fn with_capacity(events: usize) -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            executed: 0,
            queue: BinaryHeap::with_capacity(events),
            arena: EventArena::with_capacity(events),
            horizon: None,
            stop_requested: false,
            obs: None,
        }
    }

    /// Installs metric handles; the engine publishes into them whenever
    /// a run loop exits.
    pub fn set_obs(&mut self, obs: EngineObs) {
        self.obs = Some(Box::new(obs));
    }

    /// Publishes end-of-loop engine state into the installed handles.
    fn publish_obs(&self, ran: u64) {
        if let Some(o) = &self.obs {
            o.events_executed.add(ran);
            o.events_queued.set(self.queue.len() as u64);
            let (live, total) = self.arena_occupancy();
            o.arena_live.set(live as u64);
            o.arena_total.raise(total as u64);
        }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Event-arena occupancy: `(live slots, total slots)`. The total is the
    /// high-water mark of simultaneously outstanding events (slots are
    /// recycled, never shrunk), which is what a memory report wants.
    pub fn arena_occupancy(&self) -> (usize, usize) {
        let total = self.arena.slots.len();
        (total - self.arena.free.len(), total)
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently queued.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// The stop horizon, if one was set by `run_until`.
    pub fn horizon(&self) -> Option<SimTime> {
        self.horizon
    }

    /// Asks the current run loop to stop after the executing event returns.
    ///
    /// Only meaningful from inside an event handler: the flag is cleared
    /// when `run_until` / `run_to_exhaustion` is entered, so a request made
    /// between runs has no effect. Observers that verify a run as it
    /// executes (e.g. a trace-replay sink) use this to abort at the first
    /// divergence instead of simulating months past it; queued events stay
    /// queued, and the clock stays at the stopping event's instant.
    pub fn request_stop(&mut self) {
        self.stop_requested = true;
    }

    /// True if [`Engine::request_stop`] fired during the last run loop.
    pub fn stop_requested(&self) -> bool {
        self.stop_requested
    }

    /// Schedules `f` to run at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to "now": the event runs at the
    /// current instant, after already-queued events for this instant.
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F)
    where
        F: FnOnce(&mut W, &mut Engine<W>) + 'static,
    {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        let slot = self.arena.insert(EventCell::new(f));
        self.queue.push(HeapKey { at, seq, slot });
    }

    /// Schedules `f` to run `delay` after the current instant.
    pub fn schedule_in<F>(&mut self, delay: Duration, f: F)
    where
        F: FnOnce(&mut W, &mut Engine<W>) + 'static,
    {
        self.schedule_at(self.now + delay, f);
    }

    /// Runs events in order until the queue empties or simulated time
    /// reaches `until`. Returns the number of events executed by this call.
    ///
    /// Events timestamped exactly at `until` do *not* run; the engine's
    /// clock finishes at `until`.
    pub fn run_until(&mut self, world: &mut W, until: SimTime) -> u64 {
        self.horizon = Some(until);
        self.stop_requested = false;
        let before = self.executed;
        while let Some(head) = self.queue.peek() {
            if head.at >= until {
                break;
            }
            let key = self.queue.pop().expect("peeked head exists");
            debug_assert!(key.at >= self.now, "time must be monotone");
            self.now = key.at;
            self.executed += 1;
            let cell = self.arena.take(key.slot);
            cell.invoke(world, self);
            if self.stop_requested {
                let ran = self.executed - before;
                self.publish_obs(ran);
                return ran;
            }
        }
        self.now = self.now.max(until);
        let ran = self.executed - before;
        self.publish_obs(ran);
        ran
    }

    /// Runs all queued events to exhaustion (use with care: self-rescheduling
    /// periodic events make this diverge; prefer `run_until`).
    pub fn run_to_exhaustion(&mut self, world: &mut W) -> u64 {
        let before = self.executed;
        self.stop_requested = false;
        while let Some(key) = self.queue.pop() {
            debug_assert!(key.at >= self.now, "time must be monotone");
            self.now = key.at;
            self.executed += 1;
            let cell = self.arena.take(key.slot);
            cell.invoke(world, self);
            if self.stop_requested {
                break;
            }
        }
        let ran = self.executed - before;
        self.publish_obs(ran);
        ran
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut a: Engine<Vec<u32>> = Engine::new();
        let mut b: Engine<Vec<u32>> = Engine::with_capacity(1024);
        for eng in [&mut a, &mut b] {
            for i in 0..10 {
                eng.schedule_at(SimTime(10 - i as u64), move |w: &mut Vec<u32>, _| w.push(i));
            }
        }
        let (mut wa, mut wb) = (Vec::new(), Vec::new());
        a.run_to_exhaustion(&mut wa);
        b.run_to_exhaustion(&mut wb);
        assert_eq!(wa, wb);
        let (live, total) = b.arena_occupancy();
        assert_eq!(live, 0, "all events executed");
        assert_eq!(total, 10, "high-water mark of outstanding events");
    }

    #[test]
    fn events_run_in_time_order() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        eng.schedule_at(SimTime(30), |w: &mut Vec<u32>, _| w.push(3));
        eng.schedule_at(SimTime(10), |w: &mut Vec<u32>, _| w.push(1));
        eng.schedule_at(SimTime(20), |w: &mut Vec<u32>, _| w.push(2));
        let mut w = Vec::new();
        eng.run_until(&mut w, SimTime(100));
        assert_eq!(w, vec![1, 2, 3]);
        assert_eq!(eng.executed(), 3);
        assert_eq!(eng.now(), SimTime(100));
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        for i in 0..10 {
            eng.schedule_at(SimTime(5), move |w: &mut Vec<u32>, _| w.push(i));
        }
        let mut w = Vec::new();
        eng.run_to_exhaustion(&mut w);
        assert_eq!(w, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        eng.schedule_at(SimTime(1), |_, e| {
            e.schedule_in(Duration(5), |w: &mut Vec<u64>, e2| {
                w.push(e2.now().as_millis());
            });
        });
        let mut w = Vec::new();
        eng.run_until(&mut w, SimTime(100));
        assert_eq!(w, vec![6]);
    }

    #[test]
    fn horizon_is_exclusive() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule_at(SimTime(10), |w: &mut u32, _| *w += 1);
        eng.schedule_at(SimTime(11), |w: &mut u32, _| *w += 1);
        let mut w = 0;
        eng.run_until(&mut w, SimTime(11));
        assert_eq!(w, 1);
        assert_eq!(eng.now(), SimTime(11));
        // Resuming picks up the remaining event.
        eng.run_until(&mut w, SimTime(12));
        assert_eq!(w, 2);
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut eng: Engine<Vec<&'static str>> = Engine::new();
        eng.schedule_at(SimTime(50), |_, e| {
            e.schedule_at(SimTime(10), |w: &mut Vec<&'static str>, _| w.push("late"));
            e.schedule_at(SimTime(50), |w: &mut Vec<&'static str>, _| w.push("same"));
        });
        let mut w = Vec::new();
        eng.run_to_exhaustion(&mut w);
        assert_eq!(w, vec!["late", "same"]);
        assert_eq!(eng.now(), SimTime(50));
    }

    #[test]
    fn request_stop_halts_the_run_loop() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        eng.schedule_at(SimTime(10), |w: &mut Vec<u32>, e| {
            w.push(1);
            e.request_stop();
        });
        eng.schedule_at(SimTime(20), |w: &mut Vec<u32>, _| w.push(2));
        let mut w = Vec::new();
        let ran = eng.run_until(&mut w, SimTime(100));
        assert_eq!(ran, 1);
        assert_eq!(w, vec![1]);
        assert!(eng.stop_requested());
        assert_eq!(eng.now(), SimTime(10), "clock stays at the stop event");
        assert_eq!(eng.queued(), 1, "later events stay queued");
        // A fresh run clears the flag and resumes from the queue.
        eng.run_until(&mut w, SimTime(100));
        assert_eq!(w, vec![1, 2]);
        assert!(!eng.stop_requested());
    }

    #[test]
    fn periodic_self_rescheduling() {
        struct W {
            ticks: u32,
        }
        fn tick(w: &mut W, e: &mut Engine<W>) {
            w.ticks += 1;
            e.schedule_in(Duration(10), tick);
        }
        let mut eng: Engine<W> = Engine::new();
        eng.schedule_at(SimTime(0), tick);
        let mut w = W { ticks: 0 };
        eng.run_until(&mut w, SimTime(100));
        assert_eq!(w.ticks, 10); // t = 0, 10, ..., 90
    }

    /// Interleaved scheduling and draining: slots freed by executed events
    /// are reused by later schedules, and the (time, seq) order is pinned
    /// across the reuse — a later-scheduled event in a *recycled* slot
    /// still runs after an earlier-scheduled event at the same instant.
    #[test]
    fn slot_reuse_preserves_tie_order() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        let mut w = Vec::new();
        // Wave 1 occupies slots 0..32, then fully drains (slots freed).
        for i in 0..32 {
            eng.schedule_at(SimTime(1), move |w: &mut Vec<u32>, _| w.push(i));
        }
        eng.run_until(&mut w, SimTime(2));
        assert_eq!(w, (0..32).collect::<Vec<_>>());
        // Wave 2 reuses the freed slots in reverse free-list order; ties at
        // t=10 must still run in schedule order, and the interleaved
        // earlier-time events must still run first.
        w.clear();
        for i in 0..16 {
            eng.schedule_at(SimTime(10), move |w: &mut Vec<u32>, _| w.push(100 + i));
            eng.schedule_at(SimTime(5), move |w: &mut Vec<u32>, _| w.push(i));
        }
        eng.run_until(&mut w, SimTime(20));
        let want: Vec<u32> = (0..16).chain((0..16).map(|i| 100 + i)).collect();
        assert_eq!(w, want);
    }

    /// Events that never execute (beyond the horizon at drop time) still
    /// release their captured state exactly once.
    #[test]
    fn unexecuted_events_drop_their_captures() {
        use std::rc::Rc;
        let witness = Rc::new(());
        let mut eng: Engine<u32> = Engine::new();
        for _ in 0..8 {
            let keep = Rc::clone(&witness);
            eng.schedule_at(SimTime(1_000), move |_, _| {
                let _ = &keep;
            });
        }
        // Large closure: forces the boxed fallback path.
        let keep = Rc::clone(&witness);
        let big = [0u64; 64];
        eng.schedule_at(SimTime(1_000), move |_, _| {
            let _ = (&keep, &big);
        });
        let mut w = 0;
        eng.run_until(&mut w, SimTime(10)); // nothing executes
        assert_eq!(Rc::strong_count(&witness), 10);
        drop(eng);
        assert_eq!(
            Rc::strong_count(&witness),
            1,
            "dropping the engine must drop queued closures"
        );
    }

    /// Installed metric handles are published when a run loop exits and
    /// never perturb event order.
    #[test]
    fn obs_publishes_at_loop_exit() {
        let mut b = RegistryBuilder::new();
        let obs = EngineObs::register(&mut b);
        let handles = obs.clone();
        let mut eng: Engine<Vec<u32>> = Engine::new();
        eng.set_obs(obs);
        for i in 0..5 {
            eng.schedule_at(SimTime(i), move |w: &mut Vec<u32>, _| w.push(i as u32));
        }
        let mut w = Vec::new();
        eng.run_until(&mut w, SimTime(3));
        assert_eq!(w, vec![0, 1, 2]);
        assert_eq!(handles.events_executed.get(), 3);
        assert_eq!(handles.events_queued.get(), 2);
        assert_eq!(handles.arena_total.get(), 5);
        eng.run_until(&mut w, SimTime(100));
        assert_eq!(handles.events_executed.get(), 5);
        assert_eq!(handles.events_queued.get(), 0);
        assert_eq!(handles.arena_live.get(), 0);
    }

    /// Closures larger than the inline payload run correctly through the
    /// boxed fallback.
    #[test]
    fn oversized_closures_fall_back_to_boxing() {
        let mut eng: Engine<u64> = Engine::new();
        let big = [7u64; 64]; // 512 bytes: over any inline budget
        eng.schedule_at(SimTime(1), move |w: &mut u64, _| {
            *w = big.iter().sum();
        });
        let mut w = 0u64;
        eng.run_to_exhaustion(&mut w);
        assert_eq!(w, 7 * 64);
    }
}

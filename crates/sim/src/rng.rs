//! Seeded randomness helpers for simulations.
//!
//! Wraps a `StdRng` with the distributions the protocol and adversary models
//! need (exponential inter-arrival times, jittered intervals, sampling
//! without replacement), so model code never touches `rand` directly and the
//! whole run stays a pure function of the seed.

use rand::rngs::StdRng;
use rand::seq::{IndexedRandom, SliceRandom};
use rand::{RngExt, SeedableRng};

use crate::time::Duration;

/// A deterministic simulation RNG.
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> SimRng {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child RNG; useful to give each peer its own
    /// stream so adding a peer does not perturb the others' draws.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.inner.random())
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.random()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        self.inner.random_range(0..n)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.random_bool(p)
    }

    /// Uniform duration in `[lo, hi]`.
    pub fn duration_between(&mut self, lo: Duration, hi: Duration) -> Duration {
        if hi <= lo {
            return lo;
        }
        Duration(self.inner.random_range(lo.as_millis()..=hi.as_millis()))
    }

    /// `base` jittered multiplicatively by up to `±frac` (e.g. `0.1` for
    /// ±10%).
    pub fn jitter(&mut self, base: Duration, frac: f64) -> Duration {
        let factor = 1.0 + frac * (2.0 * self.f64() - 1.0);
        base.mul_f64(factor)
    }

    /// An exponentially distributed duration with the given mean; models
    /// Poisson processes (storage damage arrivals).
    ///
    /// A zero mean yields a zero duration.
    pub fn exponential(&mut self, mean: Duration) -> Duration {
        if mean.is_zero() {
            return Duration::ZERO;
        }
        // Inverse-CDF sampling; 1 - f64() is in (0, 1] so ln() is finite.
        let u: f64 = 1.0 - self.f64();
        mean.mul_f64(-u.ln())
    }

    /// Number of Bernoulli(p) failures before the first success (geometric
    /// distribution, support `0..`). Capped at `cap` to bound simulation
    /// work; the paper's drop probabilities (≤ 0.9) make the cap academic.
    pub fn geometric(&mut self, p: f64, cap: u32) -> u32 {
        let p = p.clamp(1e-9, 1.0);
        let mut k = 0;
        while k < cap && !self.chance(p) {
            k += 1;
        }
        k
    }

    /// Chooses one element of a slice, or `None` if it is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        items.choose(&mut self.inner)
    }

    /// Samples `k` distinct elements (cloned) uniformly without replacement;
    /// returns fewer if the slice is shorter than `k`. Order is random.
    pub fn sample<T: Clone>(&mut self, items: &[T], k: usize) -> Vec<T> {
        let mut picked: Vec<T> = items
            .sample(&mut self.inner, k.min(items.len()))
            .cloned()
            .collect();
        picked.shuffle(&mut self.inner);
        picked
    }

    /// Shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        items.shuffle(&mut self.inner);
    }

    /// A uniform `u64` (for deriving nonces and content seeds).
    pub fn u64(&mut self) -> u64 {
        self.inner.random()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_from_seed() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.u64() == b.u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut rng = SimRng::seed_from_u64(7);
        let mean = Duration::from_days(100);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| rng.exponential(mean).as_millis()).sum();
        let avg = total as f64 / n as f64;
        let expect = mean.as_millis() as f64;
        assert!(
            (avg - expect).abs() / expect < 0.05,
            "avg {avg} vs {expect}"
        );
    }

    #[test]
    fn exponential_zero_mean() {
        let mut rng = SimRng::seed_from_u64(3);
        assert_eq!(rng.exponential(Duration::ZERO), Duration::ZERO);
    }

    #[test]
    fn jitter_stays_in_band() {
        let mut rng = SimRng::seed_from_u64(9);
        let base = Duration::from_days(90);
        for _ in 0..1000 {
            let j = rng.jitter(base, 0.1);
            assert!(j >= base.mul_f64(0.9) && j <= base.mul_f64(1.1));
        }
    }

    #[test]
    fn sample_is_distinct_and_bounded() {
        let mut rng = SimRng::seed_from_u64(11);
        let items: Vec<u32> = (0..50).collect();
        let got = rng.sample(&items, 20);
        assert_eq!(got.len(), 20);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "sample must be distinct");
        let few = rng.sample(&items[..5], 20);
        assert_eq!(few.len(), 5);
    }

    #[test]
    fn geometric_mean_matches() {
        let mut rng = SimRng::seed_from_u64(13);
        // p = 0.2 => mean failures before success = (1-p)/p = 4.
        let n = 50_000;
        let total: u64 = (0..n).map(|_| rng.geometric(0.2, 1000) as u64).sum();
        let avg = total as f64 / n as f64;
        assert!((avg - 4.0).abs() < 0.1, "avg {avg}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(17);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(rng.chance(2.0)); // clamped
        assert!(!rng.chance(-1.0)); // clamped
    }

    #[test]
    fn duration_between_degenerate() {
        let mut rng = SimRng::seed_from_u64(19);
        let d = Duration::from_secs(5);
        assert_eq!(rng.duration_between(d, d), d);
        assert_eq!(rng.duration_between(d, Duration::SECOND), d);
    }
}

//! Seeded randomness helpers for simulations.
//!
//! A self-hosted splitmix64 generator (the offline dependency policy bans
//! `rand`) extended with the distributions the protocol and adversary models
//! need (exponential inter-arrival times, jittered intervals, sampling
//! without replacement), so model code never touches raw bit streams and the
//! whole run stays a pure function of the seed.

use crate::time::Duration;

/// A deterministic simulation RNG over the splitmix64 sequence.
///
/// splitmix64 walks its state by a fixed odd increment (the golden-ratio
/// constant) and passes it through an avalanching finalizer, so every
/// 64-bit seed yields a full-period, statistically solid stream — more
/// than enough for a simulation study, and dependency-free.
///
/// Cloning copies the state: the clone continues the identical stream
/// (metric sketches embed one and live inside cloneable collectors).
#[derive(Clone, Debug)]
pub struct SimRng {
    state: u64,
    /// Reusable index workspace for [`SimRng::sample`]. Not part of the
    /// random state: it never influences a draw, it only spares the hot
    /// sampling paths (inner-circle selection, nominations) a fresh
    /// allocation per call.
    idx_scratch: Vec<usize>,
    /// Direct-mapped `(n, rejection zone)` cache for [`SimRng::below`].
    /// The zone is a pure function of `n` but costs a 64-bit division, and
    /// the same handful of range sizes (circle sizes, list lengths) recur
    /// throughout a run; caching halves the division work per draw without
    /// touching the draw sequence. `n == 0` never queries, so zeroed slots
    /// can't alias.
    zone_cache: [(u64, u64); ZONE_SLOTS],
}

/// Slots in the rejection-zone cache (power of two for cheap indexing).
const ZONE_SLOTS: usize = 32;

/// Above this domain size, [`SimRng::sample_indices`] switches from the
/// dense O(n) index vector to the sparse O(k) displacement map. Purely a
/// performance knob: both paths consume identical draws.
const SPARSE_SAMPLE_THRESHOLD: usize = 2048;

/// The splitmix64 state increment (2^64 / φ, forced odd).
const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// The splitmix64 output finalizer (same idiom as `lockss-crypto`'s
/// content PRG): multiply-xorshift avalanche of Stafford's "mix13".
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> SimRng {
        SimRng {
            state: seed,
            idx_scratch: Vec::new(),
            zone_cache: [(0, 0); ZONE_SLOTS],
        }
    }

    /// The next raw splitmix64 output.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix(self.state)
    }

    /// Derives an independent child RNG; useful to give each peer its own
    /// stream so adding a peer does not perturb the others' draws. The
    /// child is seeded from a finalized output, so its state walk never
    /// collides with the parent's within any realistic horizon.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.next_u64())
    }

    /// Uniform `f64` in `[0, 1)`: the top 53 bits scaled by 2^-53.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, n)`, unbiased via rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    fn below_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below: empty range");
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        // Reject draws past the largest multiple of n, so each residue is
        // equally likely. The loop rejects less than half the time even in
        // the worst case.
        let zone = self.zone(n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// The rejection zone for `n` (`u64::MAX` rounded down to a multiple
    /// of `n`), served from the direct-mapped cache.
    #[inline]
    fn zone(&mut self, n: u64) -> u64 {
        let slot = (n as usize) & (ZONE_SLOTS - 1);
        let (cached_n, cached_zone) = self.zone_cache[slot];
        if cached_n == n {
            return cached_zone;
        }
        let zone = u64::MAX - u64::MAX % n;
        self.zone_cache[slot] = (n, zone);
        zone
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        self.below_u64(n as u64) as usize
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    /// `f64()` is in `[0, 1)`, so `p = 1.0` always succeeds and `p = 0.0`
    /// never does.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// Uniform duration in `[lo, hi]`.
    pub fn duration_between(&mut self, lo: Duration, hi: Duration) -> Duration {
        if hi <= lo {
            return lo;
        }
        // The +1 makes the range inclusive; it only overflows when the
        // range covers the whole u64 domain, where any draw is valid.
        match (hi.as_millis() - lo.as_millis()).checked_add(1) {
            Some(span) => Duration(lo.as_millis() + self.below_u64(span)),
            None => Duration(self.next_u64()),
        }
    }

    /// `base` jittered multiplicatively by up to `±frac` (e.g. `0.1` for
    /// ±10%).
    pub fn jitter(&mut self, base: Duration, frac: f64) -> Duration {
        let factor = 1.0 + frac * (2.0 * self.f64() - 1.0);
        base.mul_f64(factor)
    }

    /// An exponentially distributed duration with the given mean; models
    /// Poisson processes (storage damage arrivals).
    ///
    /// A zero mean yields a zero duration.
    pub fn exponential(&mut self, mean: Duration) -> Duration {
        if mean.is_zero() {
            return Duration::ZERO;
        }
        // Inverse-CDF sampling; 1 - f64() is in (0, 1] so ln() is finite.
        let u: f64 = 1.0 - self.f64();
        mean.mul_f64(-u.ln())
    }

    /// Number of Bernoulli(p) failures before the first success (geometric
    /// distribution, support `0..`). Capped at `cap` to bound simulation
    /// work; the paper's drop probabilities (≤ 0.9) make the cap academic.
    pub fn geometric(&mut self, p: f64, cap: u32) -> u32 {
        let p = p.clamp(1e-9, 1.0);
        let mut k = 0;
        while k < cap && !self.chance(p) {
            k += 1;
        }
        k
    }

    /// Chooses one element of a slice, or `None` if it is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let i = self.below(items.len());
            Some(&items[i])
        }
    }

    /// Samples `k` distinct elements (cloned) uniformly without replacement;
    /// returns fewer if the slice is shorter than `k`. Order is random.
    pub fn sample<T: Clone>(&mut self, items: &[T], k: usize) -> Vec<T> {
        self.sample_indices(items.len(), k)
            .into_iter()
            .map(|i| items[i].clone())
            .collect()
    }

    /// Samples `k` distinct indices uniformly from `0..n` without
    /// replacement (fewer if `n < k`), in random order.
    ///
    /// Draw-compatible with [`SimRng::sample`] over a slice of length `n`:
    /// both consume exactly the same `below` sequence, so they are
    /// interchangeable without perturbing a seeded run. Small domains use a
    /// partial Fisher–Yates over a dense index vector; large domains
    /// (population-scale reference-list seeding in 10k+ peer worlds) switch
    /// to a sparse displacement map so the cost is O(k), not O(n).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        if k == 0 {
            return Vec::new();
        }
        if n <= SPARSE_SAMPLE_THRESHOLD {
            // Partial Fisher–Yates over an index vector: after k swap steps
            // the prefix is a uniform k-permutation of 0..n, so the picks
            // are distinct, uniform, and in random order. The index vector
            // lives in the RNG's scratch space (same draws, no allocation
            // per call).
            let mut idx = std::mem::take(&mut self.idx_scratch);
            idx.clear();
            idx.extend(0..n);
            for i in 0..k {
                let j = i + self.below(n - i);
                idx.swap(i, j);
            }
            let picks = idx[..k].to_vec();
            self.idx_scratch = idx;
            return picks;
        }
        // Sparse Fisher–Yates: only displaced positions are materialized.
        // `displaced[j]` holds the value currently sitting at position `j`
        // of the virtual 0..n vector; untouched positions hold their own
        // index. Identical draw sequence to the dense path.
        let mut displaced: crate::FxHashMap<usize, usize> = crate::fxmap::with_capacity(2 * k);
        let mut picks = Vec::with_capacity(k);
        for i in 0..k {
            let j = i + self.below(n - i);
            let at_j = displaced.get(&j).copied().unwrap_or(j);
            let at_i = displaced.get(&i).copied().unwrap_or(i);
            picks.push(at_j);
            displaced.insert(j, at_i);
        }
        picks
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// A uniform `u64` (for deriving nonces and content seeds).
    pub fn u64(&mut self) -> u64 {
        self.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_from_seed() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.u64() == b.u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut rng = SimRng::seed_from_u64(7);
        let mean = Duration::from_days(100);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| rng.exponential(mean).as_millis()).sum();
        let avg = total as f64 / n as f64;
        let expect = mean.as_millis() as f64;
        assert!(
            (avg - expect).abs() / expect < 0.05,
            "avg {avg} vs {expect}"
        );
    }

    #[test]
    fn exponential_zero_mean() {
        let mut rng = SimRng::seed_from_u64(3);
        assert_eq!(rng.exponential(Duration::ZERO), Duration::ZERO);
    }

    #[test]
    fn jitter_stays_in_band() {
        let mut rng = SimRng::seed_from_u64(9);
        let base = Duration::from_days(90);
        for _ in 0..1000 {
            let j = rng.jitter(base, 0.1);
            assert!(j >= base.mul_f64(0.9) && j <= base.mul_f64(1.1));
        }
    }

    #[test]
    fn sample_indices_matches_dense_sample_across_the_threshold() {
        // The sparse path must consume the same draws and return the same
        // picks as the dense path; compare both against `sample` over an
        // identity slice on domains straddling SPARSE_SAMPLE_THRESHOLD.
        for n in [0usize, 1, 5, 100, 2048, 2049, 5000, 60_000] {
            for k in [0usize, 1, 7, 40, 100] {
                let items: Vec<usize> = (0..n).collect();
                let mut a = SimRng::seed_from_u64(1000 + n as u64 + k as u64);
                let mut b = SimRng::seed_from_u64(1000 + n as u64 + k as u64);
                let via_slice = a.sample(&items, k);
                let via_indices = b.sample_indices(n, k);
                assert_eq!(via_slice, via_indices, "n={n} k={k}");
                // Both RNGs must land in the same state.
                assert_eq!(a.u64(), b.u64(), "n={n} k={k} draw streams diverged");
            }
        }
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = SimRng::seed_from_u64(29);
        let got = rng.sample_indices(50_000, 200);
        assert_eq!(got.len(), 200);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 200, "indices must be distinct");
        assert!(sorted.iter().all(|&i| i < 50_000));
    }

    #[test]
    fn sample_is_distinct_and_bounded() {
        let mut rng = SimRng::seed_from_u64(11);
        let items: Vec<u32> = (0..50).collect();
        let got = rng.sample(&items, 20);
        assert_eq!(got.len(), 20);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "sample must be distinct");
        let few = rng.sample(&items[..5], 20);
        assert_eq!(few.len(), 5);
    }

    #[test]
    fn geometric_mean_matches() {
        let mut rng = SimRng::seed_from_u64(13);
        // p = 0.2 => mean failures before success = (1-p)/p = 4.
        let n = 50_000;
        let total: u64 = (0..n).map(|_| rng.geometric(0.2, 1000) as u64).sum();
        let avg = total as f64 / n as f64;
        assert!((avg - 4.0).abs() < 0.1, "avg {avg}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(17);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(rng.chance(2.0)); // clamped
        assert!(!rng.chance(-1.0)); // clamped
    }

    #[test]
    fn duration_between_degenerate() {
        let mut rng = SimRng::seed_from_u64(19);
        let d = Duration::from_secs(5);
        assert_eq!(rng.duration_between(d, d), d);
        assert_eq!(rng.duration_between(d, Duration::SECOND), d);
    }

    #[test]
    fn duration_between_full_domain_does_not_overflow() {
        let mut rng = SimRng::seed_from_u64(23);
        for _ in 0..100 {
            let d = rng.duration_between(Duration::ZERO, Duration(u64::MAX));
            assert!(d <= Duration(u64::MAX));
        }
        let e = rng.duration_between(Duration(1), Duration(u64::MAX));
        assert!(e >= Duration(1));
    }
}

//! The workspace's one fixed-schema JSON reader.
//!
//! Three self-hosted document formats share this parser: sweep
//! checkpoints/reports (`lockss-experiments::sweep`), bench reports and
//! trajectory anchors (`lockss-bench::diff`), and declarative scenario
//! files (`lockss-experiments::spec`). All three are *fixed-schema*
//! writers — this reader supports exactly the subset they emit, no more:
//! objects, arrays, strings with simple (and `\u`) escapes, numbers,
//! `true`/`false`/`null`.
//!
//! Two properties matter to the callers:
//!
//! - **exact float round-trip** — numbers are kept as their raw text, so
//!   an `f64` written with shortest-repr formatting parses back to the
//!   same bits (the byte-level resume and encode→decode→encode identity
//!   guarantees build on this);
//! - **positioned errors** — every parse failure carries a byte offset,
//!   and [`line_col`] converts one into a `line:column` pair so CLI
//!   schema errors can point into the offending file.

use std::fmt;

/// A parse failure with the byte offset where it happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the document.
    pub at: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for Error {}

impl From<Error> for String {
    fn from(e: Error) -> String {
        e.to_string()
    }
}

/// Converts a byte offset in `text` into a 1-based `(line, column)` pair
/// (column counts bytes, which equals characters for the ASCII documents
/// these schemas emit).
pub fn line_col(text: &str, at: usize) -> (usize, usize) {
    let upto = &text.as_bytes()[..at.min(text.len())];
    let line = 1 + upto.iter().filter(|&&b| b == b'\n').count();
    let col = 1 + upto.iter().rev().take_while(|&&b| b != b'\n').count();
    (line, col)
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw text for exact round-trips.
    Num(String),
    /// A string, escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A short name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }

    /// The object fields, or an error naming `what`.
    pub fn as_object(&self, what: &str) -> Result<&[(String, Value)], String> {
        match self {
            Value::Obj(fields) => Ok(fields),
            other => Err(format!(
                "{what}: expected object, got {}",
                other.type_name()
            )),
        }
    }

    /// The array elements, or an error naming `what`.
    pub fn as_array(&self, what: &str) -> Result<&[Value], String> {
        match self {
            Value::Arr(items) => Ok(items),
            other => Err(format!("{what}: expected array, got {}", other.type_name())),
        }
    }

    /// The string contents, or an error naming `what`.
    pub fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(format!(
                "{what}: expected string, got {}",
                other.type_name()
            )),
        }
    }

    /// The number as `u64`, or an error naming `what`.
    pub fn as_u64(&self, what: &str) -> Result<u64, String> {
        match self {
            Value::Num(raw) => raw
                .parse()
                .map_err(|_| format!("{what}: '{raw}' is not a u64")),
            other => Err(format!(
                "{what}: expected number, got {}",
                other.type_name()
            )),
        }
    }

    /// The number as `f64`, or an error naming `what`.
    pub fn as_f64(&self, what: &str) -> Result<f64, String> {
        match self {
            Value::Num(raw) => raw
                .parse()
                .map_err(|_| format!("{what}: '{raw}' is not an f64")),
            other => Err(format!(
                "{what}: expected number, got {}",
                other.type_name()
            )),
        }
    }

    /// The boolean, or an error naming `what`.
    pub fn as_bool(&self, what: &str) -> Result<bool, String> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("{what}: expected bool, got {}", other.type_name())),
        }
    }

    /// The value as an array of `u64` — the shape every seed list in the
    /// sweep wire format takes — or an error naming `what`.
    pub fn as_u64_array(&self, what: &str) -> Result<Vec<u64>, String> {
        self.as_array(what)?
            .iter()
            .map(|v| v.as_u64(what))
            .collect()
    }
}

/// Renders a `u64` slice in the canonical element form shared by the
/// fixed-schema writers (`", "`-separated, no brackets): the writer-side
/// counterpart of [`Value::as_u64_array`].
pub fn u64_list(xs: &[u64]) -> String {
    let strs: Vec<String> = xs.iter().map(u64::to_string).collect();
    strs.join(", ")
}

/// Looks up a field of an object parsed by this module.
pub fn get<'v>(fields: &'v [(String, Value)], key: &str) -> Result<&'v Value, String> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field '{key}'"))
}

/// Looks up an optional field: absent and `null` both read as `None`.
pub fn get_opt<'v>(fields: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .filter(|v| !v.is_null())
}

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err("trailing garbage", pos));
    }
    Ok(value)
}

fn err(message: &str, at: usize) -> Error {
    Error {
        message: message.to_string(),
        at,
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), Error> {
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(err(&format!("expected '{}'", ch as char), *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(err("unexpected end of document", *pos)),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_literal(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(err("bad literal", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    if start == *pos {
        return Err(err("expected a value", start));
    }
    let raw = std::str::from_utf8(&b[start..*pos]).map_err(|e| err(&e.to_string(), start))?;
    // Validate now so later as_f64/as_u64 errors are about type, not
    // syntax.
    raw.parse::<f64>()
        .map_err(|_| err(&format!("'{raw}' is not a number"), start))?;
    Ok(Value::Num(raw.to_string()))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let esc = b.get(*pos).ok_or_else(|| err("dangling escape", *pos))?;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'u' => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .and_then(char::from_u32);
                        match hex {
                            Some(c) => {
                                out.push(c);
                                *pos += 4;
                            }
                            None => return Err(err("bad \\u escape", *pos)),
                        }
                    }
                    other => {
                        return Err(err(
                            &format!("unsupported escape '\\{}'", *other as char),
                            *pos,
                        ))
                    }
                }
                *pos += 1;
            }
            _ => {
                // Multi-byte UTF-8 sequences pass through unharmed: we
                // only branch on ASCII bytes, which never occur inside a
                // continuation.
                let start = *pos;
                while *pos < b.len() && b[*pos] != b'"' && b[*pos] != b'\\' {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&b[start..*pos]).map_err(|e| err(&e.to_string(), start))?,
                );
            }
        }
    }
    Err(err("unterminated string", *pos))
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(err("expected ',' or ']'", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            _ => return Err(err("expected ',' or '}'", *pos)),
        }
    }
}

/// Escapes a string for embedding in a JSON document written by one of
/// the fixed-schema writers (the counterpart of [`parse_string`]).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shared_subset() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": "x\ny", "c": null, "d": true}"#).unwrap();
        let obj = v.as_object("root").unwrap();
        let a = get(obj, "a").unwrap().as_array("a").unwrap();
        assert_eq!(a[0].as_u64("a0").unwrap(), 1);
        assert_eq!(a[1].as_f64("a1").unwrap(), 2.5);
        assert_eq!(a[2].as_f64("a2").unwrap(), -300.0);
        assert_eq!(get(obj, "b").unwrap().as_str("b").unwrap(), "x\ny");
        assert!(get(obj, "c").unwrap().is_null());
        assert!(get(obj, "d").unwrap().as_bool("d").unwrap());
    }

    #[test]
    fn numbers_keep_their_raw_text() {
        let v = parse("0.30000000000000004").unwrap();
        assert_eq!(v, Value::Num("0.30000000000000004".to_string()));
        let f = v.as_f64("x").unwrap();
        assert_eq!(format!("{f}"), "0.30000000000000004", "exact round-trip");
    }

    #[test]
    fn unicode_escape_decodes() {
        let v = parse(r#""éA""#).unwrap();
        assert_eq!(v.as_str("s").unwrap(), "éA");
        assert!(parse(r#""\u00g1""#).is_err());
    }

    #[test]
    fn errors_carry_positions() {
        let e = parse("{\"a\": }").unwrap_err();
        assert!(e.at > 0, "{e}");
        assert!(parse("{} trailing").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1, ]").is_err());
    }

    #[test]
    fn line_col_is_one_based() {
        let text = "{\n  \"a\": !\n}";
        let at = text.find('!').unwrap();
        assert_eq!(line_col(text, at), (2, 8));
        assert_eq!(line_col(text, 0), (1, 1));
        assert_eq!(line_col(text, text.len() + 50), (3, 2), "clamped");
    }

    #[test]
    fn escape_round_trips() {
        let s = "a \"quoted\" line\nwith\ttabs and \\slashes";
        let doc = format!("\"{}\"", escape(s));
        assert_eq!(parse(&doc).unwrap().as_str("s").unwrap(), s);
    }

    #[test]
    fn u64_lists_round_trip() {
        let xs = [3u64, 1, 4, 1, 5];
        let doc = format!("[{}]", u64_list(&xs));
        assert_eq!(parse(&doc).unwrap().as_u64_array("xs").unwrap(), xs);
        assert_eq!(u64_list(&[]), "");
        assert!(parse("[1, -2]").unwrap().as_u64_array("xs").is_err());
        assert!(parse("3").unwrap().as_u64_array("xs").is_err());
    }

    #[test]
    fn get_opt_treats_null_as_absent() {
        let v = parse(r#"{"a": null, "b": 3}"#).unwrap();
        let obj = v.as_object("root").unwrap();
        assert!(get_opt(obj, "a").is_none());
        assert!(get_opt(obj, "missing").is_none());
        assert_eq!(get_opt(obj, "b").unwrap().as_u64("b").unwrap(), 3);
    }
}

//! O(1) weighted sampling (Walker/Vose alias method).
//!
//! Large-population worlds need weighted draws over tens of thousands of
//! peers — link-class mixes, popularity-skewed reference seeding — where a
//! linear CDF scan per draw would turn world construction into an O(n²)
//! affair. The alias method spends O(n) once to build two tables and then
//! answers every draw with one uniform index, one uniform real, and one
//! comparison, independent of the population size.
//!
//! The build is fully deterministic (stable partitioning, no hashing), so a
//! table built from the same weights always produces the same draw for the
//! same RNG state — a requirement for the byte-reproducible runs the
//! determinism suite enforces.

use crate::rng::SimRng;

/// A Walker/Vose alias table over `n` weighted outcomes.
#[derive(Clone, Debug)]
pub struct AliasTable {
    /// Acceptance probability of each column's own outcome.
    prob: Vec<f64>,
    /// The outcome a column falls back to when the acceptance check fails.
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds the table from non-negative weights (they need not sum to 1).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// weight, or sums to zero.
    pub fn new(weights: &[f64]) -> AliasTable {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        let total: f64 = weights.iter().sum();
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0) && total > 0.0,
            "weights must be non-negative, finite, and not all zero"
        );
        let n = weights.len();
        // Scale so the mean weight is 1; columns above the mean donate
        // their surplus to columns below it.
        let scaled: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut prob = vec![0.0; n];
        let mut alias: Vec<usize> = (0..n).collect();
        // Stable worklists (ascending index order) keep the build
        // deterministic.
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        let mut remainder = scaled.clone();
        for (i, &w) in scaled.iter().enumerate() {
            if w < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s] = remainder[s];
            alias[s] = l;
            remainder[l] -= 1.0 - remainder[s];
            if remainder[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Whatever is left (floating-point dust) accepts its own outcome.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if the table is over zero outcomes (unreachable: `new` panics).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one outcome index in O(1): a uniform column, then the column's
    /// acceptance check.
    pub fn draw(&self, rng: &mut SimRng) -> usize {
        let col = rng.below(self.prob.len());
        if rng.f64() < self.prob[col] {
            col
        } else {
            self.alias[col]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frequencies(weights: &[f64], draws: usize, seed: u64) -> Vec<f64> {
        let table = AliasTable::new(weights);
        let mut rng = SimRng::seed_from_u64(seed);
        let mut counts = vec![0u64; weights.len()];
        for _ in 0..draws {
            counts[table.draw(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn frequencies_match_weights() {
        let weights = [0.6, 0.3, 0.1];
        let freq = frequencies(&weights, 200_000, 7);
        for (f, w) in freq.iter().zip(weights.iter()) {
            assert!((f - w).abs() < 0.01, "freq {f} vs weight {w}");
        }
    }

    #[test]
    fn unnormalized_and_skewed_weights_work() {
        // Sum is 50, one outcome dominates, one is never drawn.
        let weights = [45.0, 5.0, 0.0];
        let freq = frequencies(&weights, 100_000, 11);
        assert!((freq[0] - 0.9).abs() < 0.01);
        assert!((freq[1] - 0.1).abs() < 0.01);
        assert_eq!(freq[2], 0.0, "zero weight must never be drawn");
    }

    #[test]
    fn single_outcome_always_wins() {
        let table = AliasTable::new(&[3.5]);
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(table.draw(&mut rng), 0);
        }
        assert_eq!(table.len(), 1);
        assert!(!table.is_empty());
    }

    #[test]
    fn build_and_draws_are_deterministic() {
        let weights: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let a = AliasTable::new(&weights);
        let b = AliasTable::new(&weights);
        let mut ra = SimRng::seed_from_u64(42);
        let mut rb = SimRng::seed_from_u64(42);
        for _ in 0..10_000 {
            assert_eq!(a.draw(&mut ra), b.draw(&mut rb));
        }
    }

    #[test]
    fn large_uniform_table_is_roughly_uniform() {
        let weights = vec![1.0; 10_000];
        let table = AliasTable::new(&weights);
        let mut rng = SimRng::seed_from_u64(5);
        let mut counts = vec![0u32; weights.len()];
        for _ in 0..1_000_000 {
            counts[table.draw(&mut rng)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        // Mean 100 per bucket; Poisson tails stay well inside [40, 180].
        assert!(min > 40 && max < 180, "min {min} max {max}");
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn empty_weights_panic() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        let _ = AliasTable::new(&[1.0, -0.5]);
    }
}

//! A fast, deterministic hasher for simulation-state maps.
//!
//! `std`'s default `HashMap` hasher (SipHash-1-3 with a per-process random
//! key) is designed to survive adversarial keys from the network; the
//! simulator's keys are its own small integer ids, so that robustness buys
//! nothing and its cost dominates hot paths that build or probe large maps
//! (seeding 100 peers × 10 AUs × 99 reputation entries is ~100k inserts
//! per world build; every message delivery probes the node→peer map).
//!
//! [`FxHasher`] is the word-at-a-time multiply-rotate hash the Rust
//! compiler itself uses for exactly this workload. It is fully
//! deterministic, which is a *feature* here: nothing about a run may depend
//! on hash order anyway (the determinism suite enforces byte-identical
//! output across runs, which a randomized hasher would break if order ever
//! leaked), and a fixed hasher keeps any accidental order dependence
//! reproducible instead of flaky.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// The `fxhash` multiplier (a 64-bit odd constant with good avalanche
/// behaviour under multiply-rotate mixing).
const K: u64 = 0x517c_c1b7_2722_0a95;

/// The rustc-style Fx word hasher.
#[derive(Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut rest = bytes;
        while rest.len() >= 8 {
            self.add(u64::from_le_bytes(rest[..8].try_into().expect("8 bytes")));
            rest = &rest[8..];
        }
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Mix the tail length so inputs differing only in trailing
            // zero bytes don't collide.
            self.add(rest.len() as u64 ^ u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the deterministic Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// An [`FxHashMap`] pre-sized for `n` entries: bulk builders (a 10k+-peer
/// world's node→peer map, the sparse sampler's displacement map) pay one
/// table allocation instead of a growth cascade.
pub fn with_capacity<K, V>(n: usize) -> FxHashMap<K, V> {
    HashMap::with_capacity_and_hasher(n, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_works_and_is_deterministic() {
        let mut a: FxHashMap<u64, u32> = FxHashMap::default();
        let mut b: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            a.insert(i, i as u32 * 3);
            b.insert(i, i as u32 * 3);
        }
        assert_eq!(a.len(), 1000);
        assert_eq!(a.get(&500), Some(&1500));
        assert!(a.keys().eq(b.keys()), "fixed hasher implies fixed order");
    }

    #[test]
    fn nearby_keys_spread() {
        // Sequential small integers (the simulator's ids) must not collide
        // in the low bits the table indexes by.
        let hashes: Vec<u64> = (0..64u64)
            .map(|i| {
                let mut h = FxHasher::default();
                h.write_u64(i);
                h.finish()
            })
            .collect();
        let mut low: Vec<u64> = hashes.iter().map(|h| h & 0x3f).collect();
        low.sort_unstable();
        low.dedup();
        assert!(low.len() > 32, "low bits too collision-prone: {low:?}");
    }

    #[test]
    fn byte_stream_matches_itself_across_chunkings() {
        let mut one = FxHasher::default();
        one.write(b"hello world, hashing");
        let mut two = FxHasher::default();
        two.write(b"hello world, hashing");
        assert_eq!(one.finish(), two.finish());
    }

    #[test]
    fn trailing_zero_bytes_change_the_hash() {
        let hash = |bytes: &[u8]| {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_ne!(hash(b"ab"), hash(b"ab\0\0"));
        assert_ne!(hash(b"12345678\x01"), hash(b"12345678\x01\0"));
    }
}

//! Deterministic discrete-event simulation engine.
//!
//! This crate replaces the role of the Narses simulator in the paper: it
//! provides simulated time, an event queue with deterministic ordering, and
//! seeded randomness helpers. Everything above it (network, protocol,
//! adversaries) is pure model code driven by this engine.
//!
//! The engine is deliberately single-threaded: reproduction experiments
//! parallelise across *seeds*, not within a run, so that every run is exactly
//! reproducible from its seed.

#![deny(missing_docs)]

pub mod engine;
pub mod fxmap;
pub mod json;
pub mod rng;
pub mod time;
pub mod weighted;

pub use engine::{Engine, EngineObs, EventFn};
pub use fxmap::{FxBuildHasher, FxHashMap, FxHasher};
pub use rng::SimRng;
pub use time::{Duration, SimTime};
pub use weighted::AliasTable;

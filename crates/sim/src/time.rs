//! Simulated time and durations.
//!
//! Time is kept in integer milliseconds. Two simulated years — the paper's
//! experiment length — is about 6.3e10 ms, comfortably inside `u64`.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant of simulated time, in milliseconds since the start of
/// the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in milliseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);
    /// One millisecond (the clock's resolution).
    pub const MILLISECOND: Duration = Duration(1);
    /// One second.
    pub const SECOND: Duration = Duration(1_000);
    /// One minute.
    pub const MINUTE: Duration = Duration(60 * 1_000);
    /// One hour.
    pub const HOUR: Duration = Duration(60 * 60 * 1_000);
    /// One day.
    pub const DAY: Duration = Duration(24 * 60 * 60 * 1_000);
    /// A "month" is 30 days, the convention used throughout the paper's
    /// parameter descriptions (3-month inter-poll interval, 30-day
    /// recuperation period).
    pub const MONTH: Duration = Duration(30 * 24 * 60 * 60 * 1_000);
    /// A calendar year (365 days).
    pub const YEAR: Duration = Duration(365 * 24 * 60 * 60 * 1_000);

    /// Builds a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Duration {
        Duration(ms)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Duration {
        Duration(s * 1_000)
    }

    /// Builds a duration from fractional seconds, rounding to milliseconds.
    ///
    /// Negative or non-finite inputs saturate to zero.
    pub fn from_secs_f64(s: f64) -> Duration {
        if !s.is_finite() || s <= 0.0 {
            return Duration::ZERO;
        }
        Duration((s * 1_000.0).round() as u64)
    }

    /// Builds a duration from whole minutes.
    pub const fn from_mins(m: u64) -> Duration {
        Duration(m * 60 * 1_000)
    }

    /// Builds a duration from whole hours.
    pub const fn from_hours(h: u64) -> Duration {
        Duration(h * 60 * 60 * 1_000)
    }

    /// Builds a duration from whole days.
    pub const fn from_days(d: u64) -> Duration {
        Duration(d * 24 * 60 * 60 * 1_000)
    }

    /// The duration in milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The duration in fractional days.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / Duration::DAY.0 as f64
    }

    /// The duration in fractional years.
    pub fn as_years_f64(self) -> f64 {
        self.0 as f64 / Duration::YEAR.0 as f64
    }

    /// Scales the duration by a non-negative factor, rounding to
    /// milliseconds. Saturates at zero for negative or non-finite factors.
    pub fn mul_f64(self, factor: f64) -> Duration {
        if !factor.is_finite() || factor <= 0.0 {
            return Duration::ZERO;
        }
        Duration((self.0 as f64 * factor).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// True if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of two durations.
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }
}

impl SimTime {
    /// The start of the run.
    pub const ZERO: SimTime = SimTime(0);

    /// The instant as milliseconds since the start of the run.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// The instant as fractional seconds since the start of the run.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The instant as fractional days since the start of the run.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / Duration::DAY.0 as f64
    }

    /// The span from an earlier instant to this one.
    ///
    /// Saturates to zero if `earlier` is in fact later.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating subtraction of a duration.
    pub fn saturating_sub(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: Duration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Div for Duration {
    type Output = f64;
    fn div(self, rhs: Duration) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", Duration(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", Duration(self.0))
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0;
        if ms == 0 {
            return write!(f, "0ms");
        }
        if ms.is_multiple_of(Duration::DAY.0) {
            write!(f, "{}d", ms / Duration::DAY.0)
        } else if ms.is_multiple_of(Duration::HOUR.0) {
            write!(f, "{}h", ms / Duration::HOUR.0)
        } else if ms.is_multiple_of(Duration::MINUTE.0) {
            write!(f, "{}m", ms / Duration::MINUTE.0)
        } else if ms.is_multiple_of(Duration::SECOND.0) {
            write!(f, "{}s", ms / Duration::SECOND.0)
        } else if ms >= Duration::DAY.0 {
            write!(f, "{:.1}d", self.as_days_f64())
        } else if ms >= Duration::HOUR.0 {
            write!(f, "{:.1}h", ms as f64 / Duration::HOUR.0 as f64)
        } else if ms >= Duration::SECOND.0 {
            write!(f, "{:.2}s", self.as_secs_f64())
        } else {
            write!(f, "{}ms", ms)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(Duration::SECOND * 60, Duration::MINUTE);
        assert_eq!(Duration::MINUTE * 60, Duration::HOUR);
        assert_eq!(Duration::HOUR * 24, Duration::DAY);
        assert_eq!(Duration::DAY * 30, Duration::MONTH);
        assert_eq!(Duration::DAY * 365, Duration::YEAR);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::ZERO + Duration::from_days(10);
        assert_eq!(t.since(SimTime::ZERO), Duration::from_days(10));
        assert_eq!((t + Duration::HOUR).since(t), Duration::HOUR);
        assert_eq!(t.since(t + Duration::HOUR), Duration::ZERO);
    }

    #[test]
    fn fractional_conversions() {
        assert!((Duration::from_days(365).as_years_f64() - 1.0).abs() < 1e-12);
        assert!((Duration::from_secs(90).as_secs_f64() - 90.0).abs() < 1e-12);
        assert_eq!(Duration::from_secs_f64(1.5), Duration::from_millis(1500));
        assert_eq!(Duration::from_secs_f64(-3.0), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::NAN), Duration::ZERO);
    }

    #[test]
    fn mul_f64_saturates() {
        assert_eq!(Duration::SECOND.mul_f64(2.5), Duration::from_millis(2500));
        assert_eq!(Duration::SECOND.mul_f64(-1.0), Duration::ZERO);
        assert_eq!(Duration::SECOND.mul_f64(f64::INFINITY), Duration::ZERO);
    }

    #[test]
    fn display_picks_largest_exact_unit() {
        assert_eq!(Duration::from_days(3).to_string(), "3d");
        assert_eq!(Duration::from_hours(5).to_string(), "5h");
        assert_eq!(Duration::from_secs(7).to_string(), "7s");
        assert_eq!(Duration::from_millis(999).to_string(), "999ms");
        assert_eq!(Duration::ZERO.to_string(), "0ms");
    }

    #[test]
    fn display_falls_back_to_decimals() {
        assert_eq!(Duration::from_millis(1234).to_string(), "1.23s");
        assert_eq!(Duration::from_millis(2_587_889_794).to_string(), "30.0d");
        let ninety_minutes_ish = Duration::from_millis(90 * 60 * 1000 + 1);
        assert_eq!(ninety_minutes_ish.to_string(), "1.5h");
    }

    #[test]
    fn duration_ratio() {
        assert!((Duration::MONTH / Duration::DAY - 30.0).abs() < 1e-12);
    }
}

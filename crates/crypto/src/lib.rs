//! Cryptographic substrate for the LOCKSS attrition reproduction.
//!
//! Everything here is implemented from scratch (the offline dependency
//! policy bans third-party crypto crates):
//!
//! - [`mod@sha256`]: FIPS 180-4 SHA-256, used for content hashing and votes in
//!   "real mode" (the simulator charges *time* for hashing instead, exactly
//!   as the paper's Narses runs did, but the real thing exists and is
//!   exercised by tests and examples).
//! - [`hmac`]: HMAC-SHA-256 for the toy authenticated session channel.
//! - [`mbf`]: a memory-bound function in the spirit of Dwork–Goldberg–Naor,
//!   providing provable effort with a verification cost that is a large
//!   constant fraction of generation cost, plus the 160-bit unforgeable
//!   *byproduct* that the protocol reuses as the evaluation receipt
//!   (paper §5.1).
//! - [`prg`]: a tiny deterministic generator for synthesizing archival-unit
//!   block content in real-mode tests.
//!
//! None of this is production cryptography; it is a faithful, testable
//! substrate for a simulation study.

pub mod hmac;
pub mod mbf;
pub mod prg;
pub mod sha256;

pub use hmac::hmac_sha256;
pub use mbf::{MbfParams, MbfProof, MbfPuzzle};
pub use sha256::{sha256, Sha256};

//! A memory-bound proof-of-effort function (paper §5.1).
//!
//! The paper prices protocol requests via Memory-Bound Functions
//! (Dwork–Goldberg–Naor; Abadi et al.) because memory latency varies far
//! less across machines than CPU speed. This module implements a
//! self-contained MBF in that spirit:
//!
//! - The prover performs pseudo-random *walks* through a large table whose
//!   entries are deliberately cache-unfriendly to visit in sequence; each
//!   walk must additionally satisfy a search criterion (leading zero bits),
//!   so generation explores `~2^difficulty_bits` candidate walks per
//!   accepted walk.
//! - The verifier replays only the accepted walks, so verification costs a
//!   `1/2^difficulty_bits` fraction of generation — a *large constant
//!   fraction*, which is exactly the property the paper's admission-control
//!   calibration relies on (§6.3).
//! - Generating (or verifying) a proof yields a 160-bit unforgeable
//!   **byproduct**; the protocol reuses it as the evaluation receipt: the
//!   voter remembers the byproduct of the effort embedded in the vote, and
//!   the poller can only learn it by actually performing the evaluation
//!   effort (§5.1).
//!
//! Inside the simulator these computations are charged as *time* through
//! `lockss-effort`; this real implementation backs the unit tests, examples
//! and micro-benchmarks.

use crate::sha256::Sha256;

/// Tuning parameters for the memory-bound function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MbfParams {
    /// The table holds `2^table_bits` 64-bit words.
    pub table_bits: u32,
    /// Steps per walk.
    pub walk_len: u32,
    /// Accepted walks required per proof (the effort knob).
    pub n_walks: u32,
    /// Each accepted walk must hash to this many leading zero bits, so
    /// generation tries `~2^difficulty_bits` walks per accepted one while
    /// verification replays only the accepted walk.
    pub difficulty_bits: u32,
}

impl Default for MbfParams {
    fn default() -> Self {
        // Small enough for tests; examples scale these up.
        MbfParams {
            table_bits: 16,
            walk_len: 512,
            n_walks: 4,
            difficulty_bits: 2,
        }
    }
}

impl MbfParams {
    /// Expected table size in bytes.
    pub fn table_bytes(&self) -> usize {
        (1usize << self.table_bits) * 8
    }

    /// Expected number of walk *steps* for generation (mean).
    pub fn expected_generation_steps(&self) -> u64 {
        (self.n_walks as u64) * (self.walk_len as u64) * (1u64 << self.difficulty_bits)
    }

    /// Walk steps for verification of a valid proof.
    pub fn verification_steps(&self) -> u64 {
        (self.n_walks as u64) * (self.walk_len as u64)
    }
}

/// Witness for one accepted walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkWitness {
    /// Which candidate walk satisfied the criterion.
    pub trial: u32,
    /// Final walk state.
    pub end: u64,
}

/// A proof of memory-bound effort for a specific challenge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MbfProof {
    pub walks: Vec<WalkWitness>,
    /// 160-bit unforgeable byproduct of performing the effort; doubles as
    /// the protocol's evaluation receipt.
    pub byproduct: [u8; 20],
}

/// A reusable MBF instance: the table plus parameters.
///
/// The table is derived from a public seed. (A deployment would use a truly
/// incompressible table; for a simulation substrate a seeded fill keeps
/// tests deterministic.)
pub struct MbfPuzzle {
    params: MbfParams,
    table: Vec<u64>,
    mask: u64,
}

impl MbfPuzzle {
    /// Builds the table for `params` from `seed`.
    pub fn new(params: MbfParams, seed: u64) -> MbfPuzzle {
        let n = 1usize << params.table_bits;
        let mut table = Vec::with_capacity(n);
        let mut s = seed ^ 0x9e37_79b9_7f4a_7c15;
        for i in 0..n {
            // splitmix64: cheap, full-period, good diffusion.
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s ^ (i as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            table.push(z ^ (z >> 31));
        }
        MbfPuzzle {
            params,
            table,
            mask: (n - 1) as u64,
        }
    }

    /// The instance parameters.
    pub fn params(&self) -> MbfParams {
        self.params
    }

    fn walk(&self, challenge: &[u8], index: u32, trial: u32) -> u64 {
        let mut h = Sha256::new();
        h.update(challenge);
        h.update(&index.to_le_bytes());
        h.update(&trial.to_le_bytes());
        let d = h.finalize();
        let mut s = u64::from_le_bytes(d[..8].try_into().expect("8 bytes"));
        let mut p =
            (u64::from_le_bytes(d[8..16].try_into().expect("8 bytes")) & self.mask) as usize;
        for _ in 0..self.params.walk_len {
            s = s.rotate_left(7) ^ self.table[p];
            p = ((s ^ (s >> 32)) & self.mask) as usize;
        }
        s
    }

    fn accepts(&self, challenge: &[u8], index: u32, trial: u32, end: u64) -> bool {
        let mut h = Sha256::new();
        h.update(challenge);
        h.update(&index.to_le_bytes());
        h.update(&trial.to_le_bytes());
        h.update(&end.to_le_bytes());
        let d = h.finalize();
        leading_zero_bits(&d) >= self.params.difficulty_bits
    }

    /// Performs the effort for `challenge` and returns the proof.
    ///
    /// Mean cost is `expected_generation_steps()` table-dependent steps.
    pub fn prove(&self, challenge: &[u8]) -> MbfProof {
        let mut walks = Vec::with_capacity(self.params.n_walks as usize);
        for index in 0..self.params.n_walks {
            let mut trial = 0u32;
            loop {
                let end = self.walk(challenge, index, trial);
                if self.accepts(challenge, index, trial, end) {
                    walks.push(WalkWitness { trial, end });
                    break;
                }
                trial += 1;
            }
        }
        let byproduct = byproduct(challenge, &walks);
        MbfProof { walks, byproduct }
    }

    /// Verifies a proof by replaying the accepted walks; returns the
    /// recomputed byproduct on success.
    ///
    /// Cost is `verification_steps()` steps — a constant fraction
    /// `2^-difficulty_bits` of generation.
    pub fn verify(&self, challenge: &[u8], proof: &MbfProof) -> Option<[u8; 20]> {
        if proof.walks.len() != self.params.n_walks as usize {
            return None;
        }
        for (index, w) in proof.walks.iter().enumerate() {
            let end = self.walk(challenge, index as u32, w.trial);
            if end != w.end || !self.accepts(challenge, index as u32, w.trial, end) {
                return None;
            }
        }
        let b = byproduct(challenge, &proof.walks);
        if b != proof.byproduct {
            return None;
        }
        Some(b)
    }
}

fn byproduct(challenge: &[u8], walks: &[WalkWitness]) -> [u8; 20] {
    let mut h = Sha256::new();
    h.update(b"mbf-byproduct");
    h.update(challenge);
    for w in walks {
        h.update(&w.trial.to_le_bytes());
        h.update(&w.end.to_le_bytes());
    }
    let d = h.finalize();
    let mut out = [0u8; 20];
    out.copy_from_slice(&d[..20]);
    out
}

fn leading_zero_bits(d: &[u8; 32]) -> u32 {
    let mut bits = 0;
    for b in d {
        if *b == 0 {
            bits += 8;
        } else {
            bits += b.leading_zeros();
            break;
        }
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn puzzle() -> MbfPuzzle {
        MbfPuzzle::new(
            MbfParams {
                table_bits: 10,
                walk_len: 64,
                n_walks: 3,
                difficulty_bits: 2,
            },
            42,
        )
    }

    #[test]
    fn prove_then_verify_roundtrip() {
        let p = puzzle();
        let proof = p.prove(b"challenge-1");
        let byproduct = p.verify(b"challenge-1", &proof);
        assert_eq!(byproduct, Some(proof.byproduct));
    }

    #[test]
    fn wrong_challenge_rejected() {
        let p = puzzle();
        let proof = p.prove(b"challenge-1");
        assert_eq!(p.verify(b"challenge-2", &proof), None);
    }

    #[test]
    fn tampered_walk_rejected() {
        let p = puzzle();
        let mut proof = p.prove(b"c");
        proof.walks[0].end ^= 1;
        assert_eq!(p.verify(b"c", &proof), None);
    }

    #[test]
    fn tampered_byproduct_rejected() {
        let p = puzzle();
        let mut proof = p.prove(b"c");
        proof.byproduct[0] ^= 1;
        assert_eq!(p.verify(b"c", &proof), None);
    }

    #[test]
    fn truncated_proof_rejected() {
        let p = puzzle();
        let mut proof = p.prove(b"c");
        proof.walks.pop();
        assert_eq!(p.verify(b"c", &proof), None);
    }

    #[test]
    fn byproduct_is_challenge_specific() {
        let p = puzzle();
        let a = p.prove(b"a");
        let b = p.prove(b"b");
        assert_ne!(a.byproduct, b.byproduct);
    }

    #[test]
    fn different_seeds_make_different_tables() {
        let params = MbfParams::default();
        let p1 = MbfPuzzle::new(params, 1);
        let p2 = MbfPuzzle::new(params, 2);
        let proof = p1.prove(b"x");
        // A proof against one table should not verify against another.
        assert_eq!(p2.verify(b"x", &proof), None);
    }

    #[test]
    fn expected_cost_accounting() {
        let params = MbfParams {
            table_bits: 8,
            walk_len: 100,
            n_walks: 2,
            difficulty_bits: 3,
        };
        assert_eq!(params.verification_steps(), 200);
        assert_eq!(params.expected_generation_steps(), 1600);
        assert_eq!(params.table_bytes(), 256 * 8);
    }

    #[test]
    fn generation_really_searches() {
        // With difficulty 4, at least one of a handful of proofs should need
        // a non-zero trial counter (probability of all-zero is ~(1/16)^-...).
        let p = MbfPuzzle::new(
            MbfParams {
                table_bits: 10,
                walk_len: 16,
                n_walks: 4,
                difficulty_bits: 4,
            },
            7,
        );
        let proof = p.prove(b"search");
        assert!(
            proof.walks.iter().any(|w| w.trial > 0),
            "difficulty should force retries: {proof:?}"
        );
        assert!(p.verify(b"search", &proof).is_some());
    }
}

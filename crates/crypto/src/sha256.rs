//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! Streaming [`Sha256`] hasher plus the one-shot [`sha256`] helper. Verified
//! against the NIST test vectors in the unit tests below.
//!
//! The compression function is fully unrolled — 64 rounds expanded with the
//! message schedule kept in a 16-word circular window — and `update`
//! compresses aligned 64-byte runs straight out of the caller's slice, so
//! the only per-block memory traffic is the sixteen schedule loads.
//! `finalize` assembles the padding in place (one compress call for short
//! tails, two when the length field doesn't fit) instead of feeding padding
//! bytes through `update` one at a time; vote hashing clones and finalizes a
//! running hasher at every block boundary, which makes finalize itself a
//! hot path.
//!
//! On x86-64 machines with the SHA extensions (detected once at runtime,
//! cached by `is_x86_feature_detected!`), multi-block runs go through the
//! `SHA256RNDS2`/`SHA256MSG1`/`SHA256MSG2` instructions instead; the output
//! is bit-identical to the portable core, which every other architecture
//! uses unconditionally.

/// Initial hash values: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Round constants: first 32 bits of the fractional parts of the cube roots
/// of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// A 32-byte digest.
pub type Digest = [u8; 32];

/// Streaming SHA-256 state.
///
/// # Examples
///
/// ```
/// use lockss_crypto::sha256::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// assert_eq!(
///     hex(&h.finalize()),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
///
/// fn hex(d: &[u8]) -> String {
///     d.iter().map(|b| format!("{b:02x}")).collect()
/// }
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes processed so far (message length).
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

#[inline(always)]
fn load_be(block: &[u8], i: usize) -> u32 {
    u32::from_be_bytes([
        block[i * 4],
        block[i * 4 + 1],
        block[i * 4 + 2],
        block[i * 4 + 3],
    ])
}

/// One compression of a 64-byte block into `state`.
///
/// Fully unrolled: the 16-word schedule window lives in locals, the eight
/// working variables rotate through the round macro by renaming rather than
/// shuffling, and rounds 16–63 extend the schedule in place.
#[inline]
fn compress(state: &mut [u32; 8], block: &[u8]) {
    debug_assert!(block.len() >= 64);
    let mut w00 = load_be(block, 0);
    let mut w01 = load_be(block, 1);
    let mut w02 = load_be(block, 2);
    let mut w03 = load_be(block, 3);
    let mut w04 = load_be(block, 4);
    let mut w05 = load_be(block, 5);
    let mut w06 = load_be(block, 6);
    let mut w07 = load_be(block, 7);
    let mut w08 = load_be(block, 8);
    let mut w09 = load_be(block, 9);
    let mut w10 = load_be(block, 10);
    let mut w11 = load_be(block, 11);
    let mut w12 = load_be(block, 12);
    let mut w13 = load_be(block, 13);
    let mut w14 = load_be(block, 14);
    let mut w15 = load_be(block, 15);

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;

    // One round: t1/t2 with ch and maj in their 3-op forms; the caller
    // rotates the register names so no value ever moves.
    macro_rules! round {
        ($a:ident,$b:ident,$c:ident,$d:ident,$e:ident,$f:ident,$g:ident,$h:ident, $k:expr, $w:expr) => {{
            let s1 = $e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25);
            let ch = $g ^ ($e & ($f ^ $g));
            let t1 = $h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add($k)
                .wrapping_add($w);
            let s0 = $a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22);
            let maj = ($a & $b) | ($c & ($a | $b));
            $d = $d.wrapping_add(t1);
            $h = t1.wrapping_add(s0).wrapping_add(maj);
        }};
    }

    // Schedule extension in the circular window: w[i] += s0(w[i+1]) +
    // w[i+9] + s1(w[i+14]), indices mod 16.
    macro_rules! sched {
        ($wi:ident, $w1:ident, $w9:ident, $w14:ident) => {{
            let s0 = $w1.rotate_right(7) ^ $w1.rotate_right(18) ^ ($w1 >> 3);
            let s1 = $w14.rotate_right(17) ^ $w14.rotate_right(19) ^ ($w14 >> 10);
            $wi = $wi.wrapping_add(s0).wrapping_add($w9).wrapping_add(s1);
            $wi
        }};
    }

    // 16 rounds with the register rotation written out; `$w` names the
    // schedule word for each round in this group.
    macro_rules! round16 {
        ($k:expr, $w0:expr,$w1:expr,$w2:expr,$w3:expr,$w4:expr,$w5:expr,$w6:expr,$w7:expr,
         $w8:expr,$w9:expr,$w10:expr,$w11:expr,$w12:expr,$w13:expr,$w14:expr,$w15:expr) => {{
            round!(a, b, c, d, e, f, g, h, K[$k], $w0);
            round!(h, a, b, c, d, e, f, g, K[$k + 1], $w1);
            round!(g, h, a, b, c, d, e, f, K[$k + 2], $w2);
            round!(f, g, h, a, b, c, d, e, K[$k + 3], $w3);
            round!(e, f, g, h, a, b, c, d, K[$k + 4], $w4);
            round!(d, e, f, g, h, a, b, c, K[$k + 5], $w5);
            round!(c, d, e, f, g, h, a, b, K[$k + 6], $w6);
            round!(b, c, d, e, f, g, h, a, K[$k + 7], $w7);
            round!(a, b, c, d, e, f, g, h, K[$k + 8], $w8);
            round!(h, a, b, c, d, e, f, g, K[$k + 9], $w9);
            round!(g, h, a, b, c, d, e, f, K[$k + 10], $w10);
            round!(f, g, h, a, b, c, d, e, K[$k + 11], $w11);
            round!(e, f, g, h, a, b, c, d, K[$k + 12], $w12);
            round!(d, e, f, g, h, a, b, c, K[$k + 13], $w13);
            round!(c, d, e, f, g, h, a, b, K[$k + 14], $w14);
            round!(b, c, d, e, f, g, h, a, K[$k + 15], $w15);
        }};
    }

    round16!(0, w00, w01, w02, w03, w04, w05, w06, w07, w08, w09, w10, w11, w12, w13, w14, w15);
    round16!(
        16,
        sched!(w00, w01, w09, w14),
        sched!(w01, w02, w10, w15),
        sched!(w02, w03, w11, w00),
        sched!(w03, w04, w12, w01),
        sched!(w04, w05, w13, w02),
        sched!(w05, w06, w14, w03),
        sched!(w06, w07, w15, w04),
        sched!(w07, w08, w00, w05),
        sched!(w08, w09, w01, w06),
        sched!(w09, w10, w02, w07),
        sched!(w10, w11, w03, w08),
        sched!(w11, w12, w04, w09),
        sched!(w12, w13, w05, w10),
        sched!(w13, w14, w06, w11),
        sched!(w14, w15, w07, w12),
        sched!(w15, w00, w08, w13)
    );
    round16!(
        32,
        sched!(w00, w01, w09, w14),
        sched!(w01, w02, w10, w15),
        sched!(w02, w03, w11, w00),
        sched!(w03, w04, w12, w01),
        sched!(w04, w05, w13, w02),
        sched!(w05, w06, w14, w03),
        sched!(w06, w07, w15, w04),
        sched!(w07, w08, w00, w05),
        sched!(w08, w09, w01, w06),
        sched!(w09, w10, w02, w07),
        sched!(w10, w11, w03, w08),
        sched!(w11, w12, w04, w09),
        sched!(w12, w13, w05, w10),
        sched!(w13, w14, w06, w11),
        sched!(w14, w15, w07, w12),
        sched!(w15, w00, w08, w13)
    );
    round16!(
        48,
        sched!(w00, w01, w09, w14),
        sched!(w01, w02, w10, w15),
        sched!(w02, w03, w11, w00),
        sched!(w03, w04, w12, w01),
        sched!(w04, w05, w13, w02),
        sched!(w05, w06, w14, w03),
        sched!(w06, w07, w15, w04),
        sched!(w07, w08, w00, w05),
        sched!(w08, w09, w01, w06),
        sched!(w09, w10, w02, w07),
        sched!(w10, w11, w03, w08),
        sched!(w11, w12, w04, w09),
        sched!(w12, w13, w05, w10),
        sched!(w13, w14, w06, w11),
        sched!(w14, w15, w07, w12),
        sched!(w15, w00, w08, w13)
    );

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// True if the `LOCKSS_SHA256_FORCE_PORTABLE` environment variable (any
/// value but `0`) disables the hardware backend. Read once and cached: CI
/// uses this to keep the portable core exercised on SHA-NI runners, where
/// runtime dispatch would otherwise never take the portable path. Both
/// backends are bit-identical, so forcing is purely a coverage/perf knob.
#[cfg(target_arch = "x86_64")]
fn force_portable() -> bool {
    use std::sync::OnceLock;
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE
        .get_or_init(|| std::env::var_os("LOCKSS_SHA256_FORCE_PORTABLE").is_some_and(|v| v != "0"))
}

/// Compresses every whole 64-byte block at the front of `data` (length need
/// not be a multiple of 64; the tail is the caller's problem). Dispatches to
/// the SHA-NI backend when the CPU has it (unless the portable core is
/// forced via `LOCKSS_SHA256_FORCE_PORTABLE`).
#[inline]
fn compress_many(state: &mut [u32; 8], data: &[u8]) {
    #[cfg(target_arch = "x86_64")]
    {
        // The feature probe is a cached atomic load after the first call.
        if data.len() >= 64
            && !force_portable()
            && is_x86_feature_detected!("sha")
            && is_x86_feature_detected!("sse4.1")
            && is_x86_feature_detected!("ssse3")
        {
            // SAFETY: the required target features were just verified.
            unsafe { ni::compress_many(state, data) };
            return;
        }
    }
    let mut rest = data;
    while rest.len() >= 64 {
        compress(state, rest);
        rest = &rest[64..];
    }
}

/// The x86-64 SHA-extensions backend. Follows Intel's reference flow: state
/// repacked into the ABEF/CDGH register layout, four rounds per
/// `SHA256RNDS2` pair, message schedule advanced with `SHA256MSG1`/`MSG2`.
#[cfg(target_arch = "x86_64")]
mod ni {
    use super::K;
    #[allow(clippy::wildcard_imports)]
    use std::arch::x86_64::*;

    /// Advances the schedule one 4-word group: returns `w[g]` from
    /// `w[g-4..g]`.
    #[inline(always)]
    unsafe fn schedule(v0: __m128i, v1: __m128i, v2: __m128i, v3: __m128i) -> __m128i {
        unsafe {
            let t1 = _mm_sha256msg1_epu32(v0, v1);
            let t2 = _mm_alignr_epi8(v3, v2, 4);
            let t3 = _mm_add_epi32(t1, t2);
            _mm_sha256msg2_epu32(t3, v3)
        }
    }

    /// # Safety
    ///
    /// Requires the `sha`, `sse4.1`, and `ssse3` CPU features.
    #[target_feature(enable = "sha,sse4.1,ssse3")]
    pub(super) unsafe fn compress_many(state: &mut [u32; 8], data: &[u8]) {
        unsafe {
            // Repack [a,b,c,d][e,f,g,h] into the ABEF/CDGH lanes the
            // instructions expect.
            let tmp = _mm_loadu_si128(state.as_ptr().cast::<__m128i>());
            let mut cdgh = _mm_loadu_si128(state.as_ptr().add(4).cast::<__m128i>());
            let tmp = _mm_shuffle_epi32(tmp, 0xB1);
            cdgh = _mm_shuffle_epi32(cdgh, 0x1B);
            let mut abef = _mm_alignr_epi8(tmp, cdgh, 8);
            cdgh = _mm_blend_epi16(cdgh, tmp, 0xF0);

            // Big-endian word loads.
            let mask = _mm_set_epi64x(0x0c0d_0e0f_0809_0a0b, 0x0405_0607_0001_0203);

            macro_rules! rounds4 {
                ($w:expr, $g:expr) => {{
                    let wk = _mm_add_epi32(
                        $w,
                        _mm_loadu_si128(K.as_ptr().add($g * 4).cast::<__m128i>()),
                    );
                    cdgh = _mm_sha256rnds2_epu32(cdgh, abef, wk);
                    let wk_hi = _mm_shuffle_epi32(wk, 0x0E);
                    abef = _mm_sha256rnds2_epu32(abef, cdgh, wk_hi);
                }};
            }

            let mut rest = data;
            while rest.len() >= 64 {
                let abef_save = abef;
                let cdgh_save = cdgh;
                let p = rest.as_ptr().cast::<__m128i>();
                let mut w0 = _mm_shuffle_epi8(_mm_loadu_si128(p), mask);
                let mut w1 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(1)), mask);
                let mut w2 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(2)), mask);
                let mut w3 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(3)), mask);
                rounds4!(w0, 0);
                rounds4!(w1, 1);
                rounds4!(w2, 2);
                rounds4!(w3, 3);
                let mut g = 4;
                while g < 16 {
                    let w4 = schedule(w0, w1, w2, w3);
                    rounds4!(w4, g);
                    (w0, w1, w2, w3) = (w1, w2, w3, w4);
                    g += 1;
                }
                abef = _mm_add_epi32(abef, abef_save);
                cdgh = _mm_add_epi32(cdgh, cdgh_save);
                rest = &rest[64..];
            }

            // Unpack back to [a,b,c,d][e,f,g,h].
            let tmp = _mm_shuffle_epi32(abef, 0x1B);
            let cdgh_sh = _mm_shuffle_epi32(cdgh, 0xB1);
            let abcd = _mm_blend_epi16(tmp, cdgh_sh, 0xF0);
            let efgh = _mm_alignr_epi8(cdgh_sh, tmp, 8);
            _mm_storeu_si128(state.as_mut_ptr().cast::<__m128i>(), abcd);
            _mm_storeu_si128(state.as_mut_ptr().add(4).cast::<__m128i>(), efgh);
        }
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Sha256 {
        Sha256 {
            state: H0,
            len: 0,
            buf: [0; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    ///
    /// Aligned 64-byte runs compress directly out of `data`; only a
    /// sub-block head (completing a previously buffered partial block) or
    /// tail touches the internal buffer.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                compress_many(&mut self.state, &block);
                self.buf_len = 0;
            }
        }
        let whole = rest.len() - rest.len() % 64;
        if whole > 0 {
            compress_many(&mut self.state, &rest[..whole]);
            rest = &rest[whole..];
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Finishes the hash and returns the digest, consuming the hasher.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.len.wrapping_mul(8);
        // Padding assembled in place: 0x80, zeros to 56 mod 64, then the
        // 64-bit big-endian bit length. One compress if the tail leaves
        // room for the 9 padding-plus-length bytes, two otherwise.
        self.buf[self.buf_len] = 0x80;
        if self.buf_len < 56 {
            self.buf[self.buf_len + 1..56].fill(0);
        } else {
            self.buf[self.buf_len + 1..64].fill(0);
            let block = self.buf;
            compress_many(&mut self.state, &block);
            self.buf[..56].fill(0);
        }
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        compress_many(&mut self.state, &block);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }
}

/// One-shot SHA-256 of a byte slice.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Renders a digest (or any byte slice) as lowercase hex.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        use std::fmt::Write;
        let _ = write!(s, "{b:02x}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        to_hex(d)
    }

    #[test]
    fn nist_vector_empty() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_vector_abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_vector_448_bits() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_vector_896_bits() {
        assert_eq!(
            hex(&sha256(
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn\
                  hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"
            )),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    /// Exact-block-multiple inputs exercise the one-compress finalize path
    /// with an empty tail (`buf_len == 0`, pad byte at offset 0).
    #[test]
    fn exact_block_lengths() {
        // SHA-256 of 64 and 128 'a' bytes (cross-checked against coreutils
        // sha256sum).
        let a64 = [b'a'; 64];
        assert_eq!(
            hex(&sha256(&a64)),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"
        );
        let a128 = [b'a'; 128];
        assert_eq!(
            hex(&sha256(&a128)),
            "6836cf13bac400e9105071cd6af47084dfacad4e5e302c94bfed24e013afb73e"
        );
    }

    /// Tail lengths straddling the two-compress finalize boundary
    /// (55 = one-compress max, 56..=63 = two-compress) all agree with the
    /// streaming construction.
    #[test]
    fn finalize_padding_boundaries() {
        for len in 50..70usize {
            let data: Vec<u8> = (0..len as u32).map(|i| (i * 37 % 256) as u8).collect();
            // Reference: one-byte-at-a-time updates through the slow path.
            let mut slow = Sha256::new();
            for b in &data {
                slow.update(std::slice::from_ref(b));
            }
            assert_eq!(sha256(&data), slow.finalize(), "len {len}");
        }
    }

    #[test]
    fn streaming_matches_oneshot_at_odd_boundaries() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let want = sha256(&data);
        for split in [0usize, 1, 55, 56, 63, 64, 65, 127, 128, 999] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), want, "split at {split}");
        }
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(sha256(b"block-0"), sha256(b"block-1"));
    }
}

// Seeded randomized property sweeps (no proptest under the offline
// dependency policy; cases are a pure function of the fixed seed).
#[cfg(test)]
mod proptests {
    use super::*;
    use lockss_sim::SimRng;

    fn random_bytes(rng: &mut SimRng, len: usize) -> Vec<u8> {
        (0..len).map(|_| rng.below(256) as u8).collect()
    }

    /// Streaming in arbitrary chunkings equals one-shot hashing.
    #[test]
    fn chunked_equals_oneshot() {
        let mut rng = SimRng::seed_from_u64(0x7368_6101);
        for _ in 0..128 {
            let len = rng.below(2048);
            let data = random_bytes(&mut rng, len);
            let want = sha256(&data);
            let n_cuts = rng.below(8);
            let mut idx: Vec<usize> = (0..n_cuts).map(|_| rng.below(data.len() + 1)).collect();
            idx.sort_unstable();
            let mut h = Sha256::new();
            let mut prev = 0;
            for c in idx {
                h.update(&data[prev..c]);
                prev = c;
            }
            h.update(&data[prev..]);
            assert_eq!(h.finalize(), want);
        }
    }

    /// The portable unrolled core and the dispatched backend (SHA-NI where
    /// the CPU has it) compress identically: seeded multi-block runs agree
    /// state-for-state.
    #[test]
    fn portable_core_matches_dispatched_backend() {
        let mut rng = SimRng::seed_from_u64(0x7368_6103);
        for _ in 0..64 {
            let blocks = 1 + rng.below(8);
            let data = random_bytes(&mut rng, blocks * 64);
            let mut via_dispatch = super::H0;
            super::compress_many(&mut via_dispatch, &data);
            let mut via_portable = super::H0;
            let mut rest = data.as_slice();
            while rest.len() >= 64 {
                super::compress(&mut via_portable, rest);
                rest = &rest[64..];
            }
            assert_eq!(via_dispatch, via_portable);
        }
    }

    /// Flipping any byte changes the digest.
    #[test]
    fn avalanche() {
        let mut rng = SimRng::seed_from_u64(0x7368_6102);
        for _ in 0..128 {
            let len = 1 + rng.below(511);
            let data = random_bytes(&mut rng, len);
            let mut other = data.clone();
            let i = rng.below(data.len());
            other[i] ^= 0x01;
            assert_ne!(sha256(&data), sha256(&other));
        }
    }
}

//! A tiny deterministic pseudo-random generator for synthesizing archival
//! unit content in real-mode tests and examples.
//!
//! Block `b` of AU `au` under content seed `s` is a pure function of
//! `(s, au, b)`, so any two loyal replicas materialize identical bytes
//! without storing them.

/// Fills `out` with the canonical content of block `block` of AU `au`.
pub fn fill_block(seed: u64, au: u64, block: u64, out: &mut [u8]) {
    let mut state = mix(seed ^ mix(au) ^ mix(block).rotate_left(17));
    let mut i = 0;
    while i + 8 <= out.len() {
        state = mix(state);
        out[i..i + 8].copy_from_slice(&state.to_le_bytes());
        i += 8;
    }
    if i < out.len() {
        state = mix(state);
        let bytes = state.to_le_bytes();
        let n = out.len() - i;
        out[i..].copy_from_slice(&bytes[..n]);
    }
}

/// splitmix64 finalizer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = [0u8; 100];
        let mut b = [0u8; 100];
        fill_block(1, 2, 3, &mut a);
        fill_block(1, 2, 3, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_coordinates_distinct_content() {
        let mut a = [0u8; 64];
        let mut b = [0u8; 64];
        fill_block(1, 2, 3, &mut a);
        fill_block(1, 2, 4, &mut b);
        assert_ne!(a, b);
        fill_block(1, 3, 3, &mut b);
        assert_ne!(a, b);
        fill_block(2, 2, 3, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn odd_lengths_filled() {
        let mut a = [0xAAu8; 13];
        fill_block(9, 9, 9, &mut a);
        // Probability all 13 bytes stay 0xAA is negligible.
        assert!(a.iter().any(|&b| b != 0xAA));
    }

    #[test]
    fn empty_slice_ok() {
        let mut a = [0u8; 0];
        fill_block(0, 0, 0, &mut a);
    }
}

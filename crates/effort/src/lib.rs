//! Effort cost model and per-peer effort ledgers.
//!
//! The paper's simulator models "computationally expensive operations, such
//! as computing MBF efforts and hashing documents" as time costs calibrated
//! to a low-cost PC (§6.2–6.3). This crate is that calibration:
//!
//! - [`CostModel`] converts protocol operations into CPU-time
//!   [`Duration`]s, with the effort-balancing arithmetic of §5.1 baked in
//!   (introductory effort = 20% of the poller's total per-voter provable
//!   effort; intro + remaining exceeds the voter's verify + vote cost).
//! - [`EffortLedger`] accumulates the CPU-seconds each node actually spends,
//!   categorised by purpose, feeding the coefficient-of-friction and
//!   cost-ratio metrics.

pub mod ledger;
pub mod model;

pub use ledger::{EffortLedger, Purpose};
pub use model::{CostModel, CostTable};

pub use lockss_sim::Duration;

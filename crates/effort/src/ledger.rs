//! Per-node effort accounting.
//!
//! The evaluation metrics need total CPU effort spent by loyal peers and by
//! the adversary (coefficient of friction, cost ratio); the breakdown by
//! purpose exists for diagnostics and the per-experiment reports.

use lockss_sim::Duration;

/// Why a node spent CPU time.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Purpose {
    /// Establishing a session / parsing to consider an invitation.
    Consider,
    /// Verifying an introductory effort proof.
    VerifyIntro,
    /// Verifying a remaining effort proof.
    VerifyRemaining,
    /// Verifying a vote's embedded proof during evaluation.
    VerifyVoteProof,
    /// Hashing an AU replica to compute a vote.
    ComputeVote,
    /// Generating the vote's embedded effort proof.
    GenVoteProof,
    /// Generating an introductory effort proof.
    GenIntro,
    /// Generating a remaining effort proof.
    GenRemaining,
    /// Hashing own replica to evaluate votes.
    Evaluate,
    /// Serving a repair block to a poller.
    ServeRepair,
    /// Applying and re-checking a received repair.
    ApplyRepair,
    /// Anything else (receipt checks, bookkeeping).
    Misc,
}

/// All accounting purposes, for iteration in reports.
pub const ALL_PURPOSES: [Purpose; 12] = [
    Purpose::Consider,
    Purpose::VerifyIntro,
    Purpose::VerifyRemaining,
    Purpose::VerifyVoteProof,
    Purpose::ComputeVote,
    Purpose::GenVoteProof,
    Purpose::GenIntro,
    Purpose::GenRemaining,
    Purpose::Evaluate,
    Purpose::ServeRepair,
    Purpose::ApplyRepair,
    Purpose::Misc,
];

fn purpose_index(p: Purpose) -> usize {
    ALL_PURPOSES
        .iter()
        .position(|&q| q == p)
        .expect("purpose is listed")
}

/// Accumulated CPU effort for one node, by purpose.
#[derive(Clone, Debug, Default)]
pub struct EffortLedger {
    by_purpose: [f64; 12],
}

impl EffortLedger {
    /// A fresh, zeroed ledger.
    pub fn new() -> EffortLedger {
        EffortLedger::default()
    }

    /// Records `cost` CPU time spent for `purpose`.
    pub fn charge(&mut self, purpose: Purpose, cost: Duration) {
        self.by_purpose[purpose_index(purpose)] += cost.as_secs_f64();
    }

    /// Total CPU seconds spent.
    pub fn total_secs(&self) -> f64 {
        self.by_purpose.iter().sum()
    }

    /// CPU seconds spent for one purpose.
    pub fn secs_for(&self, purpose: Purpose) -> f64 {
        self.by_purpose[purpose_index(purpose)]
    }

    /// Adds another ledger into this one.
    pub fn merge(&mut self, other: &EffortLedger) {
        for i in 0..self.by_purpose.len() {
            self.by_purpose[i] += other.by_purpose[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut l = EffortLedger::new();
        l.charge(Purpose::ComputeVote, Duration::from_secs(10));
        l.charge(Purpose::ComputeVote, Duration::from_secs(5));
        l.charge(Purpose::Consider, Duration::from_millis(50));
        assert!((l.secs_for(Purpose::ComputeVote) - 15.0).abs() < 1e-9);
        assert!((l.total_secs() - 15.05).abs() < 1e-9);
    }

    #[test]
    fn merge_sums_by_purpose() {
        let mut a = EffortLedger::new();
        let mut b = EffortLedger::new();
        a.charge(Purpose::GenIntro, Duration::from_secs(1));
        b.charge(Purpose::GenIntro, Duration::from_secs(2));
        b.charge(Purpose::Evaluate, Duration::from_secs(3));
        a.merge(&b);
        assert!((a.secs_for(Purpose::GenIntro) - 3.0).abs() < 1e-9);
        assert!((a.secs_for(Purpose::Evaluate) - 3.0).abs() < 1e-9);
        assert!((a.total_secs() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn all_purposes_distinct() {
        for (i, p) in ALL_PURPOSES.iter().enumerate() {
            assert_eq!(purpose_index(*p), i);
        }
    }

    #[test]
    fn zero_ledger_is_zero() {
        assert_eq!(EffortLedger::new().total_secs(), 0.0);
    }
}

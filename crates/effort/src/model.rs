//! The calibrated cost model (paper §5.1 and §6.3).
//!
//! All constants model the paper's "low-cost PC" deployment unit. The
//! effort-balancing identities are:
//!
//! - the voter's cost to serve a vote is `verify(intro) + verify(remaining)
//!   + hash(AU) + generate(vote proof)`;
//! - the poller's provable effort `intro + remaining` must exceed that by a
//!   safety margin (§5.1: "the requester of a service has more invested in
//!   the exchange than the supplier");
//! - `intro = 20%` of the poller's total per-voter effort (§6.3), sized
//!   together with the in-debt drop probability 0.8 so that ~5 attempted
//!   admissions cost an attacker at least the victim's consideration of the
//!   one admitted invitation;
//! - MBF verification costs a large constant fraction of generation
//!   (memory-bound functions verify by replaying accepted walks).

use lockss_sim::Duration;

/// Calibrated CPU-time costs for every protocol operation.
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    /// Content hash throughput (bytes/second); 30 MB/s models a 2004
    /// low-cost PC's disk+SHA-1 pipeline.
    pub hash_bytes_per_sec: f64,
    /// Fraction of MBF generation cost paid by the verifier.
    pub verify_ratio: f64,
    /// Safety margin by which the poller's provable effort exceeds the
    /// voter's total cost.
    pub effort_margin: f64,
    /// Fraction of total per-voter poller effort carried by the
    /// introductory proof in the `Poll` message (§6.3: 20%).
    pub intro_fraction: f64,
    /// CPU cost of establishing the TLS-over-anonymous-DH session.
    pub session_setup: Duration,
    /// CPU cost of parsing/considering one protocol message.
    pub message_parse: Duration,
    /// Archival unit size in bytes (0.5 GB in the paper).
    pub au_bytes: u64,
    /// Block size in bytes (1 MB here; the paper reports per-block votes
    /// without fixing a size).
    pub block_bytes: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            hash_bytes_per_sec: 30.0e6,
            verify_ratio: 0.5,
            effort_margin: 0.05,
            intro_fraction: 0.2,
            session_setup: Duration::from_millis(50),
            message_parse: Duration::from_millis(1),
            au_bytes: 500_000_000,
            block_bytes: 1_000_000,
        }
    }
}

impl CostModel {
    /// A model scaled to a different AU size.
    pub fn with_au_bytes(mut self, au_bytes: u64) -> CostModel {
        self.au_bytes = au_bytes;
        self
    }

    /// Number of blocks per AU.
    pub fn blocks_per_au(&self) -> u64 {
        self.au_bytes.div_ceil(self.block_bytes)
    }

    /// Time to hash `bytes` of content.
    pub fn hash_cost(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64(bytes as f64 / self.hash_bytes_per_sec)
    }

    /// Time to hash one full AU replica (the bulk of vote generation and of
    /// vote evaluation).
    pub fn au_hash(&self) -> Duration {
        self.hash_cost(self.au_bytes)
    }

    /// Time to hash a single block (the unit of repair re-evaluation).
    pub fn block_hash(&self) -> Duration {
        self.hash_cost(self.block_bytes)
    }

    /// The small provable effort embedded in a `Vote`, covering the cost of
    /// hashing a single block plus verifying this effort (§5.1).
    pub fn vote_proof_gen(&self) -> Duration {
        // Solve g >= margin'd (verify(g) + block_hash):
        // g = (1 + m) * block_hash / (1 - (1 + m) * rho), defensively
        // clamped for extreme parameter choices.
        let m = 1.0 + self.effort_margin;
        let denom = (1.0 - m * self.verify_ratio).max(0.05);
        self.block_hash().mul_f64(m / denom)
    }

    /// Verifier cost for the vote's embedded proof.
    pub fn vote_proof_verify(&self) -> Duration {
        self.vote_proof_gen().mul_f64(self.verify_ratio)
    }

    /// The voter's total cost to *serve* one vote, excluding admission
    /// consideration: verifying the poller's two proofs, hashing the AU, and
    /// generating the vote's own embedded proof.
    pub fn vote_service_cost(&self) -> Duration {
        self.intro_verify() + self.remaining_verify() + self.au_hash() + self.vote_proof_gen()
    }

    /// The poller's total per-voter provable effort `T` (intro + remaining).
    ///
    /// Solves the §5.1 balance: `T ≥ (1+margin) · (verify(T) + hash(AU) +
    /// vote_proof_gen)`, i.e. `T = (1+m)(hash + proof) / (1 - (1+m)·ρ)`.
    pub fn total_provable_effort(&self) -> Duration {
        let m = 1.0 + self.effort_margin;
        let denom = (1.0 - m * self.verify_ratio).max(0.05);
        (self.au_hash() + self.vote_proof_gen()).mul_f64(m / denom)
    }

    /// Generation cost of the introductory effort in `Poll` (§6.3: 20% of
    /// the total).
    pub fn intro_gen(&self) -> Duration {
        self.total_provable_effort().mul_f64(self.intro_fraction)
    }

    /// Verification cost of the introductory effort.
    pub fn intro_verify(&self) -> Duration {
        self.intro_gen().mul_f64(self.verify_ratio)
    }

    /// Generation cost of the remaining effort in `PollProof`.
    pub fn remaining_gen(&self) -> Duration {
        self.total_provable_effort()
            .saturating_sub(self.intro_gen())
    }

    /// Verification cost of the remaining effort.
    pub fn remaining_verify(&self) -> Duration {
        self.remaining_gen().mul_f64(self.verify_ratio)
    }

    /// Poller-side cost of evaluating one poll: hashing its own replica once
    /// (all votes are checked against the same block hashes, computed "in
    /// parallel", §4.3) plus verifying each vote's embedded proof.
    pub fn evaluation_cost(&self, votes: usize) -> Duration {
        self.au_hash() + self.vote_proof_verify() * votes as u64
    }

    /// Cost to serve one repair block: read + hash + frame it.
    pub fn repair_serve_cost(&self) -> Duration {
        self.block_hash() * 2
    }

    /// Cost to apply and re-evaluate one received repair block.
    pub fn repair_apply_cost(&self) -> Duration {
        self.block_hash() * 2
    }

    /// The cost a voter pays merely to *consider* an invitation (session
    /// establishment, schedule check), before any proof verification.
    pub fn consider_cost(&self) -> Duration {
        self.session_setup + self.message_parse
    }

    /// Cost to detect a *garbage* introductory proof: MBF verification
    /// aborts on the first failed walk, so detection is a small fraction of
    /// full verification (§6.3: "even if all poll invitations are bogus,
    /// the total cost of detecting them as bogus is negligible").
    pub fn bogus_intro_detect(&self) -> Duration {
        self.intro_verify().mul_f64(1.0 / 8.0)
    }

    /// Wire size of a vote in bytes: one 20-byte running hash per block plus
    /// framing.
    pub fn vote_bytes(&self) -> u64 {
        self.blocks_per_au() * 20 + 256
    }

    /// Sanity check: the §5.1 effort-balance inequality holds.
    pub fn balance_holds(&self) -> bool {
        let poller = self.intro_gen() + self.remaining_gen();
        let voter = self.vote_service_cost();
        poller >= voter
    }

    /// Evaluates every derived cost once into a flat [`CostTable`].
    ///
    /// The accessors above each re-derive a chain of float identities
    /// (`remaining_gen` alone evaluates `total_provable_effort` twice), and
    /// the protocol consults them on every invite, ack, and vote. The world
    /// snapshots this table at construction — the model is immutable for
    /// the lifetime of a run — so hot paths read a precomputed `Duration`
    /// instead. Values are the accessors' own outputs, bit for bit.
    pub fn table(&self) -> CostTable {
        CostTable {
            au_hash: self.au_hash(),
            block_hash: self.block_hash(),
            intro_gen: self.intro_gen(),
            intro_verify: self.intro_verify(),
            remaining_gen: self.remaining_gen(),
            remaining_verify: self.remaining_verify(),
            vote_proof_gen: self.vote_proof_gen(),
            vote_proof_verify: self.vote_proof_verify(),
            consider: self.consider_cost(),
            bogus_intro_detect: self.bogus_intro_detect(),
            repair_serve: self.repair_serve_cost(),
            repair_apply: self.repair_apply_cost(),
        }
    }
}

/// Flat, precomputed snapshot of every derived [`CostModel`] cost (see
/// [`CostModel::table`]).
#[derive(Clone, Copy, Debug)]
pub struct CostTable {
    /// [`CostModel::au_hash`].
    pub au_hash: Duration,
    /// [`CostModel::block_hash`].
    pub block_hash: Duration,
    /// [`CostModel::intro_gen`].
    pub intro_gen: Duration,
    /// [`CostModel::intro_verify`].
    pub intro_verify: Duration,
    /// [`CostModel::remaining_gen`].
    pub remaining_gen: Duration,
    /// [`CostModel::remaining_verify`].
    pub remaining_verify: Duration,
    /// [`CostModel::vote_proof_gen`].
    pub vote_proof_gen: Duration,
    /// [`CostModel::vote_proof_verify`].
    pub vote_proof_verify: Duration,
    /// [`CostModel::consider_cost`].
    pub consider: Duration,
    /// [`CostModel::bogus_intro_detect`].
    pub bogus_intro_detect: Duration,
    /// [`CostModel::repair_serve_cost`].
    pub repair_serve: Duration,
    /// [`CostModel::repair_apply_cost`].
    pub repair_apply: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_balance_holds() {
        let m = CostModel::default();
        assert!(m.balance_holds());
    }

    #[test]
    fn au_hash_matches_rate() {
        let m = CostModel::default();
        // 5e8 bytes at 3e7 B/s = 16.67 s.
        let d = m.au_hash();
        assert!((d.as_secs_f64() - 16.6667).abs() < 0.01, "{d}");
    }

    #[test]
    fn intro_is_twenty_percent_of_total() {
        let m = CostModel::default();
        let frac = m.intro_gen().as_secs_f64() / m.total_provable_effort().as_secs_f64();
        assert!((frac - 0.2).abs() < 0.01, "{frac}");
    }

    #[test]
    fn intro_plus_remaining_is_total() {
        let m = CostModel::default();
        let sum = m.intro_gen() + m.remaining_gen();
        let total = m.total_provable_effort();
        let diff = sum.as_secs_f64() - total.as_secs_f64();
        assert!(diff.abs() < 0.01, "{diff}");
    }

    #[test]
    fn verification_is_cheaper_than_generation() {
        let m = CostModel::default();
        assert!(m.intro_verify() < m.intro_gen());
        assert!(m.remaining_verify() < m.remaining_gen());
        assert!(m.vote_proof_verify() < m.vote_proof_gen());
    }

    #[test]
    fn balance_holds_across_au_sizes() {
        for au in [1_000_000u64, 50_000_000, 500_000_000, 2_000_000_000] {
            let m = CostModel::default().with_au_bytes(au);
            assert!(m.balance_holds(), "au={au}");
        }
    }

    #[test]
    fn five_dropped_intros_cost_more_than_consideration() {
        // §6.3: by the time an in-debt attacker gets admitted (mean 5
        // tries), he has spent more than the victim's consideration cost.
        let m = CostModel::default();
        let attacker = m.intro_gen().as_secs_f64() * 5.0;
        let victim = (m.consider_cost() + m.intro_verify()).as_secs_f64();
        assert!(attacker > victim);
    }

    #[test]
    fn blocks_per_au_rounds_up() {
        let m = CostModel::default().with_au_bytes(1_500_001);
        assert_eq!(m.blocks_per_au(), 2);
    }

    #[test]
    fn vote_bytes_scales_with_blocks() {
        let m = CostModel::default();
        assert_eq!(m.vote_bytes(), m.blocks_per_au() * 20 + 256);
    }

    #[test]
    fn evaluation_cost_scales_with_votes() {
        let m = CostModel::default();
        let base = m.evaluation_cost(0);
        let ten = m.evaluation_cost(10);
        assert_eq!(base, m.au_hash());
        assert!(ten > base);
    }
}

// Seeded randomized property sweeps (no proptest under the offline
// dependency policy; cases are a pure function of the fixed seed).
#[cfg(test)]
mod proptests {
    use super::*;
    use lockss_sim::SimRng;

    /// Uniform draw from `[lo, hi)`.
    fn uniform(rng: &mut SimRng, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * rng.f64()
    }

    /// The §5.1 effort-balance inequality holds across the whole
    /// reasonable parameter space: the requester always has more
    /// invested than the supplier.
    #[test]
    fn balance_holds_everywhere() {
        let mut rng = SimRng::seed_from_u64(0x6566_6601);
        for _ in 0..256 {
            let au_mb = 1 + rng.below(3_999) as u64;
            let verify_ratio = uniform(&mut rng, 0.05, 0.85);
            let margin = uniform(&mut rng, 0.0, 0.5);
            let intro_fraction = uniform(&mut rng, 0.05, 0.5);
            let m = CostModel {
                verify_ratio,
                effort_margin: margin,
                intro_fraction,
                ..CostModel::default()
            }
            .with_au_bytes(au_mb * 1_000_000);
            assert!(
                m.balance_holds(),
                "balance must hold: au={au_mb}MB rho={verify_ratio} m={margin}"
            );
        }
    }

    /// Effort components are all positive and intro+remaining stays
    /// within rounding of the total.
    #[test]
    fn components_partition_total() {
        let mut rng = SimRng::seed_from_u64(0x6566_6602);
        for _ in 0..256 {
            let verify_ratio = uniform(&mut rng, 0.05, 0.85);
            let intro_fraction = uniform(&mut rng, 0.05, 0.5);
            let m = CostModel {
                verify_ratio,
                intro_fraction,
                ..CostModel::default()
            };
            assert!(!m.intro_gen().is_zero());
            assert!(!m.remaining_gen().is_zero());
            let total = m.total_provable_effort().as_secs_f64();
            let sum = (m.intro_gen() + m.remaining_gen()).as_secs_f64();
            assert!((total - sum).abs() < 0.01, "{total} vs {sum}");
        }
    }

    /// Verification never costs more than generation.
    #[test]
    fn verify_leq_generate() {
        let mut rng = SimRng::seed_from_u64(0x6566_6603);
        for _ in 0..256 {
            let verify_ratio = uniform(&mut rng, 0.05, 0.95);
            let m = CostModel {
                verify_ratio,
                ..CostModel::default()
            };
            assert!(m.intro_verify() <= m.intro_gen());
            assert!(m.remaining_verify() <= m.remaining_gen());
            assert!(m.vote_proof_verify() <= m.vote_proof_gen());
        }
    }
}

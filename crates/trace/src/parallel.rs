//! Deterministic block-parallel decoding.
//!
//! The trace analytics (`trace stats`, `trace diff`, `trace export`)
//! must produce byte-identical output at any thread count — the same
//! discipline the sweep fabric enforces for run summaries. The shape
//! that guarantees it: worker threads *decode* blocks concurrently
//! (claiming indices off an atomic cursor, parking results in
//! per-block slots), while the caller's fold runs strictly
//! sequentially in block order over the decoded chunks. Decoding is
//! the expensive part (LZ + column reassembly); the fold is a cheap
//! single-threaded pass, so the parallel speedup survives and the
//! output ordering is ordering-trivial by construction.
//!
//! Memory stays bounded: blocks are decoded in chunks of `2 × threads`
//! and folded before the next chunk starts. A v1 trace has no blocks,
//! so it degrades to a sequential stream chopped into
//! [`DEFAULT_BLOCK_EVENTS`]-record pseudo-blocks — same fold, no
//! parallelism, identical output.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::format::{Trace, TraceRecord, TraceWire, DEFAULT_BLOCK_EVENTS};
use crate::wire::TraceError;

/// A parked decode result: workers fill slots, the fold drains them in
/// block order.
type DecodedSlot = Mutex<Option<Result<Vec<TraceRecord>, TraceError>>>;

/// Runs `fold` over every record chunk of `trace` in block order,
/// decoding blocks on up to `threads` worker threads. The fold sees
/// chunks exactly in block order regardless of thread count; with one
/// thread (or a v1 trace) no threads are spawned at all.
pub fn for_each_block<F>(trace: &Trace, threads: usize, mut fold: F) -> Result<(), TraceError>
where
    F: FnMut(Vec<TraceRecord>),
{
    if trace.wire() == TraceWire::V1 {
        let mut chunk = Vec::with_capacity(DEFAULT_BLOCK_EVENTS.min(1 << 16));
        for rec in trace.records() {
            chunk.push(rec?);
            if chunk.len() >= DEFAULT_BLOCK_EVENTS {
                fold(std::mem::take(&mut chunk));
            }
        }
        if !chunk.is_empty() {
            fold(chunk);
        }
        return Ok(());
    }

    let n = trace.blocks().len();
    if threads <= 1 || n <= 1 {
        for i in 0..n {
            fold(trace.decode_block(i)?);
        }
        return Ok(());
    }

    let stride = threads * 2;
    let mut start = 0usize;
    while start < n {
        let end = (start + stride).min(n);
        let slots: Vec<DecodedSlot> = (start..end).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(start);
        std::thread::scope(|scope| {
            for _ in 0..threads.min(end - start) {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= end {
                        break;
                    }
                    let decoded = trace.decode_block(i);
                    *slots[i - start].lock().expect("slot lock") = Some(decoded);
                });
            }
        });
        for slot in slots {
            let decoded = slot
                .into_inner()
                .expect("slot lock")
                .expect("every block in the chunk was claimed");
            fold(decoded?);
        }
        start = end;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{Recorder, TraceMeta};
    use crate::legacy::RecorderV1;
    use lockss_core::trace::{TraceEvent, TraceSink};
    use lockss_sim::SimTime;

    fn meta() -> TraceMeta {
        TraceMeta {
            scenario: "baseline".into(),
            scale: "quick".into(),
            seed: 3,
            run_length_ms: 10_000,
        }
    }

    fn emit(sink: &mut dyn TraceSink, n: u64) {
        for i in 0..n {
            sink.record(SimTime(i * 10), i, &TraceEvent::PeerJoin { peer: i as u32 });
        }
    }

    #[test]
    fn fold_order_is_thread_invariant() {
        let recorder = Recorder::with_block_events(&meta(), 16);
        emit(&mut recorder.clone(), 1000);
        let trace = recorder.finish();
        assert!(trace.blocks().len() > 10);

        let collect = |threads: usize| {
            let mut all = Vec::new();
            for_each_block(&trace, threads, |chunk| all.extend(chunk)).unwrap();
            all
        };
        let one = collect(1);
        assert_eq!(one.len(), 1000);
        assert_eq!(one, collect(4));
        assert_eq!(one, collect(9));
        assert_eq!(one, trace.decode_all().unwrap());
    }

    #[test]
    fn v1_traces_fold_sequentially() {
        let recorder = RecorderV1::new(&meta());
        emit(&mut recorder.clone(), 50);
        let trace = recorder.finish();
        let mut all = Vec::new();
        for_each_block(&trace, 8, |chunk| all.extend(chunk)).unwrap();
        assert_eq!(all, trace.decode_all().unwrap());
    }
}

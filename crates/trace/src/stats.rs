//! The trace stats pass: rebuild per-poll and per-phase timelines from a
//! recorded stream.
//!
//! The live metric counters condense a run as it executes and forget the
//! individual polls; the trace keeps everything, so this pass can answer
//! the questions the summaries cannot — how long polls actually ran, how
//! many invitations each needed, which phase concluded which polls, and
//! how many sends the adversary suppressed.

use lockss_core::trace::{AdmissionVerdict, MsgKind, TraceEvent, TraceEventKind};
use lockss_metrics::timeline::{PollTimeline, TimeBuckets, TimelineSummary};
use lockss_sim::{Duration, SimTime};

use crate::format::{Trace, TraceMeta};
use crate::wire::TraceError;

/// Bucket width for activity histograms (diffing aligns on these).
pub(crate) const BUCKET: Duration = Duration::from_days(30);

/// One phase of activity, split by the recorded phase marks.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseSegment {
    /// The phase label (`"(pre)"` before the first mark).
    pub label: String,
    /// When the phase began.
    pub start: SimTime,
    /// Events emitted during the phase.
    pub events: u64,
    /// Polls concluded during the phase.
    pub polls_concluded: u64,
}

/// Everything the stats pass derives from one trace.
#[derive(Clone, Debug)]
pub struct TraceStats {
    /// The trace's metadata.
    pub meta: TraceMeta,
    /// Total recorded events.
    pub events: u64,
    /// Simulated instant of the last event (ZERO when empty).
    pub last_event_at: SimTime,
    /// Events per kind, in kind-code order (zero counts included).
    pub kind_counts: Vec<(TraceEventKind, u64)>,
    /// One timeline per poll, in open order.
    pub polls: Vec<PollTimeline>,
    /// The condensed poll-timeline view.
    pub summary: TimelineSummary,
    /// Admission verdict counts, indexed by verdict code.
    pub admissions: [u64; 5],
    /// Sends suppressed at the source (pipe stoppage).
    pub suppressed_sends: u64,
    /// Activity split by recorded phase marks (empty without marks).
    pub phases: Vec<PhaseSegment>,
    /// 30-day activity histogram over all events.
    pub(crate) buckets: TimeBuckets,
}

/// Derives [`TraceStats`] from a trace.
pub fn trace_stats(trace: &Trace) -> Result<TraceStats, TraceError> {
    let meta = trace.meta()?;
    let mut kind_counts: Vec<(TraceEventKind, u64)> =
        TraceEventKind::ALL.iter().map(|&k| (k, 0)).collect();
    let mut polls: Vec<PollTimeline> = Vec::new();
    let mut poll_index: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    let mut admissions = [0u64; 5];
    let mut suppressed_sends = 0u64;
    let mut phases: Vec<PhaseSegment> = Vec::new();
    let mut buckets = TimeBuckets::new(BUCKET);
    let mut events = 0u64;
    let mut last_event_at = SimTime::ZERO;

    for rec in trace.records() {
        let rec = rec?;
        events += 1;
        last_event_at = rec.at;
        buckets.add(rec.at);
        let kind = rec.event.kind();
        kind_counts[kind.code() as usize - 1].1 += 1;
        // Phase marks open their own segment below; every other event
        // counts into the segment currently open.
        if kind != TraceEventKind::PhaseMark {
            if let Some(seg) = phases.last_mut() {
                seg.events += 1;
            }
        }
        match &rec.event {
            TraceEvent::PollStart { peer, au, poll } => {
                poll_index.insert(*poll, polls.len());
                polls.push(PollTimeline::open(*poll, *peer, *au, rec.at));
            }
            TraceEvent::PollOutcome {
                poll,
                conclusion,
                votes,
                ..
            } => {
                if let Some(&i) = poll_index.get(poll) {
                    polls[i].concluded = Some(rec.at);
                    polls[i].outcome = Some(conclusion.label());
                    polls[i].votes = *votes;
                }
                if let Some(seg) = phases.last_mut() {
                    seg.polls_concluded += 1;
                }
            }
            TraceEvent::MessageSend {
                kind: msg_kind,
                poll,
                suppressed,
                ..
            } => {
                if *suppressed {
                    suppressed_sends += 1;
                }
                if *msg_kind == MsgKind::Poll {
                    if let Some(&i) = poll_index.get(poll) {
                        polls[i].invites_sent += 1;
                    }
                }
            }
            TraceEvent::Admission { verdict, .. } => {
                admissions[verdict.code() as usize] += 1;
            }
            TraceEvent::Repair { poll, .. } => {
                if let Some(&i) = poll_index.get(poll) {
                    polls[i].repairs += 1;
                }
            }
            TraceEvent::PhaseMark { label } => {
                if phases.is_empty() && rec.at > SimTime::ZERO {
                    phases.push(PhaseSegment {
                        label: "(pre)".to_string(),
                        start: SimTime::ZERO,
                        // Everything before this mark, this mark included
                        // in the new segment below.
                        events: events - 1,
                        polls_concluded: polls.iter().filter(|p| p.concluded.is_some()).count()
                            as u64,
                    });
                }
                phases.push(PhaseSegment {
                    label: label.clone(),
                    start: rec.at,
                    events: 1, // the mark itself
                    polls_concluded: 0,
                });
            }
            _ => {}
        }
    }

    let summary = TimelineSummary::from_polls(&polls);
    Ok(TraceStats {
        meta,
        events,
        last_event_at,
        kind_counts,
        polls,
        summary,
        admissions,
        suppressed_sends,
        phases,
        buckets,
    })
}

impl TraceStats {
    /// The count recorded for `kind`.
    pub fn count(&self, kind: TraceEventKind) -> u64 {
        self.kind_counts[kind.code() as usize - 1].1
    }

    /// Admission verdict count.
    pub fn admission_count(&self, verdict: AdmissionVerdict) -> u64 {
        self.admissions[verdict.code() as usize]
    }

    /// Renders the stats as a machine-readable JSON document (strings
    /// escaped by the workspace's own [`lockss_sim::json`] grammar, the
    /// same one that parses it back). Field order is fixed, so the same
    /// trace always renders the same bytes.
    pub fn to_json(&self) -> String {
        use lockss_sim::json::escape;
        use std::fmt::Write as _;
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"format\": \"lockss-trace-stats-v1\",\n");
        let _ = writeln!(
            out,
            "  \"meta\": {{\"scenario\": \"{}\", \"scale\": \"{}\", \"seed\": {}, \
             \"run_length_ms\": {}}},",
            escape(&self.meta.scenario),
            escape(&self.meta.scale),
            self.meta.seed,
            self.meta.run_length_ms
        );
        let _ = writeln!(out, "  \"events\": {},", self.events);
        let _ = writeln!(
            out,
            "  \"last_event_day\": {},",
            self.last_event_at.as_days_f64()
        );
        out.push_str("  \"kinds\": {");
        for (i, (kind, count)) in self.kind_counts.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {count}", kind.label());
        }
        out.push_str("},\n");
        let s = &self.summary;
        let _ = writeln!(
            out,
            "  \"polls\": {{\"started\": {}, \"concluded\": {}, \"wins\": {}, \"losses\": {}, \
             \"inconclusive\": {}, \"inquorate\": {}, \"mean_duration_days\": {}, \
             \"mean_votes\": {}, \"mean_invites\": {}, \"repairs\": {}}},",
            s.polls_started,
            s.polls_concluded,
            s.wins,
            s.losses,
            s.inconclusive,
            s.inquorate,
            s.mean_poll_duration
                .map_or("null".to_string(), |d| d.as_days_f64().to_string()),
            s.mean_votes,
            s.mean_invites,
            s.repairs
        );
        out.push_str("  \"admissions\": {");
        for code in 0..5u8 {
            if code > 0 {
                out.push_str(", ");
            }
            let verdict = AdmissionVerdict::from_code(code).expect("code in range");
            let _ = write!(
                out,
                "\"{}\": {}",
                verdict.label(),
                self.admissions[code as usize]
            );
        }
        out.push_str("},\n");
        let _ = writeln!(out, "  \"suppressed_sends\": {},", self.suppressed_sends);
        out.push_str("  \"phases\": [");
        for (i, seg) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"label\": \"{}\", \"start_day\": {}, \"events\": {}, \
                 \"polls_concluded\": {}}}",
                escape(&seg.label),
                seg.start.as_days_f64(),
                seg.events,
                seg.polls_concluded
            );
        }
        if !self.phases.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

impl std::fmt::Display for TraceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "trace of {}", self.meta)?;
        writeln!(
            f,
            "{} event(s), last at day {:.1}",
            self.events,
            self.last_event_at.as_days_f64()
        )?;
        writeln!(f, "\nevents by kind:")?;
        for (kind, count) in &self.kind_counts {
            if *count > 0 {
                writeln!(f, "  {:<18} {count}", kind.label())?;
            }
        }
        let s = &self.summary;
        writeln!(f, "\npoll timelines:")?;
        writeln!(
            f,
            "  started {}, concluded {} ({} win / {} loss / {} inconclusive / {} inquorate)",
            s.polls_started, s.polls_concluded, s.wins, s.losses, s.inconclusive, s.inquorate
        )?;
        if let Some(d) = s.mean_poll_duration {
            writeln!(
                f,
                "  mean poll duration {:.1}d, mean votes {:.1}, mean invites {:.1}",
                d.as_days_f64(),
                s.mean_votes,
                s.mean_invites
            )?;
        }
        writeln!(f, "  repairs applied {}", s.repairs)?;
        if self.admissions.iter().any(|&c| c > 0) {
            writeln!(f, "\nadmission verdicts:")?;
            for code in 0..5u8 {
                let verdict = AdmissionVerdict::from_code(code).expect("code in range");
                let count = self.admissions[code as usize];
                if count > 0 {
                    writeln!(f, "  {:<20} {count}", verdict.label())?;
                }
            }
        }
        if self.suppressed_sends > 0 {
            writeln!(
                f,
                "\nsuppressed sends (pipe stoppage): {}",
                self.suppressed_sends
            )?;
        }
        if !self.phases.is_empty() {
            writeln!(f, "\nphases:")?;
            for seg in &self.phases {
                writeln!(
                    f,
                    "  from day {:>6.1}  {:<28} {} event(s), {} poll(s) concluded",
                    seg.start.as_days_f64(),
                    seg.label,
                    seg.events,
                    seg.polls_concluded
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{Recorder, TraceMeta};
    use lockss_core::trace::{PollConclusion, TraceSink};

    fn t(days: u64) -> SimTime {
        SimTime::ZERO + Duration::from_days(days)
    }

    fn build_trace() -> Trace {
        let rec = Recorder::new(&TraceMeta {
            scenario: "x".into(),
            scale: "quick".into(),
            seed: 3,
            run_length_ms: Duration::from_days(200).as_millis(),
        });
        let mut sink: Box<dyn TraceSink> = Box::new(rec.clone());
        let mut seq = 0u64;
        let mut emit = |at: SimTime, e: TraceEvent| {
            seq += 1;
            sink.record(at, seq, &e);
        };
        emit(
            t(0),
            TraceEvent::PollStart {
                peer: 0,
                au: 0,
                poll: 0,
            },
        );
        for _ in 0..3 {
            emit(
                t(1),
                TraceEvent::MessageSend {
                    from: 0,
                    to: 2,
                    kind: MsgKind::Poll,
                    au: 0,
                    poll: 0,
                    suppressed: false,
                },
            );
        }
        emit(
            t(2),
            TraceEvent::Admission {
                peer: 2,
                poller: 0,
                verdict: AdmissionVerdict::Admitted,
            },
        );
        emit(
            t(3),
            TraceEvent::Repair {
                peer: 0,
                au: 0,
                poll: 0,
                block: 5,
                intact_after: true,
            },
        );
        emit(
            t(10),
            TraceEvent::PollOutcome {
                peer: 0,
                au: 0,
                poll: 0,
                conclusion: PollConclusion::Win,
                votes: 4,
            },
        );
        emit(
            t(40),
            TraceEvent::PhaseMark {
                label: "admission-flood".into(),
            },
        );
        emit(
            t(50),
            TraceEvent::PollStart {
                peer: 1,
                au: 0,
                poll: 1,
            },
        );
        emit(
            t(60),
            TraceEvent::MessageSend {
                from: 1,
                to: 3,
                kind: MsgKind::Poll,
                au: 0,
                poll: 1,
                suppressed: true,
            },
        );
        emit(
            t(80),
            TraceEvent::PollOutcome {
                peer: 1,
                au: 0,
                poll: 1,
                conclusion: PollConclusion::Inquorate,
                votes: 0,
            },
        );
        rec.finish()
    }

    #[test]
    fn stats_rebuild_poll_timelines() {
        let stats = trace_stats(&build_trace()).unwrap();
        assert_eq!(stats.events, 11);
        assert_eq!(stats.count(TraceEventKind::PollStart), 2);
        assert_eq!(stats.count(TraceEventKind::MessageSend), 4);
        assert_eq!(stats.polls.len(), 2);
        let p0 = &stats.polls[0];
        assert_eq!(p0.invites_sent, 3);
        assert_eq!(p0.repairs, 1);
        assert_eq!(p0.outcome, Some("win"));
        assert_eq!(p0.votes, 4);
        assert_eq!(p0.concluded, Some(t(10)));
        assert_eq!(stats.summary.wins, 1);
        assert_eq!(stats.summary.inquorate, 1);
        assert_eq!(stats.suppressed_sends, 1);
        assert_eq!(stats.admission_count(AdmissionVerdict::Admitted), 1);
    }

    #[test]
    fn stats_split_phases_with_a_pre_segment() {
        let stats = trace_stats(&build_trace()).unwrap();
        assert_eq!(stats.phases.len(), 2);
        assert_eq!(stats.phases[0].label, "(pre)");
        assert_eq!(stats.phases[0].events, 7);
        assert_eq!(stats.phases[0].polls_concluded, 1);
        assert_eq!(stats.phases[1].label, "admission-flood");
        assert_eq!(stats.phases[1].start, t(40));
        assert_eq!(stats.phases[1].events, 4);
        assert_eq!(stats.phases[1].polls_concluded, 1);
    }

    #[test]
    fn json_stats_parse_back_with_the_same_numbers() {
        let stats = trace_stats(&build_trace()).unwrap();
        let text = stats.to_json();
        let v = lockss_sim::json::parse(&text).unwrap();
        let f = v.as_object("stats").unwrap();
        let get = |k: &str| lockss_sim::json::get(f, k).unwrap();
        assert_eq!(
            get("format").as_str("format").unwrap(),
            "lockss-trace-stats-v1"
        );
        assert_eq!(get("events").as_u64("events").unwrap(), 11);
        let kinds = get("kinds").as_object("kinds").unwrap();
        assert_eq!(
            lockss_sim::json::get(kinds, "poll-start")
                .unwrap()
                .as_u64("c")
                .unwrap(),
            2
        );
        let polls = get("polls").as_object("polls").unwrap();
        assert_eq!(
            lockss_sim::json::get(polls, "wins")
                .unwrap()
                .as_u64("w")
                .unwrap(),
            1
        );
        let phases = get("phases").as_array("phases").unwrap();
        assert_eq!(phases.len(), 2);
        let p1 = phases[1].as_object("phase").unwrap();
        assert_eq!(
            lockss_sim::json::get(p1, "label")
                .unwrap()
                .as_str("l")
                .unwrap(),
            "admission-flood"
        );
        // Deterministic: same trace, same bytes.
        assert_eq!(text, trace_stats(&build_trace()).unwrap().to_json());
    }

    #[test]
    fn display_names_the_load_bearing_numbers() {
        let text = trace_stats(&build_trace()).unwrap().to_string();
        assert!(text.contains("poll-start"), "{text}");
        assert!(text.contains("1 win"), "{text}");
        assert!(text.contains("suppressed sends"), "{text}");
        assert!(text.contains("admission-flood"), "{text}");
    }
}

//! The trace stats pass: rebuild per-poll and per-phase timelines from a
//! recorded stream.
//!
//! The live metric counters condense a run as it executes and forget the
//! individual polls; the trace keeps everything, so this pass can answer
//! the questions the summaries cannot — how long polls actually ran, how
//! many invitations each needed, which phase concluded which polls, and
//! how many sends the adversary suppressed.
//!
//! The pass is push-based ([`StatsBuilder`]) so it composes with the
//! block-parallel decoder: blocks decode concurrently, the builder folds
//! them strictly in block order, and the result is byte-identical at any
//! thread count because the fold order never changes.

use lockss_core::trace::{AdmissionVerdict, MsgKind, TraceEvent, TraceEventKind};
use lockss_metrics::timeline::{PollTimeline, TimeBuckets, TimelineSummary};
use lockss_sim::{Duration, SimTime};

use crate::format::{Trace, TraceMeta, TraceRecord, TraceWire};
use crate::parallel::for_each_block;
use crate::wire::TraceError;

/// The version string of the stats JSON document (single and aggregate).
pub const FORMAT: &str = "lockss-trace-stats-v1";

/// Bucket width for activity histograms (diffing aligns on these).
pub(crate) const BUCKET: Duration = Duration::from_days(30);

/// One phase of activity, split by the recorded phase marks.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseSegment {
    /// The phase label (`"(pre)"` before the first mark).
    pub label: String,
    /// When the phase began.
    pub start: SimTime,
    /// Events emitted during the phase.
    pub events: u64,
    /// Polls concluded during the phase.
    pub polls_concluded: u64,
}

/// Everything the stats pass derives from one trace.
#[derive(Clone, Debug)]
pub struct TraceStats {
    /// The trace's metadata.
    pub meta: TraceMeta,
    /// Which wire format the trace was encoded in.
    pub wire: TraceWire,
    /// Total recorded events.
    pub events: u64,
    /// Simulated instant of the last event (ZERO when empty).
    pub last_event_at: SimTime,
    /// Events per kind, in kind-code order (zero counts included).
    pub kind_counts: Vec<(TraceEventKind, u64)>,
    /// One timeline per poll, in open order.
    pub polls: Vec<PollTimeline>,
    /// The condensed poll-timeline view.
    pub summary: TimelineSummary,
    /// Admission verdict counts, indexed by verdict code.
    pub admissions: [u64; 5],
    /// Sends suppressed at the source (pipe stoppage).
    pub suppressed_sends: u64,
    /// Activity split by recorded phase marks (empty without marks).
    pub phases: Vec<PhaseSegment>,
    /// 30-day activity histogram over all events.
    pub(crate) buckets: TimeBuckets,
}

/// Incremental stats accumulator: push records in emission order, then
/// [`StatsBuilder::finish`]. One whole-trace pass and the block-order
/// parallel fold push the exact same sequence, so they produce the
/// exact same stats.
pub struct StatsBuilder {
    meta: TraceMeta,
    wire: TraceWire,
    kind_counts: Vec<(TraceEventKind, u64)>,
    polls: Vec<PollTimeline>,
    poll_index: std::collections::HashMap<u64, usize>,
    admissions: [u64; 5],
    suppressed_sends: u64,
    phases: Vec<PhaseSegment>,
    buckets: TimeBuckets,
    events: u64,
    last_event_at: SimTime,
}

impl StatsBuilder {
    /// An empty accumulator for a trace with the given identity.
    pub fn new(meta: TraceMeta, wire: TraceWire) -> StatsBuilder {
        StatsBuilder {
            meta,
            wire,
            kind_counts: TraceEventKind::ALL.iter().map(|&k| (k, 0)).collect(),
            polls: Vec::new(),
            poll_index: std::collections::HashMap::new(),
            admissions: [0u64; 5],
            suppressed_sends: 0,
            phases: Vec::new(),
            buckets: TimeBuckets::new(BUCKET),
            events: 0,
            last_event_at: SimTime::ZERO,
        }
    }

    /// Folds one record into the accumulator.
    pub fn push(&mut self, rec: &TraceRecord) {
        self.events += 1;
        self.last_event_at = rec.at;
        self.buckets.add(rec.at);
        let kind = rec.event.kind();
        self.kind_counts[kind.code() as usize - 1].1 += 1;
        // Phase marks open their own segment below; every other event
        // counts into the segment currently open.
        if kind != TraceEventKind::PhaseMark {
            if let Some(seg) = self.phases.last_mut() {
                seg.events += 1;
            }
        }
        match &rec.event {
            TraceEvent::PollStart { peer, au, poll } => {
                self.poll_index.insert(*poll, self.polls.len());
                self.polls
                    .push(PollTimeline::open(*poll, *peer, *au, rec.at));
            }
            TraceEvent::PollOutcome {
                poll,
                conclusion,
                votes,
                ..
            } => {
                if let Some(&i) = self.poll_index.get(poll) {
                    self.polls[i].concluded = Some(rec.at);
                    self.polls[i].outcome = Some(conclusion.label());
                    self.polls[i].votes = *votes;
                }
                if let Some(seg) = self.phases.last_mut() {
                    seg.polls_concluded += 1;
                }
            }
            TraceEvent::MessageSend {
                kind: msg_kind,
                poll,
                suppressed,
                ..
            } => {
                if *suppressed {
                    self.suppressed_sends += 1;
                }
                if *msg_kind == MsgKind::Poll {
                    if let Some(&i) = self.poll_index.get(poll) {
                        self.polls[i].invites_sent += 1;
                    }
                }
            }
            TraceEvent::Admission { verdict, .. } => {
                self.admissions[verdict.code() as usize] += 1;
            }
            TraceEvent::Repair { poll, .. } => {
                if let Some(&i) = self.poll_index.get(poll) {
                    self.polls[i].repairs += 1;
                }
            }
            TraceEvent::PhaseMark { label } => {
                if self.phases.is_empty() && rec.at > SimTime::ZERO {
                    self.phases.push(PhaseSegment {
                        label: "(pre)".to_string(),
                        start: SimTime::ZERO,
                        // Everything before this mark, this mark included
                        // in the new segment below.
                        events: self.events - 1,
                        polls_concluded: self.polls.iter().filter(|p| p.concluded.is_some()).count()
                            as u64,
                    });
                }
                self.phases.push(PhaseSegment {
                    label: label.clone(),
                    start: rec.at,
                    events: 1, // the mark itself
                    polls_concluded: 0,
                });
            }
            _ => {}
        }
    }

    /// Seals the accumulator into [`TraceStats`].
    pub fn finish(self) -> TraceStats {
        let summary = TimelineSummary::from_polls(&self.polls);
        TraceStats {
            meta: self.meta,
            wire: self.wire,
            events: self.events,
            last_event_at: self.last_event_at,
            kind_counts: self.kind_counts,
            polls: self.polls,
            summary,
            admissions: self.admissions,
            suppressed_sends: self.suppressed_sends,
            phases: self.phases,
            buckets: self.buckets,
        }
    }
}

/// Derives [`TraceStats`] from a trace with a single-threaded pass.
pub fn trace_stats(trace: &Trace) -> Result<TraceStats, TraceError> {
    trace_stats_threaded(trace, 1)
}

/// Derives [`TraceStats`] decoding blocks on up to `threads` threads.
/// The result — down to the rendered bytes — is identical at any thread
/// count: decoding parallelizes, the fold stays in block order.
pub fn trace_stats_threaded(trace: &Trace, threads: usize) -> Result<TraceStats, TraceError> {
    let mut builder = StatsBuilder::new(trace.meta()?, trace.wire());
    for_each_block(trace, threads, |chunk| {
        for rec in &chunk {
            builder.push(rec);
        }
    })?;
    Ok(builder.finish())
}

impl TraceStats {
    /// The count recorded for `kind`.
    pub fn count(&self, kind: TraceEventKind) -> u64 {
        self.kind_counts[kind.code() as usize - 1].1
    }

    /// Admission verdict count.
    pub fn admission_count(&self, verdict: AdmissionVerdict) -> u64 {
        self.admissions[verdict.code() as usize]
    }

    /// Renders the stats as a machine-readable JSON document (strings
    /// escaped by the workspace's own [`lockss_sim::json`] grammar, the
    /// same one that parses it back). Field order is fixed, so the same
    /// trace always renders the same bytes.
    pub fn to_json(&self) -> String {
        use lockss_sim::json::escape;
        use std::fmt::Write as _;
        let mut out = String::with_capacity(1024);
        let _ = writeln!(out, "{{\n  \"format\": \"{FORMAT}\",");
        let _ = writeln!(out, "  \"wire\": \"{}\",", self.wire.label());
        let _ = writeln!(
            out,
            "  \"meta\": {{\"scenario\": \"{}\", \"scale\": \"{}\", \"seed\": {}, \
             \"run_length_ms\": {}}},",
            escape(&self.meta.scenario),
            escape(&self.meta.scale),
            self.meta.seed,
            self.meta.run_length_ms
        );
        let _ = writeln!(out, "  \"events\": {},", self.events);
        let _ = writeln!(
            out,
            "  \"last_event_day\": {},",
            self.last_event_at.as_days_f64()
        );
        out.push_str("  \"kinds\": {");
        for (i, (kind, count)) in self.kind_counts.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {count}", kind.label());
        }
        out.push_str("},\n");
        let s = &self.summary;
        let _ = writeln!(
            out,
            "  \"polls\": {{\"started\": {}, \"concluded\": {}, \"wins\": {}, \"losses\": {}, \
             \"inconclusive\": {}, \"inquorate\": {}, \"mean_duration_days\": {}, \
             \"mean_votes\": {}, \"mean_invites\": {}, \"repairs\": {}}},",
            s.polls_started,
            s.polls_concluded,
            s.wins,
            s.losses,
            s.inconclusive,
            s.inquorate,
            s.mean_poll_duration
                .map_or("null".to_string(), |d| d.as_days_f64().to_string()),
            s.mean_votes,
            s.mean_invites,
            s.repairs
        );
        out.push_str("  \"admissions\": {");
        for code in 0..5u8 {
            if code > 0 {
                out.push_str(", ");
            }
            let verdict = AdmissionVerdict::from_code(code).expect("code in range");
            let _ = write!(
                out,
                "\"{}\": {}",
                verdict.label(),
                self.admissions[code as usize]
            );
        }
        out.push_str("},\n");
        let _ = writeln!(out, "  \"suppressed_sends\": {},", self.suppressed_sends);
        out.push_str("  \"phases\": [");
        for (i, seg) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"label\": \"{}\", \"start_day\": {}, \"events\": {}, \
                 \"polls_concluded\": {}}}",
                escape(&seg.label),
                seg.start.as_days_f64(),
                seg.events,
                seg.polls_concluded
            );
        }
        if !self.phases.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

impl std::fmt::Display for TraceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "trace of {} [{}]", self.meta, self.wire.label())?;
        writeln!(
            f,
            "{} event(s), last at day {:.1}",
            self.events,
            self.last_event_at.as_days_f64()
        )?;
        writeln!(f, "\nevents by kind:")?;
        for (kind, count) in &self.kind_counts {
            if *count > 0 {
                writeln!(f, "  {:<18} {count}", kind.label())?;
            }
        }
        let s = &self.summary;
        writeln!(f, "\npoll timelines:")?;
        writeln!(
            f,
            "  started {}, concluded {} ({} win / {} loss / {} inconclusive / {} inquorate)",
            s.polls_started, s.polls_concluded, s.wins, s.losses, s.inconclusive, s.inquorate
        )?;
        if let Some(d) = s.mean_poll_duration {
            writeln!(
                f,
                "  mean poll duration {:.1}d, mean votes {:.1}, mean invites {:.1}",
                d.as_days_f64(),
                s.mean_votes,
                s.mean_invites
            )?;
        }
        writeln!(f, "  repairs applied {}", s.repairs)?;
        if self.admissions.iter().any(|&c| c > 0) {
            writeln!(f, "\nadmission verdicts:")?;
            for code in 0..5u8 {
                let verdict = AdmissionVerdict::from_code(code).expect("code in range");
                let count = self.admissions[code as usize];
                if count > 0 {
                    writeln!(f, "  {:<20} {count}", verdict.label())?;
                }
            }
        }
        if self.suppressed_sends > 0 {
            writeln!(
                f,
                "\nsuppressed sends (pipe stoppage): {}",
                self.suppressed_sends
            )?;
        }
        if !self.phases.is_empty() {
            writeln!(f, "\nphases:")?;
            for seg in &self.phases {
                writeln!(
                    f,
                    "  from day {:>6.1}  {:<28} {} event(s), {} poll(s) concluded",
                    seg.start.as_days_f64(),
                    seg.label,
                    seg.events,
                    seg.polls_concluded
                )?;
            }
        }
        Ok(())
    }
}

/// Stats for a set of traces (a recorded sweep), one labelled row per
/// trace plus combined totals. Means are intentionally not aggregated —
/// they are per-run quantities; the per-trace rows keep them.
#[derive(Clone, Debug)]
pub struct AggregateStats {
    /// `(label, stats)` per trace, in the order given (the CLI passes
    /// paths in command-line order).
    pub traces: Vec<(String, TraceStats)>,
}

impl AggregateStats {
    /// Wraps per-trace stats for aggregate rendering.
    pub fn new(traces: Vec<(String, TraceStats)>) -> AggregateStats {
        AggregateStats { traces }
    }

    /// Total events across all traces.
    pub fn total_events(&self) -> u64 {
        self.traces.iter().map(|(_, s)| s.events).sum()
    }

    /// Combined per-kind counts, in kind-code order.
    pub fn total_kind_counts(&self) -> Vec<(TraceEventKind, u64)> {
        let mut totals: Vec<(TraceEventKind, u64)> =
            TraceEventKind::ALL.iter().map(|&k| (k, 0)).collect();
        for (_, s) in &self.traces {
            for (i, (_, count)) in s.kind_counts.iter().enumerate() {
                totals[i].1 += count;
            }
        }
        totals
    }

    /// Combined admission verdict counts, indexed by verdict code.
    pub fn total_admissions(&self) -> [u64; 5] {
        let mut totals = [0u64; 5];
        for (_, s) in &self.traces {
            for (i, c) in s.admissions.iter().enumerate() {
                totals[i] += c;
            }
        }
        totals
    }

    /// Combined suppressed-send count.
    pub fn total_suppressed_sends(&self) -> u64 {
        self.traces.iter().map(|(_, s)| s.suppressed_sends).sum()
    }

    /// Renders the aggregate as JSON: the same `lockss-trace-stats-v1`
    /// format with `"aggregate": true`, per-trace rows, and totals.
    /// Deterministic for a fixed input order.
    pub fn to_json(&self) -> String {
        use lockss_sim::json::escape;
        use std::fmt::Write as _;
        let mut out = String::with_capacity(1024);
        let _ = writeln!(out, "{{\n  \"format\": \"{FORMAT}\",");
        out.push_str("  \"aggregate\": true,\n");
        out.push_str("  \"traces\": [");
        for (i, (label, s)) in self.traces.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"path\": \"{}\", \"wire\": \"{}\", \"scenario\": \"{}\", \
                 \"seed\": {}, \"events\": {}, \"polls_started\": {}, \
                 \"polls_concluded\": {}, \"wins\": {}, \"losses\": {}, \
                 \"suppressed_sends\": {}}}",
                escape(label),
                s.wire.label(),
                escape(&s.meta.scenario),
                s.meta.seed,
                s.events,
                s.summary.polls_started,
                s.summary.polls_concluded,
                s.summary.wins,
                s.summary.losses,
                s.suppressed_sends
            );
        }
        if !self.traces.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"totals\": {\n");
        let _ = writeln!(out, "    \"traces\": {},", self.traces.len());
        let _ = writeln!(out, "    \"events\": {},", self.total_events());
        out.push_str("    \"kinds\": {");
        for (i, (kind, count)) in self.total_kind_counts().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {count}", kind.label());
        }
        out.push_str("},\n");
        out.push_str("    \"admissions\": {");
        let admissions = self.total_admissions();
        for code in 0..5u8 {
            if code > 0 {
                out.push_str(", ");
            }
            let verdict = AdmissionVerdict::from_code(code).expect("code in range");
            let _ = write!(
                out,
                "\"{}\": {}",
                verdict.label(),
                admissions[code as usize]
            );
        }
        out.push_str("},\n");
        let _ = writeln!(
            out,
            "    \"suppressed_sends\": {}",
            self.total_suppressed_sends()
        );
        out.push_str("  }\n}\n");
        out
    }
}

impl std::fmt::Display for AggregateStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "aggregate stats over {} trace(s)", self.traces.len())?;
        writeln!(
            f,
            "\n  {:<40} {:>6} {:>12} {:>8} {:>8} {:>6}",
            "trace", "wire", "events", "polls", "wins", "supp"
        )?;
        for (label, s) in &self.traces {
            writeln!(
                f,
                "  {:<40} {:>6} {:>12} {:>8} {:>8} {:>6}",
                label,
                s.wire.label(),
                s.events,
                s.summary.polls_concluded,
                s.summary.wins,
                s.suppressed_sends
            )?;
        }
        writeln!(f, "\ncombined events: {}", self.total_events())?;
        writeln!(f, "\nevents by kind:")?;
        for (kind, count) in self.total_kind_counts() {
            if count > 0 {
                writeln!(f, "  {:<18} {count}", kind.label())?;
            }
        }
        let admissions = self.total_admissions();
        if admissions.iter().any(|&c| c > 0) {
            writeln!(f, "\nadmission verdicts:")?;
            for code in 0..5u8 {
                let verdict = AdmissionVerdict::from_code(code).expect("code in range");
                if admissions[code as usize] > 0 {
                    writeln!(f, "  {:<20} {}", verdict.label(), admissions[code as usize])?;
                }
            }
        }
        let suppressed = self.total_suppressed_sends();
        if suppressed > 0 {
            writeln!(f, "\nsuppressed sends (pipe stoppage): {suppressed}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{Recorder, TraceMeta};
    use lockss_core::trace::{PollConclusion, TraceSink};

    fn t(days: u64) -> SimTime {
        SimTime::ZERO + Duration::from_days(days)
    }

    fn build_trace() -> Trace {
        build_trace_with_budget(crate::format::DEFAULT_BLOCK_EVENTS)
    }

    fn build_trace_with_budget(budget: usize) -> Trace {
        let rec = Recorder::with_block_events(
            &TraceMeta {
                scenario: "x".into(),
                scale: "quick".into(),
                seed: 3,
                run_length_ms: Duration::from_days(200).as_millis(),
            },
            budget,
        );
        let mut sink: Box<dyn TraceSink> = Box::new(rec.clone());
        let mut seq = 0u64;
        let mut emit = |at: SimTime, e: TraceEvent| {
            seq += 1;
            sink.record(at, seq, &e);
        };
        emit(
            t(0),
            TraceEvent::PollStart {
                peer: 0,
                au: 0,
                poll: 0,
            },
        );
        for _ in 0..3 {
            emit(
                t(1),
                TraceEvent::MessageSend {
                    from: 0,
                    to: 2,
                    kind: MsgKind::Poll,
                    au: 0,
                    poll: 0,
                    suppressed: false,
                },
            );
        }
        emit(
            t(2),
            TraceEvent::Admission {
                peer: 2,
                poller: 0,
                verdict: AdmissionVerdict::Admitted,
            },
        );
        emit(
            t(3),
            TraceEvent::Repair {
                peer: 0,
                au: 0,
                poll: 0,
                block: 5,
                intact_after: true,
            },
        );
        emit(
            t(10),
            TraceEvent::PollOutcome {
                peer: 0,
                au: 0,
                poll: 0,
                conclusion: PollConclusion::Win,
                votes: 4,
            },
        );
        emit(
            t(40),
            TraceEvent::PhaseMark {
                label: "admission-flood".into(),
            },
        );
        emit(
            t(50),
            TraceEvent::PollStart {
                peer: 1,
                au: 0,
                poll: 1,
            },
        );
        emit(
            t(60),
            TraceEvent::MessageSend {
                from: 1,
                to: 3,
                kind: MsgKind::Poll,
                au: 0,
                poll: 1,
                suppressed: true,
            },
        );
        emit(
            t(80),
            TraceEvent::PollOutcome {
                peer: 1,
                au: 0,
                poll: 1,
                conclusion: PollConclusion::Inquorate,
                votes: 0,
            },
        );
        rec.finish()
    }

    #[test]
    fn stats_rebuild_poll_timelines() {
        let stats = trace_stats(&build_trace()).unwrap();
        assert_eq!(stats.events, 11);
        assert_eq!(stats.wire, TraceWire::V2);
        assert_eq!(stats.count(TraceEventKind::PollStart), 2);
        assert_eq!(stats.count(TraceEventKind::MessageSend), 4);
        assert_eq!(stats.polls.len(), 2);
        let p0 = &stats.polls[0];
        assert_eq!(p0.invites_sent, 3);
        assert_eq!(p0.repairs, 1);
        assert_eq!(p0.outcome, Some("win"));
        assert_eq!(p0.votes, 4);
        assert_eq!(p0.concluded, Some(t(10)));
        assert_eq!(stats.summary.wins, 1);
        assert_eq!(stats.summary.inquorate, 1);
        assert_eq!(stats.suppressed_sends, 1);
        assert_eq!(stats.admission_count(AdmissionVerdict::Admitted), 1);
    }

    #[test]
    fn stats_split_phases_with_a_pre_segment() {
        let stats = trace_stats(&build_trace()).unwrap();
        assert_eq!(stats.phases.len(), 2);
        assert_eq!(stats.phases[0].label, "(pre)");
        assert_eq!(stats.phases[0].events, 7);
        assert_eq!(stats.phases[0].polls_concluded, 1);
        assert_eq!(stats.phases[1].label, "admission-flood");
        assert_eq!(stats.phases[1].start, t(40));
        assert_eq!(stats.phases[1].events, 4);
        assert_eq!(stats.phases[1].polls_concluded, 1);
    }

    #[test]
    fn threaded_stats_render_identical_bytes_across_thread_counts() {
        // A tiny block budget forces many blocks even from 11 events, so
        // the parallel fold actually crosses block boundaries.
        let trace = build_trace_with_budget(3);
        assert!(trace.blocks().len() >= 3);
        let one = trace_stats_threaded(&trace, 1).unwrap();
        for threads in [2, 4, 7] {
            let many = trace_stats_threaded(&trace, threads).unwrap();
            assert_eq!(one.to_json(), many.to_json(), "threads={threads}");
            assert_eq!(one.to_string(), many.to_string(), "threads={threads}");
        }
        // And the block budget itself never changes the numbers.
        let whole = trace_stats(&build_trace()).unwrap();
        assert_eq!(one.to_json(), whole.to_json());
    }

    #[test]
    fn json_stats_parse_back_with_the_same_numbers() {
        let stats = trace_stats(&build_trace()).unwrap();
        let text = stats.to_json();
        let v = lockss_sim::json::parse(&text).unwrap();
        let f = v.as_object("stats").unwrap();
        let get = |k: &str| lockss_sim::json::get(f, k).unwrap();
        assert_eq!(get("format").as_str("format").unwrap(), FORMAT);
        assert_eq!(get("wire").as_str("wire").unwrap(), "LTRC2");
        assert_eq!(get("events").as_u64("events").unwrap(), 11);
        let kinds = get("kinds").as_object("kinds").unwrap();
        assert_eq!(
            lockss_sim::json::get(kinds, "poll-start")
                .unwrap()
                .as_u64("c")
                .unwrap(),
            2
        );
        let polls = get("polls").as_object("polls").unwrap();
        assert_eq!(
            lockss_sim::json::get(polls, "wins")
                .unwrap()
                .as_u64("w")
                .unwrap(),
            1
        );
        let phases = get("phases").as_array("phases").unwrap();
        assert_eq!(phases.len(), 2);
        let p1 = phases[1].as_object("phase").unwrap();
        assert_eq!(
            lockss_sim::json::get(p1, "label")
                .unwrap()
                .as_str("l")
                .unwrap(),
            "admission-flood"
        );
        // Deterministic: same trace, same bytes.
        assert_eq!(text, trace_stats(&build_trace()).unwrap().to_json());
    }

    #[test]
    fn display_names_the_load_bearing_numbers() {
        let text = trace_stats(&build_trace()).unwrap().to_string();
        assert!(text.contains("poll-start"), "{text}");
        assert!(text.contains("[LTRC2]"), "{text}");
        assert!(text.contains("1 win"), "{text}");
        assert!(text.contains("suppressed sends"), "{text}");
        assert!(text.contains("admission-flood"), "{text}");
    }

    #[test]
    fn aggregate_sums_and_renders_per_trace_rows() {
        let a = trace_stats(&build_trace()).unwrap();
        let b = trace_stats(&build_trace()).unwrap();
        let agg = AggregateStats::new(vec![("a.bin".into(), a), ("b.bin".into(), b)]);
        assert_eq!(agg.total_events(), 22);
        assert_eq!(agg.total_suppressed_sends(), 2);
        assert_eq!(agg.total_kind_counts()[0].1, 4, "poll starts");

        let text = agg.to_string();
        assert!(text.contains("a.bin"), "{text}");
        assert!(text.contains("combined events: 22"), "{text}");

        let json = agg.to_json();
        let v = lockss_sim::json::parse(&json).unwrap();
        let f = v.as_object("agg").unwrap();
        let get = |k: &str| lockss_sim::json::get(f, k).unwrap();
        assert_eq!(get("format").as_str("format").unwrap(), FORMAT);
        assert!(get("aggregate").as_bool("aggregate").unwrap());
        assert_eq!(get("traces").as_array("traces").unwrap().len(), 2);
        let totals = get("totals").as_object("totals").unwrap();
        assert_eq!(
            lockss_sim::json::get(totals, "events")
                .unwrap()
                .as_u64("events")
                .unwrap(),
            22
        );
    }
}

//! Replay verification: re-drive a scenario and check event-for-event
//! equivalence against a recorded trace.
//!
//! Because a run is a pure function of `(scenario, seed)`, a faithful
//! replay must reproduce the recorded stream *exactly* — same events, same
//! simulated instants, same engine ordinals, in the same order. The
//! [`Verifier`] is a [`TraceSink`] that consumes the recorded stream as
//! the replay emits its own; the first mismatch is captured as a
//! [`Divergence`] with full context, and the sink asks the engine to stop
//! so the replay aborts instead of simulating months past the fork.

use std::cell::RefCell;
use std::rc::Rc;

use lockss_core::trace::{TraceEvent, TraceSink};
use lockss_sim::SimTime;

use crate::format::{OwnedTraceReader, Trace, TraceMeta, TraceRecord};
use crate::wire::TraceError;

/// The first point where a replay departed from the recorded trace.
#[derive(Clone, Debug, PartialEq)]
pub struct Divergence {
    /// Zero-based index of the diverging record.
    pub index: u64,
    /// What the recorded trace holds at that index (`None`: the recording
    /// ended but the replay kept emitting).
    pub expected: Option<TraceRecord>,
    /// What the replay emitted (`None`: the replay ended but the recording
    /// holds more events).
    pub actual: Option<TraceRecord>,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "first divergence at record #{}:", self.index)?;
        match (&self.expected, &self.actual) {
            (Some(e), Some(a)) => {
                writeln!(f, "  recorded: {e}")?;
                writeln!(f, "  replayed: {a}")?;
                if e.event.kind() != a.event.kind() {
                    write!(
                        f,
                        "  delta: event kind forked ({} vs {})",
                        e.event.kind(),
                        a.event.kind()
                    )
                } else if e.at != a.at {
                    write!(
                        f,
                        "  delta: same kind, time forked ({:.4}d vs {:.4}d)",
                        e.at.as_days_f64(),
                        a.at.as_days_f64()
                    )
                } else {
                    write!(f, "  delta: same kind and time, payload differs")
                }
            }
            (Some(e), None) => write!(
                f,
                "  recorded: {e}\n  replayed: <run ended before this record>"
            ),
            (None, Some(a)) => {
                write!(f, "  recorded: <end of trace>\n  replayed: {a}")
            }
            (None, None) => write!(f, "  (no detail)"),
        }
    }
}

/// The result of verifying a replay against a recorded trace.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplayReport {
    /// The recorded trace's metadata.
    pub meta: TraceMeta,
    /// Events that matched exactly before the stream ended or forked.
    pub events_matched: u64,
    /// Recorded events never reached by the replay (0 on a clean match;
    /// only meaningful when the divergence is an early run end).
    pub events_unreached: u64,
    /// The first divergence, if any.
    pub divergence: Option<Divergence>,
}

impl ReplayReport {
    /// True when the replay reproduced the recording event-for-event.
    pub fn is_equivalent(&self) -> bool {
        self.divergence.is_none()
    }
}

impl std::fmt::Display for ReplayReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.divergence {
            None => write!(
                f,
                "replay equivalent: {} event(s) matched, zero divergence",
                self.events_matched
            ),
            Some(d) => {
                writeln!(
                    f,
                    "replay DIVERGED after {} matching event(s)",
                    self.events_matched
                )?;
                write!(f, "{d}")?;
                if self.events_unreached > 0 {
                    write!(
                        f,
                        "\n  ({} recorded event(s) unreached)",
                        self.events_unreached
                    )
                } else {
                    Ok(())
                }
            }
        }
    }
}

struct VerifierInner {
    reader: OwnedTraceReader,
    matched: u64,
    divergence: Option<Divergence>,
    /// A record failed to decode mid-stream (surfaced by `finish`).
    error: Option<TraceError>,
}

/// A [`TraceSink`] that checks a replay against a recorded trace.
///
/// Like [`crate::Recorder`], a shared handle: install one clone as the
/// world's sink, then call [`Verifier::finish`] on the other after the
/// run. Comparison streams record-by-record through an
/// [`OwnedTraceReader`], so memory stays O(1) even for multi-million-event
/// default-scale traces.
#[derive(Clone)]
pub struct Verifier {
    inner: Rc<RefCell<VerifierInner>>,
}

impl Verifier {
    /// Prepares to verify against the recorded trace.
    pub fn new(trace: &Trace) -> Verifier {
        Verifier {
            inner: Rc::new(RefCell::new(VerifierInner {
                reader: OwnedTraceReader::new(trace.clone()),
                matched: 0,
                divergence: None,
                error: None,
            })),
        }
    }

    /// Seals verification: any recorded events the replay never reached
    /// become a divergence (unless one was already found). Errs only if a
    /// record failed to decode (corruption past the hash check — a format
    /// bug, not a divergence).
    ///
    /// `meta` is echoed into the report (callers hold it from the trace).
    pub fn finish(self, meta: TraceMeta) -> Result<ReplayReport, TraceError> {
        let mut inner = self.inner.borrow_mut();
        if let Some(e) = inner.error.take() {
            return Err(e);
        }
        let matched = inner.matched;
        let mut divergence = inner.divergence.clone();
        if divergence.is_none() {
            if let Some(expected) = inner.reader.next_record()? {
                divergence = Some(Divergence {
                    index: matched,
                    expected: Some(expected),
                    actual: None,
                });
            }
        }
        Ok(ReplayReport {
            meta,
            events_matched: matched,
            events_unreached: inner.reader.total() - matched,
            divergence,
        })
    }
}

impl TraceSink for Verifier {
    fn record(&mut self, at: SimTime, seq: u64, event: &TraceEvent) {
        let mut inner = self.inner.borrow_mut();
        if inner.divergence.is_some() || inner.error.is_some() {
            return; // already forked; the engine is being stopped
        }
        let actual = TraceRecord {
            at,
            seq,
            event: event.clone(),
        };
        let index = inner.matched;
        match inner.reader.next_record() {
            Err(e) => inner.error = Some(e),
            Ok(Some(expected)) if expected == actual => inner.matched += 1,
            Ok(expected) => {
                inner.divergence = Some(Divergence {
                    index,
                    expected,
                    actual: Some(actual),
                });
            }
        }
    }

    fn wants_stop(&self) -> bool {
        let inner = self.inner.borrow();
        inner.divergence.is_some() || inner.error.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::Recorder;
    use lockss_sim::Duration;

    fn meta() -> TraceMeta {
        TraceMeta {
            scenario: "baseline".into(),
            scale: "quick".into(),
            seed: 1,
            run_length_ms: Duration::from_days(10).as_millis(),
        }
    }

    fn record(events: &[(u64, u64, TraceEvent)]) -> Trace {
        let rec = Recorder::new(&meta());
        let mut sink: Box<dyn TraceSink> = Box::new(rec.clone());
        for (ms, seq, e) in events {
            sink.record(SimTime(*ms), *seq, e);
        }
        rec.finish()
    }

    fn ev(poll: u64) -> TraceEvent {
        TraceEvent::PollStart {
            peer: 0,
            au: 0,
            poll,
        }
    }

    #[test]
    fn identical_stream_is_equivalent() {
        let trace = record(&[(5, 1, ev(0)), (9, 2, ev(1))]);
        let v = Verifier::new(&trace);
        let mut sink: Box<dyn TraceSink> = Box::new(v.clone());
        sink.record(SimTime(5), 1, &ev(0));
        sink.record(SimTime(9), 2, &ev(1));
        assert!(!sink.wants_stop());
        let report = v.finish(meta()).unwrap();
        assert!(report.is_equivalent());
        assert_eq!(report.events_matched, 2);
        assert!(report.to_string().contains("zero divergence"));
    }

    #[test]
    fn payload_fork_is_reported_with_context() {
        let trace = record(&[(5, 1, ev(0)), (9, 2, ev(1))]);
        let v = Verifier::new(&trace);
        let mut sink: Box<dyn TraceSink> = Box::new(v.clone());
        sink.record(SimTime(5), 1, &ev(0));
        sink.record(SimTime(9), 2, &ev(42)); // forked payload
        assert!(sink.wants_stop(), "must ask the engine to stop");
        let report = v.finish(meta()).unwrap();
        assert!(!report.is_equivalent());
        let d = report.divergence.as_ref().unwrap();
        assert_eq!(d.index, 1);
        assert_eq!(report.events_matched, 1);
        let text = report.to_string();
        assert!(text.contains("poll42"), "{text}");
        assert!(text.contains("payload differs"), "{text}");
    }

    #[test]
    fn extra_replay_events_diverge() {
        let trace = record(&[(5, 1, ev(0))]);
        let v = Verifier::new(&trace);
        let mut sink: Box<dyn TraceSink> = Box::new(v.clone());
        sink.record(SimTime(5), 1, &ev(0));
        sink.record(SimTime(6), 2, &ev(1));
        let report = v.finish(meta()).unwrap();
        let d = report.divergence.unwrap();
        assert!(d.expected.is_none());
        assert!(d.actual.is_some());
    }

    #[test]
    fn missing_replay_events_diverge_at_finish() {
        let trace = record(&[(5, 1, ev(0)), (9, 2, ev(1))]);
        let v = Verifier::new(&trace);
        let mut sink: Box<dyn TraceSink> = Box::new(v.clone());
        sink.record(SimTime(5), 1, &ev(0));
        let report = v.finish(meta()).unwrap();
        let d = report.divergence.as_ref().unwrap();
        assert_eq!(d.index, 1);
        assert!(d.actual.is_none());
        assert_eq!(report.events_unreached, 1);
    }

    #[test]
    fn time_fork_names_the_times() {
        let trace = record(&[(5, 1, ev(0))]);
        let v = Verifier::new(&trace);
        let mut sink: Box<dyn TraceSink> = Box::new(v.clone());
        sink.record(SimTime(500_000), 1, &ev(0));
        let report = v.finish(meta()).unwrap();
        assert!(report.to_string().contains("time forked"));
    }
}

//! Trace diffing: align two recorded runs and summarize where their
//! behaviors fork.
//!
//! Two traces of the same scenario at different seeds (or a baseline vs.
//! an attacked run of the same world) share structure but not bytes. The
//! diff reports three views at increasing altitude:
//!
//! 1. the **first fork** — the first record index where the streams
//!    disagree, with both records;
//! 2. **per-kind totals** — which event kinds the runs produced more or
//!    less of;
//! 3. **activity windows** — the 30-day window where the runs' event
//!    activity differs the most, which localizes *when* behavior forked
//!    even after the streams have long stopped aligning record-by-record.
//!
//! When both traces are block-columnar (v2), fork-finding skips the
//! identical prefix without decoding a byte of it: the block encoder is
//! deterministic and canonical, so two blocks with equal index digests
//! hold equal records. Only the first differing block pair (and the
//! tail past it) is decoded and compared record-by-record. The stats
//! passes on both sides run block-parallel; the fold order is fixed, so
//! the rendered diff is byte-identical at any thread count.

use lockss_core::trace::TraceEventKind;
use lockss_metrics::timeline::TimelineSummary;

use crate::format::{Trace, TraceMeta, TraceRecord, TraceWire};
use crate::stats::{trace_stats_threaded, TraceStats};
use crate::wire::TraceError;

/// The first record index where two traces disagree.
#[derive(Clone, Debug, PartialEq)]
pub struct Fork {
    /// Zero-based record index.
    pub index: u64,
    /// Trace A's record there (`None`: A ended first).
    pub a: Option<TraceRecord>,
    /// Trace B's record there (`None`: B ended first).
    pub b: Option<TraceRecord>,
}

/// The condensed comparison of two traces.
#[derive(Clone, Debug)]
pub struct TraceDiff {
    /// Trace A's metadata.
    pub a_meta: TraceMeta,
    /// Trace B's metadata.
    pub b_meta: TraceMeta,
    /// Total events in trace A.
    pub a_events: u64,
    /// Total events in trace B.
    pub b_events: u64,
    /// Where the streams first disagree (`None`: byte-equivalent streams).
    pub first_fork: Option<Fork>,
    /// Per-kind totals `(kind, a count, b count)`, kinds with any activity.
    pub kind_counts: Vec<(TraceEventKind, u64, u64)>,
    /// Poll-timeline summaries of both sides.
    pub a_summary: TimelineSummary,
    /// Trace B's poll-timeline summary.
    pub b_summary: TimelineSummary,
    /// Suppressed sends in A / B.
    pub suppressed_sends: (u64, u64),
    /// The 30-day window with the widest activity gap, as
    /// `(window start day, window end day, a count − b count)`.
    pub widest_activity_gap: Option<(f64, f64, i64)>,
}

impl TraceDiff {
    /// True when the two streams are record-for-record identical.
    pub fn is_identical(&self) -> bool {
        self.first_fork.is_none() && self.a_events == self.b_events
    }
}

/// Compares two traces single-threaded.
pub fn diff_traces(a: &Trace, b: &Trace) -> Result<TraceDiff, TraceError> {
    diff_traces_threaded(a, b, 1)
}

/// Compares two traces, decoding blocks on up to `threads` threads for
/// the stats passes. The result is identical at any thread count.
pub fn diff_traces_threaded(a: &Trace, b: &Trace, threads: usize) -> Result<TraceDiff, TraceError> {
    let first_fork = find_fork(a, b)?;
    let sa = trace_stats_threaded(a, threads)?;
    let sb = trace_stats_threaded(b, threads)?;
    Ok(summarize(sa, sb, first_fork))
}

/// Finds the first differing record. For a pair of v2 traces this
/// first skips every leading block pair whose index digests match —
/// equal digests mean equal bodies mean equal records — and only
/// decodes from the first differing pair on. Mixed wires (or a v1
/// pair) compare from the top.
fn find_fork(a: &Trace, b: &Trace) -> Result<Option<Fork>, TraceError> {
    let (skip, mut index) = if a.wire() == TraceWire::V2 && b.wire() == TraceWire::V2 {
        let (ba, bb) = (a.blocks(), b.blocks());
        let mut i = 0usize;
        let mut base = 0u64;
        while i < ba.len() && i < bb.len() && ba[i].digest == bb[i].digest {
            base += ba[i].n_events;
            i += 1;
        }
        (i, base)
    } else {
        (0, 0)
    };
    let mut ra = a.records_from_block(skip);
    let mut rb = b.records_from_block(skip);
    loop {
        let na = ra.next().transpose()?;
        let nb = rb.next().transpose()?;
        match (na, nb) {
            (None, None) => return Ok(None),
            (a, b) if a == b => index += 1,
            (a, b) => return Ok(Some(Fork { index, a, b })),
        }
    }
}

fn summarize(sa: TraceStats, sb: TraceStats, first_fork: Option<Fork>) -> TraceDiff {
    let kind_counts = TraceEventKind::ALL
        .iter()
        .map(|&k| (k, sa.count(k), sb.count(k)))
        .filter(|(_, ca, cb)| *ca > 0 || *cb > 0)
        .collect();
    let widest_activity_gap = sa.buckets.widest_gap(&sb.buckets).map(|(idx, delta)| {
        let (start, end) = sa.buckets.span(idx);
        (start.as_days_f64(), end.as_days_f64(), delta)
    });
    TraceDiff {
        a_meta: sa.meta,
        b_meta: sb.meta,
        a_events: sa.events,
        b_events: sb.events,
        first_fork,
        kind_counts,
        a_summary: sa.summary,
        b_summary: sb.summary,
        suppressed_sends: (sa.suppressed_sends, sb.suppressed_sends),
        widest_activity_gap,
    }
}

impl std::fmt::Display for TraceDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "trace A: {} ({} events)", self.a_meta, self.a_events)?;
        writeln!(f, "trace B: {} ({} events)", self.b_meta, self.b_events)?;
        match &self.first_fork {
            None => writeln!(f, "\nstreams are identical record-for-record")?,
            Some(fork) => {
                writeln!(f, "\nstreams fork at record #{}:", fork.index)?;
                match &fork.a {
                    Some(r) => writeln!(f, "  A: {r}")?,
                    None => writeln!(f, "  A: <ended>")?,
                }
                match &fork.b {
                    Some(r) => writeln!(f, "  B: {r}")?,
                    None => writeln!(f, "  B: <ended>")?,
                }
            }
        }
        writeln!(f, "\nevents by kind (A / B / Δ):")?;
        for (kind, ca, cb) in &self.kind_counts {
            writeln!(
                f,
                "  {:<18} {ca:>9} {cb:>9} {:>+8}",
                kind.label(),
                *ca as i64 - *cb as i64
            )?;
        }
        let (a, b) = (&self.a_summary, &self.b_summary);
        writeln!(f, "\npoll outcomes (A / B):")?;
        writeln!(
            f,
            "  win {}/{}  loss {}/{}  inconclusive {}/{}  inquorate {}/{}",
            a.wins,
            b.wins,
            a.losses,
            b.losses,
            a.inconclusive,
            b.inconclusive,
            a.inquorate,
            b.inquorate
        )?;
        if let (Some(da), Some(db)) = (a.mean_poll_duration, b.mean_poll_duration) {
            writeln!(
                f,
                "  mean poll duration {:.2}d / {:.2}d, mean votes {:.1} / {:.1}",
                da.as_days_f64(),
                db.as_days_f64(),
                a.mean_votes,
                b.mean_votes
            )?;
        }
        if self.suppressed_sends != (0, 0) {
            writeln!(
                f,
                "  suppressed sends {} / {}",
                self.suppressed_sends.0, self.suppressed_sends.1
            )?;
        }
        if let Some((start, end, delta)) = self.widest_activity_gap {
            writeln!(
                f,
                "\nwidest activity gap: days {start:.0}–{end:.0} ({delta:+} events A−B)"
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{Recorder, TraceMeta};
    use crate::legacy::RecorderV1;
    use lockss_core::trace::{PollConclusion, TraceEvent, TraceSink};
    use lockss_sim::{Duration, SimTime};

    fn t(days: u64) -> SimTime {
        SimTime::ZERO + Duration::from_days(days)
    }

    fn emit_polls(sink: &mut dyn TraceSink, polls: &[(u64, u64, PollConclusion)]) {
        let mut seq = 0;
        for (poll, start_day, conclusion) in polls {
            seq += 1;
            sink.record(
                t(*start_day),
                seq,
                &TraceEvent::PollStart {
                    peer: 0,
                    au: 0,
                    poll: *poll,
                },
            );
            seq += 1;
            sink.record(
                t(start_day + 3),
                seq,
                &TraceEvent::PollOutcome {
                    peer: 0,
                    au: 0,
                    poll: *poll,
                    conclusion: *conclusion,
                    votes: 5,
                },
            );
        }
    }

    fn meta_for(seed: u64) -> TraceMeta {
        TraceMeta {
            scenario: "baseline".into(),
            scale: "quick".into(),
            seed,
            run_length_ms: Duration::from_days(360).as_millis(),
        }
    }

    fn trace_with(polls: &[(u64, u64, PollConclusion)], seed: u64) -> Trace {
        trace_with_budget(polls, seed, crate::format::DEFAULT_BLOCK_EVENTS)
    }

    fn trace_with_budget(polls: &[(u64, u64, PollConclusion)], seed: u64, budget: usize) -> Trace {
        let rec = Recorder::with_block_events(&meta_for(seed), budget);
        emit_polls(&mut rec.clone(), polls);
        rec.finish()
    }

    #[test]
    fn identical_traces_diff_clean() {
        let a = trace_with(&[(0, 1, PollConclusion::Win)], 1);
        let b = trace_with(&[(0, 1, PollConclusion::Win)], 1);
        let d = diff_traces(&a, &b).unwrap();
        assert!(d.is_identical());
        assert!(d.to_string().contains("identical record-for-record"));
    }

    #[test]
    fn forked_traces_report_the_fork_and_the_totals() {
        let a = trace_with(
            &[(0, 1, PollConclusion::Win), (1, 40, PollConclusion::Win)],
            1,
        );
        let b = trace_with(
            &[(0, 1, PollConclusion::Win), (1, 95, PollConclusion::Loss)],
            2,
        );
        let d = diff_traces(&a, &b).unwrap();
        assert!(!d.is_identical());
        let fork = d.first_fork.as_ref().unwrap();
        assert_eq!(fork.index, 2, "first two records match");
        assert_eq!(d.a_summary.wins, 2);
        assert_eq!(d.b_summary.wins, 1);
        assert_eq!(d.b_summary.losses, 1);
        let (start, _end, delta) = d.widest_activity_gap.unwrap();
        // A's second poll lives in days 30-60, B's in days 90-120.
        assert!(start == 30.0 || start == 90.0);
        assert_eq!(delta.abs(), 2);
        let text = d.to_string();
        assert!(text.contains("fork at record #2"), "{text}");
        assert!(text.contains("poll-start"), "{text}");
    }

    #[test]
    fn prefix_trace_forks_at_the_end() {
        let a = trace_with(&[(0, 1, PollConclusion::Win)], 1);
        let b = trace_with(
            &[(0, 1, PollConclusion::Win), (1, 40, PollConclusion::Win)],
            1,
        );
        let d = diff_traces(&a, &b).unwrap();
        let fork = d.first_fork.unwrap();
        assert_eq!(fork.index, 2);
        assert!(fork.a.is_none());
        assert!(fork.b.is_some());
    }

    #[test]
    fn digest_fast_path_matches_the_slow_path() {
        // Many small blocks with a late fork: the fast path skips the
        // aligned identical prefix by digest; mismatched budgets defeat
        // the digest alignment and force the full stream compare. Both
        // must find the same fork.
        let shared: Vec<(u64, u64, PollConclusion)> = (0..40)
            .map(|i| (i, i * 8 + 1, PollConclusion::Win))
            .collect();
        let mut forked = shared.clone();
        forked[35].2 = PollConclusion::Loss;

        let a_aligned = trace_with_budget(&shared, 1, 4);
        let b_aligned = trace_with_budget(&forked, 1, 4);
        assert!(a_aligned.blocks().len() > 10);
        let fast = diff_traces(&a_aligned, &b_aligned).unwrap();

        let b_misaligned = trace_with_budget(&forked, 1, 7);
        let slow = diff_traces(&a_aligned, &b_misaligned).unwrap();

        let fork_fast = fast.first_fork.unwrap();
        let fork_slow = slow.first_fork.unwrap();
        assert_eq!(fork_fast.index, 71, "poll 35's outcome record");
        assert_eq!(fork_fast.index, fork_slow.index);
        assert_eq!(fork_fast.a, fork_slow.a);
        assert_eq!(fork_fast.b, fork_slow.b);
    }

    #[test]
    fn threaded_diff_renders_identical_bytes_across_thread_counts() {
        let shared: Vec<(u64, u64, PollConclusion)> = (0..40)
            .map(|i| (i, i * 8 + 1, PollConclusion::Win))
            .collect();
        let mut forked = shared.clone();
        forked[20].2 = PollConclusion::Inquorate;
        let a = trace_with_budget(&shared, 1, 4);
        let b = trace_with_budget(&forked, 1, 4);
        let one = diff_traces_threaded(&a, &b, 1).unwrap().to_string();
        for threads in [2, 4, 7] {
            let many = diff_traces_threaded(&a, &b, threads).unwrap().to_string();
            assert_eq!(one, many, "threads={threads}");
        }
    }

    #[test]
    fn mixed_wire_diff_compares_records_not_bytes() {
        let polls = [(0, 1, PollConclusion::Win), (1, 40, PollConclusion::Loss)];
        let v2 = trace_with(&polls, 1);
        let v1_rec = RecorderV1::new(&meta_for(1));
        emit_polls(&mut v1_rec.clone(), &polls);
        let v1 = v1_rec.finish();
        assert_ne!(v1.content_hash(), v2.content_hash());
        let d = diff_traces(&v1, &v2).unwrap();
        assert!(d.is_identical(), "same records, different wires");
    }
}

//! Trace diffing: align two recorded runs and summarize where their
//! behaviors fork.
//!
//! Two traces of the same scenario at different seeds (or a baseline vs.
//! an attacked run of the same world) share structure but not bytes. The
//! diff reports three views at increasing altitude:
//!
//! 1. the **first fork** — the first record index where the streams
//!    disagree, with both records;
//! 2. **per-kind totals** — which event kinds the runs produced more or
//!    less of;
//! 3. **activity windows** — the 30-day window where the runs' event
//!    activity differs the most, which localizes *when* behavior forked
//!    even after the streams have long stopped aligning record-by-record.

use lockss_core::trace::TraceEventKind;
use lockss_metrics::timeline::TimelineSummary;

use crate::format::{Trace, TraceMeta, TraceRecord};
use crate::stats::{trace_stats, TraceStats};
use crate::wire::TraceError;

/// The first record index where two traces disagree.
#[derive(Clone, Debug, PartialEq)]
pub struct Fork {
    /// Zero-based record index.
    pub index: u64,
    /// Trace A's record there (`None`: A ended first).
    pub a: Option<TraceRecord>,
    /// Trace B's record there (`None`: B ended first).
    pub b: Option<TraceRecord>,
}

/// The condensed comparison of two traces.
#[derive(Clone, Debug)]
pub struct TraceDiff {
    /// Trace A's metadata.
    pub a_meta: TraceMeta,
    /// Trace B's metadata.
    pub b_meta: TraceMeta,
    /// Total events in trace A.
    pub a_events: u64,
    /// Total events in trace B.
    pub b_events: u64,
    /// Where the streams first disagree (`None`: byte-equivalent streams).
    pub first_fork: Option<Fork>,
    /// Per-kind totals `(kind, a count, b count)`, kinds with any activity.
    pub kind_counts: Vec<(TraceEventKind, u64, u64)>,
    /// Poll-timeline summaries of both sides.
    pub a_summary: TimelineSummary,
    /// Trace B's poll-timeline summary.
    pub b_summary: TimelineSummary,
    /// Suppressed sends in A / B.
    pub suppressed_sends: (u64, u64),
    /// The 30-day window with the widest activity gap, as
    /// `(window start day, window end day, a count − b count)`.
    pub widest_activity_gap: Option<(f64, f64, i64)>,
}

impl TraceDiff {
    /// True when the two streams are record-for-record identical.
    pub fn is_identical(&self) -> bool {
        self.first_fork.is_none() && self.a_events == self.b_events
    }
}

/// Compares two traces.
pub fn diff_traces(a: &Trace, b: &Trace) -> Result<TraceDiff, TraceError> {
    let first_fork = find_fork(a, b)?;
    let sa = trace_stats(a)?;
    let sb = trace_stats(b)?;
    Ok(summarize(sa, sb, first_fork))
}

fn find_fork(a: &Trace, b: &Trace) -> Result<Option<Fork>, TraceError> {
    let mut ra = a.records();
    let mut rb = b.records();
    let mut index = 0u64;
    loop {
        let na = ra.next().transpose()?;
        let nb = rb.next().transpose()?;
        match (na, nb) {
            (None, None) => return Ok(None),
            (a, b) if a == b => index += 1,
            (a, b) => return Ok(Some(Fork { index, a, b })),
        }
    }
}

fn summarize(sa: TraceStats, sb: TraceStats, first_fork: Option<Fork>) -> TraceDiff {
    let kind_counts = TraceEventKind::ALL
        .iter()
        .map(|&k| (k, sa.count(k), sb.count(k)))
        .filter(|(_, ca, cb)| *ca > 0 || *cb > 0)
        .collect();
    let widest_activity_gap = sa.buckets.widest_gap(&sb.buckets).map(|(idx, delta)| {
        let (start, end) = sa.buckets.span(idx);
        (start.as_days_f64(), end.as_days_f64(), delta)
    });
    TraceDiff {
        a_meta: sa.meta,
        b_meta: sb.meta,
        a_events: sa.events,
        b_events: sb.events,
        first_fork,
        kind_counts,
        a_summary: sa.summary,
        b_summary: sb.summary,
        suppressed_sends: (sa.suppressed_sends, sb.suppressed_sends),
        widest_activity_gap,
    }
}

impl std::fmt::Display for TraceDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "trace A: {} ({} events)", self.a_meta, self.a_events)?;
        writeln!(f, "trace B: {} ({} events)", self.b_meta, self.b_events)?;
        match &self.first_fork {
            None => writeln!(f, "\nstreams are identical record-for-record")?,
            Some(fork) => {
                writeln!(f, "\nstreams fork at record #{}:", fork.index)?;
                match &fork.a {
                    Some(r) => writeln!(f, "  A: {r}")?,
                    None => writeln!(f, "  A: <ended>")?,
                }
                match &fork.b {
                    Some(r) => writeln!(f, "  B: {r}")?,
                    None => writeln!(f, "  B: <ended>")?,
                }
            }
        }
        writeln!(f, "\nevents by kind (A / B / Δ):")?;
        for (kind, ca, cb) in &self.kind_counts {
            writeln!(
                f,
                "  {:<18} {ca:>9} {cb:>9} {:>+8}",
                kind.label(),
                *ca as i64 - *cb as i64
            )?;
        }
        let (a, b) = (&self.a_summary, &self.b_summary);
        writeln!(f, "\npoll outcomes (A / B):")?;
        writeln!(
            f,
            "  win {}/{}  loss {}/{}  inconclusive {}/{}  inquorate {}/{}",
            a.wins,
            b.wins,
            a.losses,
            b.losses,
            a.inconclusive,
            b.inconclusive,
            a.inquorate,
            b.inquorate
        )?;
        if let (Some(da), Some(db)) = (a.mean_poll_duration, b.mean_poll_duration) {
            writeln!(
                f,
                "  mean poll duration {:.2}d / {:.2}d, mean votes {:.1} / {:.1}",
                da.as_days_f64(),
                db.as_days_f64(),
                a.mean_votes,
                b.mean_votes
            )?;
        }
        if self.suppressed_sends != (0, 0) {
            writeln!(
                f,
                "  suppressed sends {} / {}",
                self.suppressed_sends.0, self.suppressed_sends.1
            )?;
        }
        if let Some((start, end, delta)) = self.widest_activity_gap {
            writeln!(
                f,
                "\nwidest activity gap: days {start:.0}–{end:.0} ({delta:+} events A−B)"
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{Recorder, TraceMeta};
    use lockss_core::trace::{PollConclusion, TraceEvent, TraceSink};
    use lockss_sim::{Duration, SimTime};

    fn t(days: u64) -> SimTime {
        SimTime::ZERO + Duration::from_days(days)
    }

    fn trace_with(polls: &[(u64, u64, PollConclusion)], seed: u64) -> Trace {
        let rec = Recorder::new(&TraceMeta {
            scenario: "baseline".into(),
            scale: "quick".into(),
            seed,
            run_length_ms: Duration::from_days(360).as_millis(),
        });
        let mut sink: Box<dyn TraceSink> = Box::new(rec.clone());
        let mut seq = 0;
        for (poll, start_day, conclusion) in polls {
            seq += 1;
            sink.record(
                t(*start_day),
                seq,
                &TraceEvent::PollStart {
                    peer: 0,
                    au: 0,
                    poll: *poll,
                },
            );
            seq += 1;
            sink.record(
                t(start_day + 3),
                seq,
                &TraceEvent::PollOutcome {
                    peer: 0,
                    au: 0,
                    poll: *poll,
                    conclusion: *conclusion,
                    votes: 5,
                },
            );
        }
        rec.finish()
    }

    #[test]
    fn identical_traces_diff_clean() {
        let a = trace_with(&[(0, 1, PollConclusion::Win)], 1);
        let b = trace_with(&[(0, 1, PollConclusion::Win)], 1);
        let d = diff_traces(&a, &b).unwrap();
        assert!(d.is_identical());
        assert!(d.to_string().contains("identical record-for-record"));
    }

    #[test]
    fn forked_traces_report_the_fork_and_the_totals() {
        let a = trace_with(
            &[(0, 1, PollConclusion::Win), (1, 40, PollConclusion::Win)],
            1,
        );
        let b = trace_with(
            &[(0, 1, PollConclusion::Win), (1, 95, PollConclusion::Loss)],
            2,
        );
        let d = diff_traces(&a, &b).unwrap();
        assert!(!d.is_identical());
        let fork = d.first_fork.as_ref().unwrap();
        assert_eq!(fork.index, 2, "first two records match");
        assert_eq!(d.a_summary.wins, 2);
        assert_eq!(d.b_summary.wins, 1);
        assert_eq!(d.b_summary.losses, 1);
        let (start, _end, delta) = d.widest_activity_gap.unwrap();
        // A's second poll lives in days 30-60, B's in days 90-120.
        assert!(start == 30.0 || start == 90.0);
        assert_eq!(delta.abs(), 2);
        let text = d.to_string();
        assert!(text.contains("fork at record #2"), "{text}");
        assert!(text.contains("poll-start"), "{text}");
    }

    #[test]
    fn prefix_trace_forks_at_the_end() {
        let a = trace_with(&[(0, 1, PollConclusion::Win)], 1);
        let b = trace_with(
            &[(0, 1, PollConclusion::Win), (1, 40, PollConclusion::Win)],
            1,
        );
        let d = diff_traces(&a, &b).unwrap();
        let fork = d.first_fork.unwrap();
        assert_eq!(fork.index, 2);
        assert!(fork.a.is_none());
        assert!(fork.b.is_some());
    }
}

//! The LTRC2 block-columnar codec: block bodies, column framing, and the
//! trailer index.
//!
//! An LTRC2 trace groups events into fixed-budget blocks. Inside each
//! block the record stream is transposed into parallel columns — one
//! byte of kind code per event, delta-coded varint time and engine-
//! ordinal columns, and one column *per payload field* of every event
//! kind present — because same-shaped bytes sitting next to each other
//! is what makes the [`crate::lz`] pass bite: a burst of message-sends
//! for one poll puts thousands of near-identical poll ids, AU ids, enum
//! codes, and flags each in their own column (which LZ collapses to
//! almost nothing) while the genuinely high-entropy peer-id fields pay
//! for only their own bytes. Delta state resets at every block
//! boundary, so any block decodes independently of its neighbours:
//! that independence is what the parallel analytics in
//! [`crate::parallel`] and the seek/skip reader paths are built on.
//!
//! Block body layout (after the per-block framing in the container):
//!
//! ```text
//! varint n_events
//! varint base_at        absolute ms of the first event
//! varint base_seq       engine ordinal of the first event
//! varint kind_bitmap    bit (code-1) set per kind present
//! column kinds          n_events kind-code bytes
//! column time-delta     n_events varints, cumulative from base_at (first 0)
//! column ordinal-delta  n_events varints, cumulative from base_seq (first 0)
//! payload(k)            for each kind k present, ascending code order:
//!   varint n_fields     == the field count of k's payload schema
//!   column field(k,0..) one column per payload field, schema order
//! ```
//!
//! Every column is framed `u8 encoding · varint raw_len · varint
//! stored_len · stored bytes`, where encoding 0 is raw (stored_len ==
//! raw_len), encoding 1 is [`crate::lz`], and encodings 2/3 first
//! re-code the column's varint values as `v0 · zigzag(v[i] - v[i-1])…`
//! (2 stores the delta stream verbatim, 3 LZ-compresses it). The delta
//! re-code is what collapses near-monotone value columns — poll ids,
//! engine-ordinal deltas — that raw LZ barely touches; the encoder
//! tries every applicable encoding and keeps whichever stores fewest
//! bytes, ties to the lowest code, so encoding stays deterministic.
//! The trailer index keeps,
//! per block: file offset, body length, event count, kind bitmap, the
//! block's time range, and a SHA-256 digest of the body — all under the
//! whole-file seal, so per-block integrity rolls up into the one
//! content hash.

use lockss_core::trace::TraceEventKind;
use lockss_crypto::sha256::sha256;
use lockss_sim::SimTime;

use crate::format::TraceRecord;
use crate::lz;
use crate::wire::{
    field_count, field_is_varint, get_event_fields, put_event_fields, put_varint, Cursor,
    TraceError,
};

/// Column encoding byte: bytes stored verbatim.
const ENC_RAW: u8 = 0;
/// Column encoding byte: bytes stored LZ-compressed.
const ENC_LZ: u8 = 1;
/// Column encoding byte: zigzag-delta varint re-code, stored verbatim.
const ENC_DELTA: u8 = 2;
/// Column encoding byte: zigzag-delta varint re-code, LZ-compressed.
const ENC_DELTA_LZ: u8 = 3;

/// One block's entry in the trailer index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockEntry {
    /// File offset of the block's `0x01` marker byte.
    pub offset: u64,
    /// Length of the framed block body in bytes.
    pub body_len: u64,
    /// Number of events in the block.
    pub n_events: u64,
    /// Bit `code - 1` set for every event kind present in the block.
    pub kind_bitmap: u64,
    /// Simulated time of the block's first event, in milliseconds.
    pub first_at_ms: u64,
    /// Simulated time of the block's last event, in milliseconds.
    pub last_at_ms: u64,
    /// SHA-256 digest of the block body.
    pub digest: [u8; 32],
}

/// Re-codes a canonical varint stream as `varint v0 · zigzag varint
/// (v[i] - v[i-1])…` (wrapping subtraction, so the full u64 range is
/// lossless). Returns `None` if `raw` is not a canonical varint stream,
/// in which case the transform must not be used.
fn zigzag_delta(raw: &[u8]) -> Option<Vec<u8>> {
    let mut cur = Cursor::new(raw);
    let mut out = Vec::with_capacity(raw.len());
    let mut prev = 0u64;
    let mut first = true;
    while !cur.at_end() {
        let v = cur.varint().ok()?;
        if first {
            put_varint(&mut out, v);
            first = false;
        } else {
            let d = v.wrapping_sub(prev) as i64;
            put_varint(&mut out, ((d << 1) ^ (d >> 63)) as u64);
        }
        prev = v;
    }
    Some(out)
}

/// Inverts [`zigzag_delta`], rebuilding the original varint stream.
fn undo_zigzag_delta(bytes: &[u8]) -> Result<Vec<u8>, ()> {
    let mut cur = Cursor::new(bytes);
    let mut out = Vec::with_capacity(bytes.len());
    let mut prev = 0u64;
    let mut first = true;
    while !cur.at_end() {
        let z = cur.varint().map_err(|_| ())?;
        let v = if first {
            first = false;
            z
        } else {
            let d = ((z >> 1) as i64) ^ -((z & 1) as i64);
            prev.wrapping_add(d as u64)
        };
        put_varint(&mut out, v);
        prev = v;
    }
    Ok(out)
}

/// Appends one column with the `encoding · raw_len · stored_len · bytes`
/// framing. `delta_ok` marks the column as a canonical varint stream,
/// letting the encoder also try the zigzag-delta re-code; whichever of
/// the four encodings stores fewest bytes wins (ties to the lower
/// encoding code, so the choice is deterministic).
fn put_column_opts(out: &mut Vec<u8>, raw: &[u8], delta_ok: bool) {
    let packed = lz::compress(raw);
    let (mut enc, mut basis_len, mut stored) = if packed.len() < raw.len() {
        (ENC_LZ, raw.len(), packed)
    } else {
        (ENC_RAW, raw.len(), raw.to_vec())
    };
    if delta_ok {
        if let Some(delta) = zigzag_delta(raw) {
            debug_assert_eq!(undo_zigzag_delta(&delta).as_deref(), Ok(raw));
            let dpacked = lz::compress(&delta);
            if dpacked.len() < delta.len() && dpacked.len() < stored.len() {
                (enc, basis_len, stored) = (ENC_DELTA_LZ, delta.len(), dpacked);
            } else if delta.len() < stored.len() {
                (enc, basis_len, stored) = (ENC_DELTA, delta.len(), delta);
            }
        }
    }
    out.push(enc);
    put_varint(out, basis_len as u64);
    put_varint(out, stored.len() as u64);
    out.extend_from_slice(&stored);
}

/// Reads one framed column, attributing any failure to `column` in
/// `block` for the diagnostic.
fn get_column(
    cur: &mut Cursor<'_>,
    block: u64,
    column: &'static str,
) -> Result<Vec<u8>, TraceError> {
    let bad = || TraceError::BadColumn { block, column };
    let enc = cur.u8().map_err(|_| bad())?;
    let raw_len = cur.varint().map_err(|_| bad())? as usize;
    let stored_len = cur.varint().map_err(|_| bad())? as usize;
    let stored = cur.bytes(stored_len).map_err(|_| bad())?;
    match enc {
        ENC_RAW | ENC_DELTA => {
            if stored_len != raw_len {
                return Err(bad());
            }
            if enc == ENC_RAW {
                Ok(stored.to_vec())
            } else {
                undo_zigzag_delta(stored).map_err(|_| bad())
            }
        }
        ENC_LZ => lz::decompress(stored, raw_len).map_err(|_| bad()),
        ENC_DELTA_LZ => {
            let delta = lz::decompress(stored, raw_len).map_err(|_| bad())?;
            undo_zigzag_delta(&delta).map_err(|_| bad())
        }
        _ => Err(bad()),
    }
}

/// Skips one framed column without decompressing it. Used by masked
/// decoding to step over payload columns of unwanted kinds.
fn skip_column(cur: &mut Cursor<'_>, block: u64, column: &'static str) -> Result<(), TraceError> {
    let bad = || TraceError::BadColumn { block, column };
    let enc = cur.u8().map_err(|_| bad())?;
    if enc > ENC_DELTA_LZ {
        return Err(bad());
    }
    cur.varint().map_err(|_| bad())?;
    let stored_len = cur.varint().map_err(|_| bad())? as usize;
    cur.bytes(stored_len).map_err(|_| bad())?;
    Ok(())
}

/// Encodes a run of records (one block's worth) into a block body.
///
/// The records must be in emission order; the encoder transposes them
/// into columns. Deterministic: the same records always produce the
/// same bytes, which both the content hash and the digest-based diff
/// fast path rely on.
pub fn encode_block_body(records: &[TraceRecord]) -> Vec<u8> {
    let mut kinds = Vec::with_capacity(records.len());
    let mut d_at = Vec::with_capacity(records.len());
    let mut d_seq = Vec::with_capacity(records.len());
    let mut payloads: Vec<Vec<Vec<u8>>> = TraceEventKind::ALL
        .iter()
        .map(|k| vec![Vec::new(); field_count(*k)])
        .collect();
    let mut bitmap = 0u64;

    let base_at = records.first().map_or(0, |r| r.at.as_millis());
    let base_seq = records.first().map_or(0, |r| r.seq);
    let mut prev_at = base_at;
    let mut prev_seq = base_seq;
    for record in records {
        let kind = record.event.kind();
        bitmap |= kind.bit();
        kinds.push(kind.code());
        put_varint(&mut d_at, record.at.as_millis() - prev_at);
        put_varint(&mut d_seq, record.seq - prev_seq);
        prev_at = record.at.as_millis();
        prev_seq = record.seq;
        put_event_fields(&mut payloads[kind.code() as usize - 1], &record.event);
    }

    let mut body = Vec::with_capacity(records.len() * 4 + 64);
    put_varint(&mut body, records.len() as u64);
    put_varint(&mut body, base_at);
    put_varint(&mut body, base_seq);
    put_varint(&mut body, bitmap);
    put_column_opts(&mut body, &kinds, true);
    put_column_opts(&mut body, &d_at, true);
    put_column_opts(&mut body, &d_seq, true);
    for kind in TraceEventKind::ALL {
        if bitmap & kind.bit() != 0 {
            let cols = &payloads[kind.code() as usize - 1];
            put_varint(&mut body, cols.len() as u64);
            for (i, col) in cols.iter().enumerate() {
                put_column_opts(&mut body, col, field_is_varint(kind, i));
            }
        }
    }
    body
}

/// Builds the index entry for a block body placed at `offset`.
pub fn block_entry(offset: u64, body: &[u8], records: &[TraceRecord]) -> BlockEntry {
    let mut bitmap = 0u64;
    for record in records {
        bitmap |= record.event.kind().bit();
    }
    BlockEntry {
        offset,
        body_len: body.len() as u64,
        n_events: records.len() as u64,
        kind_bitmap: bitmap,
        first_at_ms: records.first().map_or(0, |r| r.at.as_millis()),
        last_at_ms: records.last().map_or(0, |r| r.at.as_millis()),
        digest: sha256(body),
    }
}

/// Decodes a full block body back into records. `block` is the block's
/// index, used only to attribute errors.
pub fn decode_block_body(body: &[u8], block: u64) -> Result<Vec<TraceRecord>, TraceError> {
    decode_block_body_masked(body, block, u64::MAX)
}

/// Decodes a block body, materialising only events whose kind bit is in
/// `kind_mask`. Payload columns of excluded kinds are skipped without
/// decompression; the structural columns are always read so positions
/// stay exact.
pub fn decode_block_body_masked(
    body: &[u8],
    block: u64,
    kind_mask: u64,
) -> Result<Vec<TraceRecord>, TraceError> {
    let bad = |column: &'static str| TraceError::BadColumn { block, column };
    let mut cur = Cursor::new(body);
    let n = cur.varint().map_err(|_| bad("header"))? as usize;
    let base_at = cur.varint().map_err(|_| bad("header"))?;
    let base_seq = cur.varint().map_err(|_| bad("header"))?;
    let bitmap = cur.varint().map_err(|_| bad("header"))?;

    let kinds = get_column(&mut cur, block, "kinds")?;
    if kinds.len() != n {
        return Err(bad("kinds"));
    }
    let d_at = get_column(&mut cur, block, "time-delta")?;
    let d_seq = get_column(&mut cur, block, "ordinal-delta")?;

    // One column per payload field per kind present, ascending code
    // order, each kind's group prefixed by its field count.
    let mut payloads: Vec<Option<Vec<Vec<u8>>>> =
        (0..TraceEventKind::COUNT).map(|_| None).collect();
    for kind in TraceEventKind::ALL {
        if bitmap & kind.bit() == 0 {
            continue;
        }
        let n_cols = cur.varint().map_err(|_| bad("payload"))? as usize;
        if n_cols != field_count(kind) {
            return Err(bad("payload"));
        }
        if kind_mask & kind.bit() != 0 {
            let cols = (0..n_cols)
                .map(|_| get_column(&mut cur, block, "payload"))
                .collect::<Result<Vec<_>, _>>()?;
            payloads[kind.code() as usize - 1] = Some(cols);
        } else {
            for _ in 0..n_cols {
                skip_column(&mut cur, block, "payload")?;
            }
        }
    }
    if !cur.at_end() {
        return Err(bad("trailing bytes"));
    }

    let mut at_cur = Cursor::new(&d_at);
    let mut seq_cur = Cursor::new(&d_seq);
    let mut payload_curs: Vec<Option<Vec<Cursor<'_>>>> = payloads
        .iter()
        .map(|p| {
            p.as_ref()
                .map(|cols| cols.iter().map(|c| Cursor::new(c)).collect())
        })
        .collect();

    let mut out = Vec::with_capacity(if kind_mask == u64::MAX { n } else { 0 });
    let mut at = base_at;
    let mut seq = base_seq;
    for &code in &kinds {
        let kind = TraceEventKind::from_code(code).ok_or(TraceError::UnknownKind(code))?;
        if bitmap & kind.bit() == 0 {
            return Err(bad("kinds"));
        }
        at += at_cur.varint().map_err(|_| bad("time-delta"))?;
        seq += seq_cur.varint().map_err(|_| bad("ordinal-delta"))?;
        if let Some(pcurs) = payload_curs[code as usize - 1].as_mut() {
            let event = get_event_fields(pcurs, kind)?;
            out.push(TraceRecord {
                at: SimTime(at),
                seq,
                event,
            });
        }
    }
    if !at_cur.at_end() || !seq_cur.at_end() {
        return Err(bad("time-delta"));
    }
    for pcurs in payload_curs.iter().flatten() {
        if pcurs.iter().any(|c| !c.at_end()) {
            return Err(TraceError::BadColumn {
                block,
                column: "payload",
            });
        }
    }
    Ok(out)
}

/// Appends the trailer index for `blocks`.
pub fn put_index(buf: &mut Vec<u8>, blocks: &[BlockEntry]) {
    put_varint(buf, blocks.len() as u64);
    for b in blocks {
        put_varint(buf, b.offset);
        put_varint(buf, b.body_len);
        put_varint(buf, b.n_events);
        put_varint(buf, b.kind_bitmap);
        put_varint(buf, b.first_at_ms);
        put_varint(buf, b.last_at_ms);
        buf.extend_from_slice(&b.digest);
    }
}

/// Parses a trailer index written by [`put_index`].
pub fn parse_index(cur: &mut Cursor<'_>) -> Result<Vec<BlockEntry>, TraceError> {
    let n = cur
        .varint()
        .map_err(|_| TraceError::BadIndex("block count"))?;
    let mut blocks = Vec::with_capacity(n.min(1 << 20) as usize);
    for _ in 0..n {
        let offset = cur.varint().map_err(|_| TraceError::BadIndex("offset"))?;
        let body_len = cur
            .varint()
            .map_err(|_| TraceError::BadIndex("body length"))?;
        let n_events = cur
            .varint()
            .map_err(|_| TraceError::BadIndex("event count"))?;
        let kind_bitmap = cur
            .varint()
            .map_err(|_| TraceError::BadIndex("kind bitmap"))?;
        let first_at_ms = cur
            .varint()
            .map_err(|_| TraceError::BadIndex("time range"))?;
        let last_at_ms = cur
            .varint()
            .map_err(|_| TraceError::BadIndex("time range"))?;
        let raw = cur.bytes(32).map_err(|_| TraceError::BadIndex("digest"))?;
        let mut digest = [0u8; 32];
        digest.copy_from_slice(raw);
        blocks.push(BlockEntry {
            offset,
            body_len,
            n_events,
            kind_bitmap,
            first_at_ms,
            last_at_ms,
            digest,
        });
    }
    Ok(blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::put_event;
    use lockss_core::trace::{MsgKind, TraceEvent};

    fn sample_records() -> Vec<TraceRecord> {
        (0..200u64)
            .map(|i| TraceRecord {
                at: SimTime(1_000 + i * 250),
                seq: 10 + i * 3,
                event: if i % 3 == 0 {
                    TraceEvent::PollStart {
                        peer: 3,
                        au: 1,
                        poll: 7 + i,
                    }
                } else {
                    TraceEvent::MessageSend {
                        from: 3,
                        to: i as u32 % 17,
                        kind: MsgKind::Vote,
                        au: 1,
                        poll: 7 + i,
                        suppressed: i % 5 == 0,
                    }
                },
            })
            .collect()
    }

    #[test]
    fn block_body_roundtrips() {
        let records = sample_records();
        let body = encode_block_body(&records);
        let back = decode_block_body(&body, 0).expect("decodes");
        assert_eq!(back, records);
    }

    #[test]
    fn empty_block_roundtrips() {
        let body = encode_block_body(&[]);
        assert_eq!(decode_block_body(&body, 0).expect("decodes"), Vec::new());
    }

    #[test]
    fn masked_decode_keeps_only_requested_kinds() {
        let records = sample_records();
        let body = encode_block_body(&records);
        let mask = TraceEventKind::PollStart.bit();
        let only_polls = decode_block_body_masked(&body, 0, mask).expect("decodes");
        let expected: Vec<TraceRecord> = records
            .iter()
            .filter(|r| r.event.kind() == TraceEventKind::PollStart)
            .cloned()
            .collect();
        assert_eq!(only_polls, expected);
        assert!(!only_polls.is_empty());
    }

    #[test]
    fn truncated_body_reports_the_column() {
        let records = sample_records();
        let body = encode_block_body(&records);
        let cut = &body[..body.len() / 2];
        match decode_block_body(cut, 4) {
            Err(TraceError::BadColumn { block: 4, .. }) => {}
            other => panic!("expected BadColumn, got {other:?}"),
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let records = sample_records();
        let mut body = encode_block_body(&records);
        body.push(0xAA);
        assert!(matches!(
            decode_block_body(&body, 0),
            Err(TraceError::BadColumn {
                column: "trailing bytes",
                ..
            })
        ));
    }

    #[test]
    fn index_roundtrips() {
        let records = sample_records();
        let body = encode_block_body(&records);
        let entries = vec![
            block_entry(46, &body, &records),
            BlockEntry {
                offset: 9_000,
                body_len: 17,
                n_events: 1,
                kind_bitmap: TraceEventKind::Cure.bit(),
                first_at_ms: 5,
                last_at_ms: 5,
                digest: [7u8; 32],
            },
        ];
        let mut buf = Vec::new();
        put_index(&mut buf, &entries);
        let parsed = parse_index(&mut Cursor::new(&buf)).expect("parses");
        assert_eq!(parsed, entries);
        assert_eq!(parsed[0].n_events, 200);
        assert_eq!(parsed[0].first_at_ms, 1_000);
        assert_eq!(parsed[0].last_at_ms, 1_000 + 199 * 250);
    }

    #[test]
    fn truncated_index_is_diagnosed() {
        let records = sample_records();
        let body = encode_block_body(&records);
        let entries = vec![block_entry(46, &body, &records)];
        let mut buf = Vec::new();
        put_index(&mut buf, &entries);
        let cut = &buf[..buf.len() - 10];
        assert!(matches!(
            parse_index(&mut Cursor::new(cut)),
            Err(TraceError::BadIndex(_))
        ));
    }

    #[test]
    fn columnar_body_beats_flat_encoding_on_repetitive_streams() {
        // The same 200 records encoded flat (v1 style) for comparison.
        let records = sample_records();
        let mut flat = Vec::new();
        let mut prev_at = 0u64;
        let mut prev_seq = 0u64;
        for r in &records {
            flat.push(r.event.kind().code());
            put_varint(&mut flat, r.at.as_millis() - prev_at);
            put_varint(&mut flat, r.seq - prev_seq);
            put_event(&mut flat, &r.event);
            prev_at = r.at.as_millis();
            prev_seq = r.seq;
        }
        let body = encode_block_body(&records);
        assert!(
            body.len() * 2 < flat.len(),
            "columnar {} vs flat {}",
            body.len(),
            flat.len()
        );
    }

    #[test]
    fn zigzag_delta_inverts_exactly() {
        // Monotone, wrapping, and adversarially jumpy value sequences
        // all round-trip through the delta re-code.
        for values in [
            vec![0u64],
            vec![7, 7, 7, 7],
            vec![1, 2, 3, 1000, 5, u64::MAX, 0, u64::MAX / 2],
            (0..500).map(|i| i * 37 % 1013).collect(),
        ] {
            let mut raw = Vec::new();
            for &v in &values {
                put_varint(&mut raw, v);
            }
            let delta = zigzag_delta(&raw).expect("canonical stream");
            assert_eq!(undo_zigzag_delta(&delta).as_deref(), Ok(raw.as_slice()));
        }
        assert_eq!(zigzag_delta(&[]), Some(Vec::new()));
        // A truncated varint is not a canonical stream.
        assert_eq!(zigzag_delta(&[0x80]), None);
    }

    #[test]
    fn monotone_varint_column_picks_a_delta_encoding() {
        // Slowly-climbing 3-byte varints: raw LZ finds no 4-byte match,
        // the delta re-code turns them into near-constant small values.
        let mut raw = Vec::new();
        for i in 0..2000u64 {
            put_varint(&mut raw, 100_000 + i * 3);
        }
        let mut col = Vec::new();
        put_column_opts(&mut col, &raw, true);
        assert!(
            col[0] == ENC_DELTA || col[0] == ENC_DELTA_LZ,
            "encoding {}",
            col[0]
        );
        assert!(
            col.len() < raw.len() / 2,
            "stored {} raw {}",
            col.len(),
            raw.len()
        );
        let mut cur = Cursor::new(&col);
        assert_eq!(get_column(&mut cur, 0, "test").unwrap(), raw);
        // And the same frame skips cleanly.
        let mut cur = Cursor::new(&col);
        skip_column(&mut cur, 0, "test").unwrap();
        assert!(cur.at_end());
    }

    #[test]
    fn delta_encoding_never_applies_to_string_columns() {
        // A length-prefixed string column can hold non-canonical varint
        // byte shapes; the encoder must stick to raw/LZ there.
        use crate::wire::field_is_varint;
        assert!(!field_is_varint(TraceEventKind::AdversaryAction, 1));
        assert!(!field_is_varint(TraceEventKind::PhaseMark, 0));
        assert!(field_is_varint(TraceEventKind::MessageSend, 4));
        let mut col = Vec::new();
        put_column_opts(&mut col, b"\x80\x00not-a-varint-stream", false);
        assert!(col[0] == ENC_RAW || col[0] == ENC_LZ);
    }
}

//! CSV timeline export: bucket a trace's event stream by simulated time
//! for plotting.
//!
//! One row per time bucket — total events, a column per event kind, and
//! the suppressed-send count — with empty buckets written as zero rows
//! so the timeline is dense and plots without gap handling. The export
//! replaces the old idea of a `run --timeline` table: recording is
//! cheap, so the timeline comes from the trace after the fact, at any
//! bucket width, instead of being a one-shot run flag.

use lockss_core::trace::{TraceEvent, TraceEventKind};

use crate::format::Trace;
use crate::parallel::for_each_block;
use crate::wire::TraceError;

const MS_PER_DAY: u64 = 24 * 3600 * 1000;

#[derive(Clone)]
struct Row {
    events: u64,
    kinds: [u64; TraceEventKind::COUNT],
    suppressed: u64,
}

impl Row {
    fn zero() -> Row {
        Row {
            events: 0,
            kinds: [0; TraceEventKind::COUNT],
            suppressed: 0,
        }
    }
}

/// Renders the trace as a CSV timeline with `bucket_days`-wide rows
/// (clamped to at least one day), decoding blocks on up to `threads`
/// threads. Deterministic and thread-invariant: the fold runs in block
/// order no matter how decoding is scheduled.
pub fn export_csv(trace: &Trace, threads: usize, bucket_days: u64) -> Result<String, TraceError> {
    let bucket_days = bucket_days.max(1);
    let bucket_ms = bucket_days * MS_PER_DAY;
    let mut rows: Vec<Row> = Vec::new();
    for_each_block(trace, threads, |chunk| {
        for rec in &chunk {
            let idx = (rec.at.as_millis() / bucket_ms) as usize;
            if rows.len() <= idx {
                rows.resize(idx + 1, Row::zero());
            }
            let row = &mut rows[idx];
            row.events += 1;
            row.kinds[rec.event.kind().code() as usize - 1] += 1;
            if let TraceEvent::MessageSend {
                suppressed: true, ..
            } = rec.event
            {
                row.suppressed += 1;
            }
        }
    })?;

    use std::fmt::Write as _;
    let mut out = String::with_capacity(rows.len() * 64 + 256);
    out.push_str("day_start,day_end,events");
    for kind in TraceEventKind::ALL {
        let _ = write!(out, ",{}", kind.label());
    }
    out.push_str(",suppressed_sends\n");
    for (idx, row) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "{},{},{}",
            idx as u64 * bucket_days,
            (idx as u64 + 1) * bucket_days,
            row.events
        );
        for count in row.kinds {
            let _ = write!(out, ",{count}");
        }
        let _ = writeln!(out, ",{}", row.suppressed);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{Recorder, TraceMeta};
    use lockss_core::trace::{MsgKind, TraceSink};
    use lockss_sim::{Duration, SimTime};

    fn build_trace() -> Trace {
        let rec = Recorder::with_block_events(
            &TraceMeta {
                scenario: "x".into(),
                scale: "quick".into(),
                seed: 1,
                run_length_ms: Duration::from_days(100).as_millis(),
            },
            4,
        );
        let mut sink: Box<dyn TraceSink> = Box::new(rec.clone());
        let day = |d: u64| SimTime(d * MS_PER_DAY);
        // Day 0: a join. Day 2: a suppressed send. Day 35: another join
        // (leaves a zero row for days 10..20 and 20..30 at width 10).
        sink.record(day(0), 1, &TraceEvent::PeerJoin { peer: 1 });
        sink.record(
            day(2),
            2,
            &TraceEvent::MessageSend {
                from: 1,
                to: 2,
                kind: MsgKind::Vote,
                au: 0,
                poll: 0,
                suppressed: true,
            },
        );
        sink.record(day(35), 3, &TraceEvent::PeerJoin { peer: 2 });
        rec.finish()
    }

    #[test]
    fn csv_rows_bucket_and_stay_dense() {
        let trace = build_trace();
        let csv = export_csv(&trace, 1, 10).unwrap();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 4, "header + 4 buckets to day 40");
        assert!(lines[0].starts_with("day_start,day_end,events,poll-start,"));
        assert!(lines[0].ends_with(",suppressed_sends"));
        // Bucket 0 (days 0-10): 2 events, 1 suppressed.
        assert!(lines[1].starts_with("0,10,2,"));
        assert!(lines[1].ends_with(",1"));
        // Days 10-30 are zero rows, not missing rows.
        assert!(lines[2].starts_with("10,20,0,"));
        assert!(lines[3].starts_with("20,30,0,"));
        assert!(lines[4].starts_with("30,40,1,"));
        // Every row has the same column count.
        let cols = lines[0].split(',').count();
        for line in &lines {
            assert_eq!(line.split(',').count(), cols, "{line}");
        }
    }

    #[test]
    fn csv_is_thread_invariant() {
        let trace = build_trace();
        let one = export_csv(&trace, 1, 5).unwrap();
        for threads in [2, 6] {
            assert_eq!(one, export_csv(&trace, threads, 5).unwrap());
        }
    }

    #[test]
    fn zero_width_buckets_clamp_to_one_day() {
        let trace = build_trace();
        assert_eq!(
            export_csv(&trace, 1, 0).unwrap(),
            export_csv(&trace, 1, 1).unwrap()
        );
    }
}

//! Structured event-trace record, replay, diff, and stats.
//!
//! The engine is byte-deterministic per `(scenario, seed)`, which makes a
//! recorded event stream a *complete, checkable* description of a run —
//! the record-and-replay property argued for in O'Callahan et al.,
//! *Lightweight User-Space Record And Replay*. This crate turns the
//! [`lockss_core::trace::TraceSink`] stream into four tools:
//!
//! - **record** ([`Recorder`]): capture the full causal stream into a
//!   compact self-hosted binary format — varint-framed records, delta-coded
//!   timestamps, a SHA-256 content hash in the trailer, no external
//!   dependencies;
//! - **replay** ([`Verifier`]): re-drive the same scenario and verify
//!   event-for-event equivalence against a recorded trace, aborting the run
//!   at the first divergence and reporting it with full context (time,
//!   engine event ordinal, event kind, payload delta);
//! - **diff** ([`diff_traces`]): align two traces — two seeds, or baseline
//!   vs. attacked — and summarize where their behaviors fork;
//! - **stats** ([`trace_stats`]): rebuild per-poll timelines and per-phase
//!   activity the live metric counters cannot see after the fact.
//!
//! The `lockss-sim` CLI exposes all four: `run <name> --record <path>`,
//! `replay <path>`, `trace diff <a> <b>`, `trace stats <path>`.

#![deny(missing_docs)]

pub mod diff;
pub mod format;
pub mod replay;
pub mod stats;
pub mod wire;

pub use diff::{diff_traces, Fork, TraceDiff};
pub use format::{OwnedTraceReader, Recorder, Trace, TraceMeta, TraceReader, TraceRecord};
pub use replay::{Divergence, ReplayReport, Verifier};
pub use stats::{trace_stats, PhaseSegment, TraceStats};
pub use wire::TraceError;

//! Structured event-trace record, replay, diff, stats, and export.
//!
//! The engine is byte-deterministic per `(scenario, seed)`, which makes a
//! recorded event stream a *complete, checkable* description of a run —
//! the record-and-replay property argued for in O'Callahan et al.,
//! *Lightweight User-Space Record And Replay*. This crate turns the
//! [`lockss_core::trace::TraceSink`] stream into five tools:
//!
//! - **record** ([`Recorder`]): capture the full causal stream into the
//!   block-columnar `LTRC2` format — events grouped into fixed-budget
//!   blocks, transposed into per-kind columns, delta-coded and
//!   LZ-compressed, with a seekable block index and a SHA-256 content
//!   hash in the trailer, no external dependencies. The flat `LTRC1`
//!   predecessor stays readable ([`legacy::RecorderV1`] still writes it
//!   for fixtures and benches; [`Trace::to_v2`] migrates);
//! - **replay** ([`Verifier`]): re-drive the same scenario and verify
//!   event-for-event equivalence against a recorded trace, aborting the run
//!   at the first divergence and reporting it with full context (time,
//!   engine event ordinal, event kind, payload delta);
//! - **diff** ([`diff_traces`]): align two traces — two seeds, or baseline
//!   vs. attacked — skipping identical block prefixes by index digest and
//!   summarizing where the behaviors fork;
//! - **stats** ([`trace_stats`]): rebuild per-poll timelines and per-phase
//!   activity the live metric counters cannot see after the fact, decoding
//!   blocks in parallel ([`trace_stats_threaded`]) with byte-identical
//!   output at any thread count;
//! - **export** ([`export_csv`]): bucket the stream into a dense CSV
//!   timeline for plotting.
//!
//! The `lockss-sim` CLI exposes all five: `run <name> --record <path>`,
//! `replay <path>`, `trace diff <a> <b>`, `trace stats <paths...>`,
//! `trace convert <in> <out>`, `trace export <path> --csv <out>`, and
//! `sweep <name> --record <dir>` for whole-campaign recordings.

#![deny(missing_docs)]

pub mod columnar;
pub mod diff;
pub mod export;
pub mod format;
pub mod legacy;
pub mod lz;
pub mod parallel;
pub mod replay;
pub mod stats;
pub mod wire;

pub use columnar::BlockEntry;
pub use diff::{diff_traces, diff_traces_threaded, Fork, TraceDiff};
pub use export::export_csv;
pub use format::{
    OwnedTraceReader, Recorder, Trace, TraceMeta, TraceReader, TraceRecord, TraceWire,
    DEFAULT_BLOCK_EVENTS,
};
pub use legacy::RecorderV1;
pub use parallel::for_each_block;
pub use replay::{Divergence, ReplayReport, Verifier};
pub use stats::{
    trace_stats, trace_stats_threaded, AggregateStats, PhaseSegment, StatsBuilder, TraceStats,
};
pub use wire::TraceError;

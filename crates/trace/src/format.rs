//! The trace container: header, block-columnar records, indexed trailer.
//!
//! Current wire format (`LTRC2`):
//!
//! ```text
//! magic    "LTRC2\n"
//! header   str scenario · str scale · varint seed · varint run_length_ms
//! blocks   repeated: 0x01 · varint body_len · block body (see
//!          [`crate::columnar`] for the column layout inside a body)
//! end      0x00 · block index (offset, body length, event count, kind
//!          bitmap, time range, SHA-256 digest per block)
//! trailer  u64-le index offset · u64-le event count · 32-byte SHA-256
//!          over everything above
//! ```
//!
//! The per-block digests sit inside the sealed region, so block-level
//! integrity rolls up into the one trailing content hash — byte-stable
//! across runs and thread counts for a deterministic `(scenario, seed)`,
//! which is what the golden-trace regression tests pin. The index makes
//! blocks independently addressable: readers seek, skip whole blocks by
//! kind bitmap or time range, and decode blocks in parallel.
//!
//! The flat predecessor format (`LTRC1`, written by
//! [`crate::legacy::RecorderV1`]) remains fully readable: [`Trace`]
//! sniffs the magic and every reader path dispatches on the wire.
//! `trace convert` migrates old files via [`Trace::to_v2`].

use std::cell::RefCell;
use std::path::Path;
use std::rc::Rc;

use lockss_core::trace::{TraceEvent, TraceEventKind, TraceSink};
use lockss_crypto::sha256::sha256;
use lockss_sim::SimTime;

use crate::columnar::{
    block_entry, decode_block_body, decode_block_body_masked, encode_block_body, parse_index,
    put_index, BlockEntry,
};
use crate::wire::{get_event, put_str, put_varint, Cursor, TraceError};

/// The file magic of the flat v1 format.
pub const MAGIC_V1: &[u8; 6] = b"LTRC1\n";

/// The file magic of the block-columnar v2 format.
pub const MAGIC_V2: &[u8; 6] = b"LTRC2\n";

/// The end-of-records marker (block markers and v1 kind codes start at 1).
pub(crate) const END: u8 = 0;

/// The start-of-block marker in a v2 stream.
const BLOCK: u8 = 1;

/// Default events per block: big enough to amortize column framing and
/// feed the compressor, small enough that one decoded block (~65k
/// records) bounds a reader's memory.
pub const DEFAULT_BLOCK_EVENTS: usize = 65_536;

/// Fixed trailer width shared by both wires: 8 bytes of u64-le (index
/// offset in v2, end marker + low count bytes in v1 — see `events()`),
/// then the u64-le event count, then the 32-byte seal.
const COUNT_OFFSET_FROM_END: usize = 8 + 32;

/// Which wire format a trace is encoded in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceWire {
    /// Flat delta-coded records (`LTRC1`).
    V1,
    /// Block-columnar with a trailer index (`LTRC2`).
    V2,
}

impl TraceWire {
    /// The wire's version string, as it appears in the file magic.
    pub fn label(self) -> &'static str {
        match self {
            TraceWire::V1 => "LTRC1",
            TraceWire::V2 => "LTRC2",
        }
    }
}

impl std::fmt::Display for TraceWire {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Identifies the execution a trace captured.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceMeta {
    /// Registered scenario name.
    pub scenario: String,
    /// Experiment scale label (`quick` / `default` / `paper`).
    pub scale: String,
    /// The run's seed.
    pub seed: u64,
    /// Simulated run length in milliseconds.
    pub run_length_ms: u64,
}

impl std::fmt::Display for TraceMeta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scenario '{}' at scale '{}', seed {}, {:.0} simulated days",
            self.scenario,
            self.scale,
            self.seed,
            self.run_length_ms as f64 / (24.0 * 3600.0 * 1000.0)
        )
    }
}

/// One decoded record: the event plus its causal position.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRecord {
    /// The simulated instant of emission.
    pub at: SimTime,
    /// The engine's executed-event ordinal at emission.
    pub seq: u64,
    /// The event.
    pub event: TraceEvent,
}

impl std::fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[day {:.2}, engine event {}] {}",
            self.at.as_days_f64(),
            self.seq,
            self.event
        )
    }
}

struct RecorderInner {
    buf: Vec<u8>,
    pending: Vec<TraceRecord>,
    blocks: Vec<BlockEntry>,
    events: u64,
    block_events: usize,
}

impl RecorderInner {
    fn flush_block(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let body = encode_block_body(&self.pending);
        let offset = self.buf.len() as u64;
        self.buf.push(BLOCK);
        put_varint(&mut self.buf, body.len() as u64);
        self.buf.extend_from_slice(&body);
        self.blocks.push(block_entry(offset, &body, &self.pending));
        self.pending.clear();
    }
}

/// Records a run's event stream into the block-columnar v2 format.
///
/// The recorder is a shared handle (`Clone`): install one clone as the
/// world's sink and keep the other to [`Recorder::finish`] the trace after
/// the run. Events buffer in emission order until the block budget fills,
/// then transpose into one compressed block. Single-threaded by design,
/// like the runs it records.
#[derive(Clone)]
pub struct Recorder {
    inner: Rc<RefCell<RecorderInner>>,
}

impl Recorder {
    /// A recorder with the header already encoded and the default block
    /// budget.
    pub fn new(meta: &TraceMeta) -> Recorder {
        Recorder::with_block_events(meta, DEFAULT_BLOCK_EVENTS)
    }

    /// A recorder flushing a block every `block_events` events (clamped
    /// to at least 1). Small budgets are for tests that want many blocks
    /// from few events; real recordings use [`Recorder::new`].
    pub fn with_block_events(meta: &TraceMeta, block_events: usize) -> Recorder {
        let mut buf = Vec::with_capacity(64 * 1024);
        buf.extend_from_slice(MAGIC_V2);
        put_str(&mut buf, &meta.scenario);
        put_str(&mut buf, &meta.scale);
        put_varint(&mut buf, meta.seed);
        put_varint(&mut buf, meta.run_length_ms);
        Recorder {
            inner: Rc::new(RefCell::new(RecorderInner {
                buf,
                pending: Vec::new(),
                blocks: Vec::new(),
                events: 0,
                block_events: block_events.max(1),
            })),
        }
    }

    /// Events recorded so far.
    pub fn events(&self) -> u64 {
        self.inner.borrow().events
    }

    /// Seals the trace: flushes the last partial block, then appends the
    /// end marker, block index, index offset, event count, and the
    /// content hash.
    pub fn finish(self) -> Trace {
        let mut inner = self.inner.borrow_mut();
        inner.flush_block();
        let events = inner.events;
        let blocks = std::mem::take(&mut inner.blocks);
        let mut bytes = std::mem::take(&mut inner.buf);
        drop(inner);
        let index_offset = bytes.len() as u64;
        bytes.push(END);
        put_index(&mut bytes, &blocks);
        bytes.extend_from_slice(&index_offset.to_le_bytes());
        bytes.extend_from_slice(&events.to_le_bytes());
        let digest = sha256(&bytes);
        bytes.extend_from_slice(&digest);
        Trace {
            bytes,
            wire: TraceWire::V2,
            blocks,
        }
    }
}

impl TraceSink for Recorder {
    fn record(&mut self, at: SimTime, seq: u64, event: &TraceEvent) {
        let mut inner = self.inner.borrow_mut();
        inner.pending.push(TraceRecord {
            at,
            seq,
            event: event.clone(),
        });
        inner.events += 1;
        if inner.pending.len() >= inner.block_events {
            inner.flush_block();
        }
    }
}

/// A sealed, hash-verified trace (either wire).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    bytes: Vec<u8>,
    wire: TraceWire,
    blocks: Vec<BlockEntry>,
}

impl Trace {
    /// Bytes of v1 trailer past the records: end marker + count + hash.
    const TAIL_V1: usize = 1 + 8 + 32;

    /// Bytes of v2 trailer past the index: index offset + count + hash.
    const TAIL_V2: usize = 8 + 8 + 32;

    /// Validates raw bytes (magic, trailer hash, decodable header and —
    /// for v2 — a structurally sound block index) into a trace.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Trace, TraceError> {
        if bytes.len() < MAGIC_V1.len() {
            return Err(TraceError::BadMagic);
        }
        let wire = match &bytes[..MAGIC_V1.len()] {
            m if m == MAGIC_V1 => TraceWire::V1,
            m if m == MAGIC_V2 => TraceWire::V2,
            _ => return Err(TraceError::BadMagic),
        };
        let min_len = MAGIC_V1.len()
            + match wire {
                TraceWire::V1 => Trace::TAIL_V1,
                TraceWire::V2 => Trace::TAIL_V2,
            };
        if bytes.len() < min_len {
            return Err(TraceError::Truncated);
        }
        let body_len = bytes.len() - 32;
        let digest = sha256(&bytes[..body_len]);
        if digest != bytes[body_len..] {
            return Err(TraceError::HashMismatch);
        }
        let blocks = match wire {
            TraceWire::V1 => Vec::new(),
            TraceWire::V2 => Trace::validate_v2(&bytes)?,
        };
        let trace = Trace {
            bytes,
            wire,
            blocks,
        };
        trace.meta()?; // header must decode
        Ok(trace)
    }

    /// Parses and structurally validates a v2 trailer index: every block
    /// frame must sit inside the record region with a matching length,
    /// and the per-block event counts must sum to the trailer count.
    fn validate_v2(bytes: &[u8]) -> Result<Vec<BlockEntry>, TraceError> {
        let tail = bytes.len() - Trace::TAIL_V2;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&bytes[tail..tail + 8]);
        let index_offset = u64::from_le_bytes(raw) as usize;
        if index_offset < MAGIC_V2.len() || index_offset >= tail {
            return Err(TraceError::BadIndex("index offset out of range"));
        }
        if bytes[index_offset] != END {
            return Err(TraceError::BadIndex("missing end marker"));
        }
        let mut cur = Cursor::new(&bytes[index_offset + 1..tail]);
        let blocks = parse_index(&mut cur)?;
        if !cur.at_end() {
            return Err(TraceError::BadIndex("trailing bytes"));
        }
        let mut total = 0u64;
        for (i, b) in blocks.iter().enumerate() {
            let offset = b.offset as usize;
            if offset >= index_offset || bytes[offset] != BLOCK {
                return Err(TraceError::BadIndex("block offset"));
            }
            let mut frame = Cursor::new(&bytes[offset + 1..index_offset]);
            let framed_len = frame
                .varint()
                .map_err(|_| TraceError::BadIndex("block frame"))?;
            if framed_len != b.body_len {
                return Err(TraceError::BadIndex("block frame"));
            }
            let end = offset + 1 + frame.pos() + b.body_len as usize;
            if end > index_offset {
                return Err(TraceError::TruncatedBlock { block: i as u64 });
            }
            total += b.n_events;
        }
        raw.copy_from_slice(&bytes[tail + 8..tail + 16]);
        if total != u64::from_le_bytes(raw) {
            return Err(TraceError::BadIndex("event count"));
        }
        Ok(blocks)
    }

    /// Number of records, read from the trailer in O(1). Both wires keep
    /// the u64-le count at the same distance from the end.
    pub fn events(&self) -> u64 {
        let start = self.bytes.len() - COUNT_OFFSET_FROM_END;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.bytes[start..start + 8]);
        u64::from_le_bytes(raw)
    }

    /// Which wire format the trace is encoded in.
    pub fn wire(&self) -> TraceWire {
        self.wire
    }

    /// The block index (empty for a v1 trace, which has no blocks).
    pub fn blocks(&self) -> &[BlockEntry] {
        &self.blocks
    }

    /// The raw encoded bytes (header + records + trailer).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The trailing SHA-256 content hash, hex-encoded.
    pub fn content_hash(&self) -> String {
        self.bytes[self.bytes.len() - 32..]
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect()
    }

    /// Decodes the header.
    pub fn meta(&self) -> Result<TraceMeta, TraceError> {
        let mut cur = Cursor::new(&self.bytes[MAGIC_V1.len()..self.bytes.len() - 32]);
        Ok(TraceMeta {
            scenario: cur.str()?,
            scale: cur.str()?,
            seed: cur.varint()?,
            run_length_ms: cur.varint()?,
        })
    }

    /// The framed body bytes of block `block`, digest-verified against
    /// the index.
    fn block_body(&self, block: usize) -> Result<&[u8], TraceError> {
        let entry = self
            .blocks
            .get(block)
            .ok_or(TraceError::BadIndex("block out of range"))?;
        let block_u64 = block as u64;
        let offset = entry.offset as usize;
        let mut cur = Cursor::new(&self.bytes[offset..]);
        let marker = cur
            .u8()
            .map_err(|_| TraceError::TruncatedBlock { block: block_u64 })?;
        if marker != BLOCK {
            return Err(TraceError::BadIndex("block offset"));
        }
        let len =
            cur.varint()
                .map_err(|_| TraceError::TruncatedBlock { block: block_u64 })? as usize;
        let body = cur
            .bytes(len)
            .map_err(|_| TraceError::TruncatedBlock { block: block_u64 })?;
        if sha256(body) != entry.digest {
            return Err(TraceError::BadBlockChecksum { block: block_u64 });
        }
        Ok(body)
    }

    /// Decodes one block into records (v2 only; a v1 trace has no
    /// blocks). The block body is digest-verified first, so a corrupt
    /// block under a re-sealed file still diagnoses as
    /// [`TraceError::BadBlockChecksum`].
    pub fn decode_block(&self, block: usize) -> Result<Vec<TraceRecord>, TraceError> {
        decode_block_body(self.block_body(block)?, block as u64)
    }

    /// Decodes one block keeping only events whose kind bit is in
    /// `kind_mask`; payload columns of excluded kinds are skipped
    /// without decompression.
    pub fn decode_block_masked(
        &self,
        block: usize,
        kind_mask: u64,
    ) -> Result<Vec<TraceRecord>, TraceError> {
        decode_block_body_masked(self.block_body(block)?, block as u64, kind_mask)
    }

    /// An iterator over the decoded records (either wire).
    pub fn records(&self) -> TraceReader<'_> {
        TraceReader::new(self, 0)
    }

    /// An iterator starting at the first record of block `from_block`
    /// (v2 only; callers index into [`Trace::blocks`]). The diff fast
    /// path uses this to resume a stream after skipping an identical
    /// digest-verified prefix.
    pub fn records_from_block(&self, from_block: usize) -> TraceReader<'_> {
        debug_assert!(self.wire == TraceWire::V2 || from_block == 0);
        TraceReader::new(self, from_block)
    }

    /// Decodes every record into memory.
    pub fn decode_all(&self) -> Result<Vec<TraceRecord>, TraceError> {
        self.records().collect()
    }

    /// Re-encodes the trace in the current v2 wire — migrating a v1
    /// file, or re-blocking/re-coding a v2 one written by an older
    /// encoder. The records, metadata, and O(1) event count are
    /// preserved; the content hash changes if the bytes do.
    pub fn to_v2(&self) -> Result<Trace, TraceError> {
        let meta = self.meta()?;
        let mut recorder = Recorder::new(&meta);
        for rec in self.records() {
            let r = rec?;
            recorder.record(r.at, r.seq, &r.event);
        }
        Ok(recorder.finish())
    }

    /// Writes the trace to `path`, creating parent directories on demand.
    pub fn write_to(&self, path: &Path) -> Result<(), TraceError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, &self.bytes)?;
        Ok(())
    }

    /// Reads and validates a trace file.
    pub fn read_from(path: &Path) -> Result<Trace, TraceError> {
        Trace::from_bytes(std::fs::read(path)?)
    }
}

/// Decodes one flat v1 record (or the end marker) at the cursor,
/// delta-accumulating against `prev_at`/`prev_seq`.
pub(crate) fn decode_next_v1(
    cur: &mut Cursor<'_>,
    prev_at: &mut u64,
    prev_seq: &mut u64,
) -> Result<Option<TraceRecord>, TraceError> {
    let code = cur.u8()?;
    if code == END {
        return Ok(None);
    }
    let kind = TraceEventKind::from_code(code).ok_or(TraceError::UnknownKind(code))?;
    *prev_at += cur.varint()?;
    *prev_seq += cur.varint()?;
    let event = get_event(cur, kind)?;
    Ok(Some(TraceRecord {
        at: SimTime(*prev_at),
        seq: *prev_seq,
        event,
    }))
}

enum ReaderState<'a> {
    V1 {
        cur: Cursor<'a>,
        prev_at: u64,
        prev_seq: u64,
    },
    V2 {
        trace: &'a Trace,
        next_block: usize,
        buf: std::vec::IntoIter<TraceRecord>,
    },
}

/// Streaming decoder over a trace's records, dispatching on the wire:
/// flat scan for v1, block-at-a-time decode for v2 (memory bounded by
/// one block either way).
pub struct TraceReader<'a> {
    state: ReaderState<'a>,
    done: bool,
}

impl<'a> TraceReader<'a> {
    fn new(trace: &'a Trace, from_block: usize) -> TraceReader<'a> {
        let state = match trace.wire {
            TraceWire::V1 => {
                let body = &trace.bytes[..trace.bytes.len() - 32];
                let mut cur = Cursor::new(body);
                // Skip the magic + header (validated at construction).
                cur.skip_header();
                ReaderState::V1 {
                    cur,
                    prev_at: 0,
                    prev_seq: 0,
                }
            }
            TraceWire::V2 => ReaderState::V2 {
                trace,
                next_block: from_block,
                buf: Vec::new().into_iter(),
            },
        };
        TraceReader { state, done: false }
    }

    fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        if self.done {
            return Ok(None);
        }
        match &mut self.state {
            ReaderState::V1 {
                cur,
                prev_at,
                prev_seq,
            } => {
                let rec = decode_next_v1(cur, prev_at, prev_seq)?;
                if rec.is_none() {
                    self.done = true;
                }
                Ok(rec)
            }
            ReaderState::V2 {
                trace,
                next_block,
                buf,
            } => loop {
                if let Some(rec) = buf.next() {
                    return Ok(Some(rec));
                }
                if *next_block >= trace.blocks.len() {
                    self.done = true;
                    return Ok(None);
                }
                *buf = trace.decode_block(*next_block)?.into_iter();
                *next_block += 1;
            },
        }
    }
}

impl Iterator for TraceReader<'_> {
    type Item = Result<TraceRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.next_record() {
            Ok(Some(rec)) => Some(Ok(rec)),
            Ok(None) => None,
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

enum OwnedState {
    V1 {
        pos: usize,
        prev_at: u64,
        prev_seq: u64,
    },
    V2 {
        next_block: usize,
        buf: std::vec::IntoIter<TraceRecord>,
    },
}

/// A streaming decoder that *owns* its trace, for consumers that must be
/// `'static` (the replay `Verifier` is installed as a boxed `TraceSink`
/// and cannot borrow). Decodes incrementally — one flat record (v1) or
/// one block (v2) at a time, so memory stays bounded no matter how large
/// the trace — where [`Trace::decode_all`] materializes millions of
/// records for a default-scale run.
pub struct OwnedTraceReader {
    trace: Trace,
    state: OwnedState,
    done: bool,
    decoded: u64,
}

impl OwnedTraceReader {
    /// A reader positioned at the first record.
    pub fn new(trace: Trace) -> OwnedTraceReader {
        let state = match trace.wire {
            TraceWire::V1 => {
                let mut cur = Cursor::new(&trace.bytes);
                cur.skip_header();
                OwnedState::V1 {
                    pos: cur.pos(),
                    prev_at: 0,
                    prev_seq: 0,
                }
            }
            TraceWire::V2 => OwnedState::V2 {
                next_block: 0,
                buf: Vec::new().into_iter(),
            },
        };
        OwnedTraceReader {
            trace,
            state,
            done: false,
            decoded: 0,
        }
    }

    /// Total records in the trace (from the trailer, O(1)).
    pub fn total(&self) -> u64 {
        self.trace.events()
    }

    /// Records decoded so far.
    pub fn decoded(&self) -> u64 {
        self.decoded
    }

    /// Decodes the next record, or `None` at the end of the trace.
    pub fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        if self.done {
            return Ok(None);
        }
        let rec = match &mut self.state {
            OwnedState::V1 {
                pos,
                prev_at,
                prev_seq,
            } => {
                let body_end = self.trace.bytes.len() - 32;
                let mut cur = Cursor::new(&self.trace.bytes[*pos..body_end]);
                let rec = decode_next_v1(&mut cur, prev_at, prev_seq)?;
                *pos += cur.pos();
                rec
            }
            OwnedState::V2 { next_block, buf } => loop {
                if let Some(rec) = buf.next() {
                    break Some(rec);
                }
                if *next_block >= self.trace.blocks.len() {
                    break None;
                }
                *buf = self.trace.decode_block(*next_block)?.into_iter();
                *next_block += 1;
            },
        };
        match rec {
            Some(r) => {
                self.decoded += 1;
                Ok(Some(r))
            }
            None => {
                self.done = true;
                Ok(None)
            }
        }
    }
}

impl Cursor<'_> {
    /// Skips the magic and the four header fields (only valid at offset 0
    /// of a validated trace body).
    pub(crate) fn skip_header(&mut self) {
        for _ in 0..MAGIC_V1.len() {
            let _ = self.u8();
        }
        let _ = self.str();
        let _ = self.str();
        let _ = self.varint();
        let _ = self.varint();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legacy::RecorderV1;
    use lockss_core::trace::{MsgKind, PollConclusion};
    use lockss_sim::Duration;

    fn meta() -> TraceMeta {
        TraceMeta {
            scenario: "baseline".into(),
            scale: "quick".into(),
            seed: 7,
            run_length_ms: Duration::from_days(360).as_millis(),
        }
    }

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                at: SimTime(1_000),
                seq: 1,
                event: TraceEvent::PollStart {
                    peer: 0,
                    au: 0,
                    poll: 0,
                },
            },
            TraceRecord {
                at: SimTime(1_000),
                seq: 1,
                event: TraceEvent::MessageSend {
                    from: 0,
                    to: 3,
                    kind: MsgKind::Poll,
                    au: 0,
                    poll: 0,
                    suppressed: false,
                },
            },
            TraceRecord {
                at: SimTime(90_000),
                seq: 17,
                event: TraceEvent::PollOutcome {
                    peer: 0,
                    au: 0,
                    poll: 0,
                    conclusion: PollConclusion::Win,
                    votes: 5,
                },
            },
        ]
    }

    fn record_all(records: &[TraceRecord]) -> Trace {
        let recorder = Recorder::new(&meta());
        let mut sink: Box<dyn TraceSink> = Box::new(recorder.clone());
        for r in records {
            sink.record(r.at, r.seq, &r.event);
        }
        assert_eq!(recorder.events(), records.len() as u64);
        recorder.finish()
    }

    #[test]
    fn record_decode_roundtrip() {
        let records = sample_records();
        let trace = record_all(&records);
        assert_eq!(trace.wire(), TraceWire::V2);
        assert_eq!(trace.meta().unwrap(), meta());
        let decoded = trace.decode_all().unwrap();
        assert_eq!(decoded, records);
    }

    #[test]
    fn bytes_validate_and_hash_is_stable() {
        let trace = record_all(&sample_records());
        let again = record_all(&sample_records());
        assert_eq!(trace.content_hash(), again.content_hash());
        assert_eq!(trace.content_hash().len(), 64);
        let reparsed = Trace::from_bytes(trace.as_bytes().to_vec()).unwrap();
        assert_eq!(reparsed, trace);
    }

    #[test]
    fn corruption_is_detected() {
        let trace = record_all(&sample_records());
        let mut bytes = trace.as_bytes().to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert!(matches!(
            Trace::from_bytes(bytes),
            Err(TraceError::HashMismatch)
        ));
        assert!(matches!(
            Trace::from_bytes(b"nonsense".to_vec()),
            Err(TraceError::BadMagic)
        ));
    }

    #[test]
    fn file_roundtrip_creates_directories() {
        let trace = record_all(&sample_records());
        let dir = std::env::temp_dir().join(format!("lockss-trace-test-{}", std::process::id()));
        let path = dir.join("nested/t.bin");
        trace.write_to(&path).unwrap();
        let back = Trace::read_from(&path).unwrap();
        assert_eq!(back, trace);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trailer_count_and_owned_reader_agree_with_decode_all() {
        let records = sample_records();
        let trace = record_all(&records);
        assert_eq!(trace.events(), records.len() as u64);
        let mut owned = OwnedTraceReader::new(trace.clone());
        assert_eq!(owned.total(), records.len() as u64);
        let mut streamed = Vec::new();
        while let Some(rec) = owned.next_record().unwrap() {
            streamed.push(rec);
        }
        assert_eq!(streamed, trace.decode_all().unwrap());
        assert_eq!(owned.decoded(), records.len() as u64);
        assert!(owned.next_record().unwrap().is_none(), "stays done");
    }

    #[test]
    fn empty_trace_is_valid() {
        let trace = Recorder::new(&meta()).finish();
        assert_eq!(trace.wire(), TraceWire::V2);
        assert!(trace.blocks().is_empty());
        assert_eq!(trace.events(), 0);
        assert_eq!(trace.decode_all().unwrap(), Vec::new());
        assert_eq!(trace.meta().unwrap().scenario, "baseline");
    }

    #[test]
    fn small_block_budgets_split_the_stream() {
        let records = sample_records();
        let recorder = Recorder::with_block_events(&meta(), 2);
        let mut sink: Box<dyn TraceSink> = Box::new(recorder.clone());
        for r in &records {
            sink.record(r.at, r.seq, &r.event);
        }
        let trace = recorder.finish();
        assert_eq!(trace.blocks().len(), 2, "3 events at budget 2");
        assert_eq!(trace.blocks()[0].n_events, 2);
        assert_eq!(trace.blocks()[1].n_events, 1);
        assert_eq!(trace.decode_all().unwrap(), records);
        assert_eq!(trace.decode_block(1).unwrap(), records[2..]);
        let first_at = trace.blocks()[0].first_at_ms;
        let last_at = trace.blocks()[1].last_at_ms;
        assert_eq!((first_at, last_at), (1_000, 90_000));
    }

    #[test]
    fn legacy_v1_traces_still_read() {
        let records = sample_records();
        let recorder = RecorderV1::new(&meta());
        let mut sink: Box<dyn TraceSink> = Box::new(recorder.clone());
        for r in &records {
            sink.record(r.at, r.seq, &r.event);
        }
        let v1 = recorder.finish();
        assert_eq!(v1.wire(), TraceWire::V1);
        assert!(v1.blocks().is_empty());
        assert_eq!(v1.events(), records.len() as u64);
        assert_eq!(v1.decode_all().unwrap(), records);
        let mut owned = OwnedTraceReader::new(v1.clone());
        let mut streamed = Vec::new();
        while let Some(rec) = owned.next_record().unwrap() {
            streamed.push(rec);
        }
        assert_eq!(streamed, records);

        let v2 = v1.to_v2().unwrap();
        assert_eq!(v2.wire(), TraceWire::V2);
        assert_eq!(v2.events(), v1.events());
        assert_eq!(v2.meta().unwrap(), v1.meta().unwrap());
        assert_eq!(v2.decode_all().unwrap(), records);
        assert_ne!(v2.content_hash(), v1.content_hash());
    }

    #[test]
    fn masked_block_decode_filters_kinds() {
        let records = sample_records();
        let trace = record_all(&records);
        let mask = TraceEventKind::PollOutcome.bit();
        assert_eq!(trace.blocks().len(), 1);
        assert_eq!(trace.blocks()[0].kind_bitmap & mask, mask);
        let outcomes = trace.decode_block_masked(0, mask).unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0], records[2]);
    }
}

//! The trace container: header, delta-coded records, content-hash trailer.
//!
//! ```text
//! magic    "LTRC1\n"
//! header   str scenario · str scale · varint seed · varint run_length_ms
//! records  kind u8 (≥1) · varint Δtime_ms · varint Δengine_seq · payload
//! end      0x00 · u64-le record count
//! trailer  32-byte SHA-256 over everything above
//! ```
//!
//! Timestamps and engine ordinals are monotone, so both are delta-coded
//! against the previous record and almost always fit one varint byte. The
//! trailing hash is the trace's *content hash*: byte-stable across runs
//! and thread counts for a deterministic `(scenario, seed)`, which is what
//! the golden-trace regression tests pin.

use std::cell::RefCell;
use std::path::Path;
use std::rc::Rc;

use lockss_core::trace::{TraceEvent, TraceEventKind, TraceSink};
use lockss_crypto::sha256::sha256;
use lockss_sim::SimTime;

use crate::wire::{get_event, put_event, put_str, put_varint, Cursor, TraceError};

/// The file magic (format version 1).
pub const MAGIC: &[u8; 6] = b"LTRC1\n";

/// The end-of-records marker (kind codes start at 1).
const END: u8 = 0;

/// Identifies the execution a trace captured.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceMeta {
    /// Registered scenario name.
    pub scenario: String,
    /// Experiment scale label (`quick` / `default` / `paper`).
    pub scale: String,
    /// The run's seed.
    pub seed: u64,
    /// Simulated run length in milliseconds.
    pub run_length_ms: u64,
}

impl std::fmt::Display for TraceMeta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scenario '{}' at scale '{}', seed {}, {:.0} simulated days",
            self.scenario,
            self.scale,
            self.seed,
            self.run_length_ms as f64 / (24.0 * 3600.0 * 1000.0)
        )
    }
}

/// One decoded record: the event plus its causal position.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRecord {
    /// The simulated instant of emission.
    pub at: SimTime,
    /// The engine's executed-event ordinal at emission.
    pub seq: u64,
    /// The event.
    pub event: TraceEvent,
}

impl std::fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[day {:.2}, engine event {}] {}",
            self.at.as_days_f64(),
            self.seq,
            self.event
        )
    }
}

struct RecorderInner {
    buf: Vec<u8>,
    prev_at: u64,
    prev_seq: u64,
    events: u64,
}

/// Records a run's event stream into the binary trace format.
///
/// The recorder is a shared handle (`Clone`): install one clone as the
/// world's sink and keep the other to [`Recorder::finish`] the trace after
/// the run. Single-threaded by design, like the runs it records.
#[derive(Clone)]
pub struct Recorder {
    inner: Rc<RefCell<RecorderInner>>,
}

impl Recorder {
    /// A recorder with the header already encoded.
    pub fn new(meta: &TraceMeta) -> Recorder {
        let mut buf = Vec::with_capacity(64 * 1024);
        buf.extend_from_slice(MAGIC);
        put_str(&mut buf, &meta.scenario);
        put_str(&mut buf, &meta.scale);
        put_varint(&mut buf, meta.seed);
        put_varint(&mut buf, meta.run_length_ms);
        Recorder {
            inner: Rc::new(RefCell::new(RecorderInner {
                buf,
                prev_at: 0,
                prev_seq: 0,
                events: 0,
            })),
        }
    }

    /// Events recorded so far.
    pub fn events(&self) -> u64 {
        self.inner.borrow().events
    }

    /// Seals the trace: appends the end marker, the record count, and the
    /// content hash.
    pub fn finish(self) -> Trace {
        let mut inner = self.inner.borrow_mut();
        let mut bytes = std::mem::take(&mut inner.buf);
        let events = inner.events;
        drop(inner);
        bytes.push(END);
        bytes.extend_from_slice(&events.to_le_bytes());
        let digest = sha256(&bytes);
        bytes.extend_from_slice(&digest);
        Trace { bytes }
    }
}

impl TraceSink for Recorder {
    fn record(&mut self, at: SimTime, seq: u64, event: &TraceEvent) {
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        inner.buf.push(event.kind().code());
        let at = at.as_millis();
        put_varint(&mut inner.buf, at - inner.prev_at);
        put_varint(&mut inner.buf, seq - inner.prev_seq);
        inner.prev_at = at;
        inner.prev_seq = seq;
        put_event(&mut inner.buf, event);
        inner.events += 1;
    }
}

/// A sealed, hash-verified trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    bytes: Vec<u8>,
}

impl Trace {
    /// Bytes of trailer past the records: end marker + count + hash.
    const TAIL: usize = 1 + 8 + 32;

    /// Validates raw bytes (magic, trailer hash, decodable header) into a
    /// trace.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Trace, TraceError> {
        if bytes.len() < MAGIC.len() + Trace::TAIL || &bytes[..MAGIC.len()] != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let body_len = bytes.len() - 32;
        let digest = sha256(&bytes[..body_len]);
        if digest != bytes[body_len..] {
            return Err(TraceError::HashMismatch);
        }
        let trace = Trace { bytes };
        trace.meta()?; // header must decode
        Ok(trace)
    }

    /// Number of records, read from the trailer in O(1).
    pub fn events(&self) -> u64 {
        let start = self.bytes.len() - 32 - 8;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.bytes[start..start + 8]);
        u64::from_le_bytes(raw)
    }

    /// The raw encoded bytes (header + records + trailer).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The trailing SHA-256 content hash, hex-encoded.
    pub fn content_hash(&self) -> String {
        self.bytes[self.bytes.len() - 32..]
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect()
    }

    /// Decodes the header.
    pub fn meta(&self) -> Result<TraceMeta, TraceError> {
        let mut cur = Cursor::new(&self.bytes[MAGIC.len()..self.bytes.len() - 32]);
        Ok(TraceMeta {
            scenario: cur.str()?,
            scale: cur.str()?,
            seed: cur.varint()?,
            run_length_ms: cur.varint()?,
        })
    }

    /// An iterator over the decoded records.
    pub fn records(&self) -> TraceReader<'_> {
        TraceReader::new(self)
    }

    /// Decodes every record into memory.
    pub fn decode_all(&self) -> Result<Vec<TraceRecord>, TraceError> {
        self.records().collect()
    }

    /// Writes the trace to `path`, creating parent directories on demand.
    pub fn write_to(&self, path: &Path) -> Result<(), TraceError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, &self.bytes)?;
        Ok(())
    }

    /// Reads and validates a trace file.
    pub fn read_from(path: &Path) -> Result<Trace, TraceError> {
        Trace::from_bytes(std::fs::read(path)?)
    }
}

/// Decodes one framed record (or the end marker) at the cursor,
/// delta-accumulating against `prev_at`/`prev_seq`.
fn decode_next(
    cur: &mut Cursor<'_>,
    prev_at: &mut u64,
    prev_seq: &mut u64,
) -> Result<Option<TraceRecord>, TraceError> {
    let code = cur.u8()?;
    if code == END {
        return Ok(None);
    }
    let kind = TraceEventKind::from_code(code).ok_or(TraceError::UnknownKind(code))?;
    *prev_at += cur.varint()?;
    *prev_seq += cur.varint()?;
    let event = get_event(cur, kind)?;
    Ok(Some(TraceRecord {
        at: SimTime(*prev_at),
        seq: *prev_seq,
        event,
    }))
}

/// Streaming decoder over a trace's records.
pub struct TraceReader<'a> {
    cur: Cursor<'a>,
    prev_at: u64,
    prev_seq: u64,
    done: bool,
}

impl<'a> TraceReader<'a> {
    fn new(trace: &'a Trace) -> TraceReader<'a> {
        let body = &trace.bytes[..trace.bytes.len() - 32];
        let mut cur = Cursor::new(body);
        // Skip the magic + header (validated at construction).
        cur.skip_header();
        TraceReader {
            cur,
            prev_at: 0,
            prev_seq: 0,
            done: false,
        }
    }

    fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        if self.done {
            return Ok(None);
        }
        let rec = decode_next(&mut self.cur, &mut self.prev_at, &mut self.prev_seq)?;
        if rec.is_none() {
            self.done = true;
        }
        Ok(rec)
    }
}

/// A streaming decoder that *owns* its trace, for consumers that must be
/// `'static` (the replay `Verifier` is installed as a boxed `TraceSink`
/// and cannot borrow). Decodes one record at a time — O(1) memory no
/// matter how large the trace — where [`Trace::decode_all`] materializes
/// millions of records for a default-scale run.
pub struct OwnedTraceReader {
    trace: Trace,
    pos: usize,
    prev_at: u64,
    prev_seq: u64,
    done: bool,
    decoded: u64,
}

impl OwnedTraceReader {
    /// A reader positioned at the first record.
    pub fn new(trace: Trace) -> OwnedTraceReader {
        let mut cur = Cursor::new(&trace.bytes);
        cur.skip_header();
        let pos = cur.pos();
        OwnedTraceReader {
            trace,
            pos,
            prev_at: 0,
            prev_seq: 0,
            done: false,
            decoded: 0,
        }
    }

    /// Total records in the trace (from the trailer, O(1)).
    pub fn total(&self) -> u64 {
        self.trace.events()
    }

    /// Records decoded so far.
    pub fn decoded(&self) -> u64 {
        self.decoded
    }

    /// Decodes the next record, or `None` at the end marker.
    pub fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        if self.done {
            return Ok(None);
        }
        let body_end = self.trace.bytes.len() - 32;
        let mut cur = Cursor::new(&self.trace.bytes[self.pos..body_end]);
        let rec = decode_next(&mut cur, &mut self.prev_at, &mut self.prev_seq)?;
        self.pos += cur.pos();
        match rec {
            Some(r) => {
                self.decoded += 1;
                Ok(Some(r))
            }
            None => {
                self.done = true;
                Ok(None)
            }
        }
    }
}

impl Iterator for TraceReader<'_> {
    type Item = Result<TraceRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.next_record() {
            Ok(Some(rec)) => Some(Ok(rec)),
            Ok(None) => None,
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

impl Cursor<'_> {
    /// Skips the magic and the four header fields (only valid at offset 0
    /// of a validated trace body).
    fn skip_header(&mut self) {
        for _ in 0..MAGIC.len() {
            let _ = self.u8();
        }
        let _ = self.str();
        let _ = self.str();
        let _ = self.varint();
        let _ = self.varint();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockss_core::trace::{MsgKind, PollConclusion};
    use lockss_sim::Duration;

    fn meta() -> TraceMeta {
        TraceMeta {
            scenario: "baseline".into(),
            scale: "quick".into(),
            seed: 7,
            run_length_ms: Duration::from_days(360).as_millis(),
        }
    }

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                at: SimTime(1_000),
                seq: 1,
                event: TraceEvent::PollStart {
                    peer: 0,
                    au: 0,
                    poll: 0,
                },
            },
            TraceRecord {
                at: SimTime(1_000),
                seq: 1,
                event: TraceEvent::MessageSend {
                    from: 0,
                    to: 3,
                    kind: MsgKind::Poll,
                    au: 0,
                    poll: 0,
                    suppressed: false,
                },
            },
            TraceRecord {
                at: SimTime(90_000),
                seq: 17,
                event: TraceEvent::PollOutcome {
                    peer: 0,
                    au: 0,
                    poll: 0,
                    conclusion: PollConclusion::Win,
                    votes: 5,
                },
            },
        ]
    }

    fn record_all(records: &[TraceRecord]) -> Trace {
        let recorder = Recorder::new(&meta());
        let mut sink: Box<dyn TraceSink> = Box::new(recorder.clone());
        for r in records {
            sink.record(r.at, r.seq, &r.event);
        }
        assert_eq!(recorder.events(), records.len() as u64);
        recorder.finish()
    }

    #[test]
    fn record_decode_roundtrip() {
        let records = sample_records();
        let trace = record_all(&records);
        assert_eq!(trace.meta().unwrap(), meta());
        let decoded = trace.decode_all().unwrap();
        assert_eq!(decoded, records);
    }

    #[test]
    fn bytes_validate_and_hash_is_stable() {
        let trace = record_all(&sample_records());
        let again = record_all(&sample_records());
        assert_eq!(trace.content_hash(), again.content_hash());
        assert_eq!(trace.content_hash().len(), 64);
        let reparsed = Trace::from_bytes(trace.as_bytes().to_vec()).unwrap();
        assert_eq!(reparsed, trace);
    }

    #[test]
    fn corruption_is_detected() {
        let trace = record_all(&sample_records());
        let mut bytes = trace.as_bytes().to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert!(matches!(
            Trace::from_bytes(bytes),
            Err(TraceError::HashMismatch)
        ));
        assert!(matches!(
            Trace::from_bytes(b"nonsense".to_vec()),
            Err(TraceError::BadMagic)
        ));
    }

    #[test]
    fn file_roundtrip_creates_directories() {
        let trace = record_all(&sample_records());
        let dir = std::env::temp_dir().join(format!("lockss-trace-test-{}", std::process::id()));
        let path = dir.join("nested/t.bin");
        trace.write_to(&path).unwrap();
        let back = Trace::read_from(&path).unwrap();
        assert_eq!(back, trace);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trailer_count_and_owned_reader_agree_with_decode_all() {
        let records = sample_records();
        let trace = record_all(&records);
        assert_eq!(trace.events(), records.len() as u64);
        let mut owned = OwnedTraceReader::new(trace.clone());
        assert_eq!(owned.total(), records.len() as u64);
        let mut streamed = Vec::new();
        while let Some(rec) = owned.next_record().unwrap() {
            streamed.push(rec);
        }
        assert_eq!(streamed, trace.decode_all().unwrap());
        assert_eq!(owned.decoded(), records.len() as u64);
        assert!(owned.next_record().unwrap().is_none(), "stays done");
    }

    #[test]
    fn empty_trace_is_valid() {
        let trace = Recorder::new(&meta()).finish();
        assert_eq!(trace.decode_all().unwrap(), Vec::new());
        assert_eq!(trace.meta().unwrap().scenario, "baseline");
    }
}

//! A small self-hosted LZ codec for trace columns.
//!
//! The offline dependency policy bans pulling a compression crate, and the
//! columnar layout makes one unnecessary: delta-coded varint columns are
//! dominated by short repeating byte patterns (runs of `0x00`/`0x01`
//! deltas, near-identical payload encodings grouped by kind), which a
//! byte-aligned LZ with a greedy hash-table matcher compresses well at
//! memory-bandwidth-ish speed. The format is snappy-shaped:
//!
//! ```text
//! tag & 3 == 0   literal run: len = (tag >> 2) + 1   (1..=64), bytes follow
//! tag & 3 == 1   near copy:   len = ((tag >> 2) & 7) + 4 (4..=11),
//!                offset = ((tag >> 5) << 8) | next byte   (1..=2047)
//! tag & 3 == 2   far copy:    len = (tag >> 2) + 4   (4..=67),
//!                offset = next two bytes LE              (1..=65535)
//! tag & 3 == 3   reserved (decode error)
//! ```
//!
//! Copies may overlap their destination (offset 1 is byte run-length
//! encoding). Compression is deterministic — greedy matching against a
//! last-occurrence hash table — so the same input always yields the same
//! bytes, which the trace format's content hashes rely on.

/// Matches at least this many bytes before a copy pays for itself.
const MIN_MATCH: usize = 4;

/// Far copies address at most this far back.
const MAX_OFFSET: usize = 65_535;

/// Hash-table size (power of two) for 4-byte match candidates.
const HASH_BITS: u32 = 14;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Flushes `lit` pending literal bytes ending at `pos` into `out`.
fn emit_literals(out: &mut Vec<u8>, input: &[u8], pos: usize, lit: usize) {
    let mut start = pos - lit;
    while start < pos {
        let n = (pos - start).min(64);
        out.push(((n - 1) as u8) << 2);
        out.extend_from_slice(&input[start..start + n]);
        start += n;
    }
}

/// Emits one copy op (caller guarantees `4 <= len <= 67`, offset bounds).
fn emit_copy(out: &mut Vec<u8>, offset: usize, len: usize) {
    debug_assert!((MIN_MATCH..=67).contains(&len));
    debug_assert!((1..=MAX_OFFSET).contains(&offset));
    if len <= 11 && offset < 2048 {
        out.push(0x01 | (((len - 4) as u8) << 2) | (((offset >> 8) as u8) << 5));
        out.push((offset & 0xff) as u8);
    } else {
        out.push(0x02 | (((len - 4) as u8) << 2));
        out.extend_from_slice(&(offset as u16).to_le_bytes());
    }
}

/// Compresses `input`. The output carries no length header; callers frame
/// both the raw and stored lengths (the column framing does).
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let n = input.len();
    if n < MIN_MATCH {
        emit_literals(&mut out, input, n, n);
        return out;
    }
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut pos = 0usize;
    let mut lit = 0usize;
    // The last 3 bytes can never start a match.
    let limit = n - (MIN_MATCH - 1);
    while pos < limit {
        let h = hash4(&input[pos..]);
        let cand = table[h];
        table[h] = pos;
        let matched = cand != usize::MAX
            && pos - cand <= MAX_OFFSET
            && input[cand..cand + MIN_MATCH] == input[pos..pos + MIN_MATCH];
        if !matched {
            lit += 1;
            pos += 1;
            continue;
        }
        emit_literals(&mut out, input, pos, lit);
        // Extend the match as far as it goes, emitting ≤67-byte ops.
        let offset = pos - cand;
        let mut len = MIN_MATCH;
        while pos + len < n && input[cand + len] == input[pos + len] {
            len += 1;
        }
        let mut rest = len;
        while rest >= MIN_MATCH {
            let chunk = rest.min(67);
            // Never leave a sub-MIN_MATCH tail that can't be emitted.
            let chunk = if rest - chunk > 0 && rest - chunk < MIN_MATCH {
                rest - MIN_MATCH
            } else {
                chunk
            };
            emit_copy(&mut out, offset, chunk);
            rest -= chunk;
        }
        lit = rest; // 0..=3 uncopied bytes become literals
        pos += len - rest;
    }
    lit += n - pos;
    emit_literals(&mut out, input, n, lit);
    out
}

/// Decompresses a stream produced by [`compress`] into exactly
/// `raw_len` bytes. Any malformed op, overrun, or length mismatch is an
/// error (reported as a plain message; the column framing attributes it).
pub fn decompress(stream: &[u8], raw_len: usize) -> Result<Vec<u8>, &'static str> {
    let mut out: Vec<u8> = Vec::with_capacity(raw_len);
    let mut pos = 0usize;
    while pos < stream.len() {
        let tag = stream[pos];
        pos += 1;
        match tag & 3 {
            0 => {
                let len = ((tag >> 2) as usize) + 1;
                let end = pos.checked_add(len).ok_or("literal overflow")?;
                let bytes = stream.get(pos..end).ok_or("truncated literal run")?;
                out.extend_from_slice(bytes);
                pos = end;
            }
            1 => {
                let len = (((tag >> 2) & 7) as usize) + 4;
                let lo = *stream.get(pos).ok_or("truncated near copy")?;
                pos += 1;
                let offset = (((tag >> 5) as usize) << 8) | lo as usize;
                copy_back(&mut out, offset, len)?;
            }
            2 => {
                let len = ((tag >> 2) as usize) + 4;
                let raw = stream.get(pos..pos + 2).ok_or("truncated far copy")?;
                pos += 2;
                let offset = u16::from_le_bytes([raw[0], raw[1]]) as usize;
                copy_back(&mut out, offset, len)?;
            }
            _ => return Err("reserved op tag"),
        }
        if out.len() > raw_len {
            return Err("output overruns declared length");
        }
    }
    if out.len() != raw_len {
        return Err("output shorter than declared length");
    }
    Ok(out)
}

/// Appends `len` bytes copied from `offset` back (overlap-safe).
fn copy_back(out: &mut Vec<u8>, offset: usize, len: usize) -> Result<(), &'static str> {
    if offset == 0 || offset > out.len() {
        return Err("copy offset out of range");
    }
    let start = out.len() - offset;
    for i in 0..len {
        let b = out[start + i];
        out.push(b);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let comp = compress(data);
        assert_eq!(
            decompress(&comp, data.len()).expect("decodes"),
            data,
            "roundtrip of {} bytes",
            data.len()
        );
        comp.len()
    }

    #[test]
    fn roundtrips_edge_shapes() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
        roundtrip(b"abcd");
        roundtrip(&[0u8; 1000]);
        roundtrip(&[7u8; 3]);
        let long_lit: Vec<u8> = (0..=255u8).cycle().take(300).collect();
        roundtrip(&long_lit);
    }

    #[test]
    fn repetitive_data_shrinks_hard() {
        let runs: Vec<u8> = std::iter::repeat_n([0u8, 0, 1, 0], 4096)
            .flatten()
            .collect();
        let comp_len = roundtrip(&runs);
        assert!(
            comp_len * 8 < runs.len(),
            "{comp_len} of {} bytes",
            runs.len()
        );
    }

    #[test]
    fn pseudorandom_data_survives() {
        // splitmix-ish determinstic noise: barely compressible, must
        // still roundtrip byte-exactly.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn compression_is_deterministic() {
        let data: Vec<u8> = (0..5000).map(|i| (i % 37) as u8).collect();
        assert_eq!(compress(&data), compress(&data));
    }

    #[test]
    fn malformed_streams_are_rejected() {
        assert!(decompress(&[0x03], 4).is_err(), "reserved tag");
        assert!(decompress(&[0x00], 1).is_err(), "truncated literal");
        assert!(decompress(&[0x01], 4).is_err(), "truncated near copy");
        assert!(decompress(&[0x02, 0x01], 4).is_err(), "truncated far copy");
        // Copy before any output exists.
        assert!(decompress(&[0x01, 0x01], 4).is_err(), "offset out of range");
        // Declared length mismatches.
        let comp = compress(b"hello world hello world");
        assert!(decompress(&comp, 5).is_err(), "overrun");
        assert!(decompress(&comp, 500).is_err(), "underrun");
    }

    #[test]
    fn overlapping_copies_rle() {
        // A run long enough to force overlap copies from offset 1.
        let data = [9u8; 500];
        let comp = compress(&data);
        assert!(comp.len() < 30, "rle path: {} bytes", comp.len());
        assert_eq!(decompress(&comp, 500).unwrap(), data);
    }
}

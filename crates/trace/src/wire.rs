//! The varint wire layer: LEB128 integers, length-prefixed strings, and
//! the per-event payload codecs.
//!
//! Everything in a trace file above the magic bytes is built from three
//! primitives — unsigned LEB128 varints, `varint length + UTF-8 bytes`
//! strings, and single bytes for enum codes — so the format needs no
//! external serialization dependency and stays byte-stable across
//! platforms.

use lockss_core::trace::{AdmissionVerdict, MsgKind, PollConclusion, TraceEvent, TraceEventKind};

/// A malformed or corrupt trace.
#[derive(Debug)]
pub enum TraceError {
    /// The file does not start with the trace magic.
    BadMagic,
    /// The byte stream ended inside a record or header.
    Truncated,
    /// A varint ran past 10 bytes (not a valid u64).
    BadVarint,
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// An unknown event kind code (trace from a newer build, or corrupt).
    UnknownKind(u8),
    /// An unknown enum payload code for the named field.
    UnknownCode {
        /// Which field carried the code.
        field: &'static str,
        /// The offending byte.
        code: u8,
    },
    /// The trailer hash does not match the content (corrupt or tampered).
    HashMismatch,
    /// A block-columnar trace ended inside a block's framed body.
    TruncatedBlock {
        /// Zero-based index of the offending block.
        block: u64,
    },
    /// A block body does not match its index digest (corrupt block).
    BadBlockChecksum {
        /// Zero-based index of the offending block.
        block: u64,
    },
    /// The block index in the trailer is malformed.
    BadIndex(&'static str),
    /// A column inside a block body failed to decode.
    BadColumn {
        /// Zero-based index of the offending block.
        block: u64,
        /// Which column failed (`kinds`, `time-delta`, ...).
        column: &'static str,
    },
    /// Reading or writing the trace file failed.
    Io(std::io::Error),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not a lockss trace (bad magic)"),
            TraceError::Truncated => write!(f, "trace truncated mid-record"),
            TraceError::BadVarint => write!(f, "malformed varint"),
            TraceError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            TraceError::UnknownKind(code) => write!(f, "unknown event kind code {code}"),
            TraceError::UnknownCode { field, code } => {
                write!(f, "unknown {field} code {code}")
            }
            TraceError::HashMismatch => {
                write!(f, "content hash mismatch: trace corrupt or tampered")
            }
            TraceError::TruncatedBlock { block } => {
                write!(f, "trace truncated inside block {block}")
            }
            TraceError::BadBlockChecksum { block } => {
                write!(f, "block {block} checksum mismatch: block corrupt")
            }
            TraceError::BadIndex(what) => write!(f, "malformed block index: {what}"),
            TraceError::BadColumn { block, column } => {
                write!(f, "malformed {column} column in block {block}")
            }
            TraceError::Io(e) => write!(f, "trace i/o: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> TraceError {
        TraceError::Io(e)
    }
}

/// Appends `v` as an unsigned LEB128 varint.
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// A cursor over an encoded byte slice.
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// True when every byte has been consumed.
    pub fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, TraceError> {
        let b = *self.bytes.get(self.pos).ok_or(TraceError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads an unsigned LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, TraceError> {
        let mut v: u64 = 0;
        for shift in 0..10 {
            let byte = self.u8()?;
            if shift == 9 && byte > 0x01 {
                return Err(TraceError::BadVarint);
            }
            v |= u64::from(byte & 0x7f) << (7 * shift);
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(TraceError::BadVarint)
    }

    /// Reads a varint and narrows it to u32.
    pub fn varint_u32(&mut self) -> Result<u32, TraceError> {
        let v = self.varint()?;
        u32::try_from(v).map_err(|_| TraceError::BadVarint)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, TraceError> {
        let len = self.varint()? as usize;
        let end = self.pos.checked_add(len).ok_or(TraceError::Truncated)?;
        let slice = self.bytes.get(self.pos..end).ok_or(TraceError::Truncated)?;
        self.pos = end;
        String::from_utf8(slice.to_vec()).map_err(|_| TraceError::BadUtf8)
    }

    /// Reads a bool byte (0 or 1; anything nonzero reads as true).
    pub fn bool(&mut self) -> Result<bool, TraceError> {
        Ok(self.u8()? != 0)
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        let end = self.pos.checked_add(n).ok_or(TraceError::Truncated)?;
        let slice = self.bytes.get(self.pos..end).ok_or(TraceError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }
}

/// Encodes one event payload (the kind byte is framed by the caller).
pub fn put_event(buf: &mut Vec<u8>, event: &TraceEvent) {
    match event {
        TraceEvent::PollStart { peer, au, poll } => {
            put_varint(buf, u64::from(*peer));
            put_varint(buf, u64::from(*au));
            put_varint(buf, *poll);
        }
        TraceEvent::PollOutcome {
            peer,
            au,
            poll,
            conclusion,
            votes,
        } => {
            put_varint(buf, u64::from(*peer));
            put_varint(buf, u64::from(*au));
            put_varint(buf, *poll);
            buf.push(conclusion.code());
            put_varint(buf, u64::from(*votes));
        }
        TraceEvent::MessageSend {
            from,
            to,
            kind,
            au,
            poll,
            suppressed,
        } => {
            put_varint(buf, u64::from(*from));
            put_varint(buf, u64::from(*to));
            buf.push(kind.code());
            put_varint(buf, u64::from(*au));
            put_varint(buf, *poll);
            buf.push(u8::from(*suppressed));
        }
        TraceEvent::Admission {
            peer,
            poller,
            verdict,
        } => {
            put_varint(buf, u64::from(*peer));
            put_varint(buf, *poller);
            buf.push(verdict.code());
        }
        TraceEvent::Damage {
            peer,
            au,
            block,
            was_intact,
        } => {
            put_varint(buf, u64::from(*peer));
            put_varint(buf, u64::from(*au));
            put_varint(buf, *block);
            buf.push(u8::from(*was_intact));
        }
        TraceEvent::Repair {
            peer,
            au,
            poll,
            block,
            intact_after,
        } => {
            put_varint(buf, u64::from(*peer));
            put_varint(buf, u64::from(*au));
            put_varint(buf, *poll);
            put_varint(buf, *block);
            buf.push(u8::from(*intact_after));
        }
        TraceEvent::AdversaryTimer { channel, tag } => {
            put_varint(buf, *channel);
            put_varint(buf, *tag);
        }
        TraceEvent::AdversaryAction {
            channel,
            label,
            magnitude,
        } => {
            put_varint(buf, *channel);
            put_str(buf, label);
            put_varint(buf, *magnitude);
        }
        TraceEvent::PeerJoin { peer } => {
            put_varint(buf, u64::from(*peer));
        }
        TraceEvent::PhaseMark { label } => {
            put_str(buf, label);
        }
        TraceEvent::Compromise { peer, corrupted } => {
            put_varint(buf, u64::from(*peer));
            put_varint(buf, *corrupted);
        }
        TraceEvent::Cure { peer, residual } => {
            put_varint(buf, u64::from(*peer));
            put_varint(buf, *residual);
        }
        TraceEvent::PoisonedRepair {
            peer,
            au,
            poll,
            block,
            server,
        } => {
            put_varint(buf, u64::from(*peer));
            put_varint(buf, u64::from(*au));
            put_varint(buf, *poll);
            put_varint(buf, *block);
            put_varint(buf, u64::from(*server));
        }
    }
}

/// Decodes one event payload of the given kind.
pub fn get_event(cur: &mut Cursor<'_>, kind: TraceEventKind) -> Result<TraceEvent, TraceError> {
    Ok(match kind {
        TraceEventKind::PollStart => TraceEvent::PollStart {
            peer: cur.varint_u32()?,
            au: cur.varint_u32()?,
            poll: cur.varint()?,
        },
        TraceEventKind::PollOutcome => TraceEvent::PollOutcome {
            peer: cur.varint_u32()?,
            au: cur.varint_u32()?,
            poll: cur.varint()?,
            conclusion: {
                let code = cur.u8()?;
                PollConclusion::from_code(code).ok_or(TraceError::UnknownCode {
                    field: "poll conclusion",
                    code,
                })?
            },
            votes: cur.varint_u32()?,
        },
        TraceEventKind::MessageSend => TraceEvent::MessageSend {
            from: cur.varint_u32()?,
            to: cur.varint_u32()?,
            kind: {
                let code = cur.u8()?;
                MsgKind::from_code(code).ok_or(TraceError::UnknownCode {
                    field: "message kind",
                    code,
                })?
            },
            au: cur.varint_u32()?,
            poll: cur.varint()?,
            suppressed: cur.bool()?,
        },
        TraceEventKind::Admission => TraceEvent::Admission {
            peer: cur.varint_u32()?,
            poller: cur.varint()?,
            verdict: {
                let code = cur.u8()?;
                AdmissionVerdict::from_code(code).ok_or(TraceError::UnknownCode {
                    field: "admission verdict",
                    code,
                })?
            },
        },
        TraceEventKind::Damage => TraceEvent::Damage {
            peer: cur.varint_u32()?,
            au: cur.varint_u32()?,
            block: cur.varint()?,
            was_intact: cur.bool()?,
        },
        TraceEventKind::Repair => TraceEvent::Repair {
            peer: cur.varint_u32()?,
            au: cur.varint_u32()?,
            poll: cur.varint()?,
            block: cur.varint()?,
            intact_after: cur.bool()?,
        },
        TraceEventKind::AdversaryTimer => TraceEvent::AdversaryTimer {
            channel: cur.varint()?,
            tag: cur.varint()?,
        },
        TraceEventKind::AdversaryAction => TraceEvent::AdversaryAction {
            channel: cur.varint()?,
            label: cur.str()?,
            magnitude: cur.varint()?,
        },
        TraceEventKind::PeerJoin => TraceEvent::PeerJoin {
            peer: cur.varint_u32()?,
        },
        TraceEventKind::PhaseMark => TraceEvent::PhaseMark { label: cur.str()? },
        TraceEventKind::Compromise => TraceEvent::Compromise {
            peer: cur.varint_u32()?,
            corrupted: cur.varint()?,
        },
        TraceEventKind::Cure => TraceEvent::Cure {
            peer: cur.varint_u32()?,
            residual: cur.varint()?,
        },
        TraceEventKind::PoisonedRepair => TraceEvent::PoisonedRepair {
            peer: cur.varint_u32()?,
            au: cur.varint_u32()?,
            poll: cur.varint()?,
            block: cur.varint()?,
            server: cur.varint_u32()?,
        },
    })
}

/// Upper bound on [`field_count`] across every event kind.
#[cfg(test)]
pub(crate) const MAX_FIELDS: usize = 6;

/// Number of payload field columns `kind` occupies in the v2 block
/// layout. Each field of a kind's payload lives in its own column so
/// repetitive fields (poll ids, AU ids, enum codes, flags) compress
/// independently of high-entropy ones (peer ids).
pub(crate) fn field_count(kind: TraceEventKind) -> usize {
    match kind {
        TraceEventKind::PollStart => 3,
        TraceEventKind::PollOutcome => 5,
        TraceEventKind::MessageSend => 6,
        TraceEventKind::Admission => 3,
        TraceEventKind::Damage => 4,
        TraceEventKind::Repair => 5,
        TraceEventKind::AdversaryTimer => 2,
        TraceEventKind::AdversaryAction => 3,
        TraceEventKind::PeerJoin => 1,
        TraceEventKind::PhaseMark => 1,
        TraceEventKind::Compromise => 2,
        TraceEventKind::Cure => 2,
        TraceEventKind::PoisonedRepair => 5,
    }
}

/// True when field `field` of `kind`'s payload is a canonical varint
/// stream in the column layout (every field except the two
/// length-prefixed strings), making the zigzag-delta column re-code
/// lossless for it. Enum codes and flags are single bytes < 0x80, so
/// they are canonical one-byte varints.
pub(crate) fn field_is_varint(kind: TraceEventKind, field: usize) -> bool {
    !matches!(
        (kind, field),
        (TraceEventKind::AdversaryAction, 1) | (TraceEventKind::PhaseMark, 0)
    )
}

/// Appends each payload field of `event` to its own column buffer
/// (`cols.len() == field_count(kind)`). Field order and per-field
/// encodings match [`put_event`] exactly; only the destination differs.
pub(crate) fn put_event_fields(cols: &mut [Vec<u8>], event: &TraceEvent) {
    match event {
        TraceEvent::PollStart { peer, au, poll } => {
            put_varint(&mut cols[0], u64::from(*peer));
            put_varint(&mut cols[1], u64::from(*au));
            put_varint(&mut cols[2], *poll);
        }
        TraceEvent::PollOutcome {
            peer,
            au,
            poll,
            conclusion,
            votes,
        } => {
            put_varint(&mut cols[0], u64::from(*peer));
            put_varint(&mut cols[1], u64::from(*au));
            put_varint(&mut cols[2], *poll);
            cols[3].push(conclusion.code());
            put_varint(&mut cols[4], u64::from(*votes));
        }
        TraceEvent::MessageSend {
            from,
            to,
            kind,
            au,
            poll,
            suppressed,
        } => {
            put_varint(&mut cols[0], u64::from(*from));
            put_varint(&mut cols[1], u64::from(*to));
            cols[2].push(kind.code());
            put_varint(&mut cols[3], u64::from(*au));
            put_varint(&mut cols[4], *poll);
            cols[5].push(u8::from(*suppressed));
        }
        TraceEvent::Admission {
            peer,
            poller,
            verdict,
        } => {
            put_varint(&mut cols[0], u64::from(*peer));
            put_varint(&mut cols[1], *poller);
            cols[2].push(verdict.code());
        }
        TraceEvent::Damage {
            peer,
            au,
            block,
            was_intact,
        } => {
            put_varint(&mut cols[0], u64::from(*peer));
            put_varint(&mut cols[1], u64::from(*au));
            put_varint(&mut cols[2], *block);
            cols[3].push(u8::from(*was_intact));
        }
        TraceEvent::Repair {
            peer,
            au,
            poll,
            block,
            intact_after,
        } => {
            put_varint(&mut cols[0], u64::from(*peer));
            put_varint(&mut cols[1], u64::from(*au));
            put_varint(&mut cols[2], *poll);
            put_varint(&mut cols[3], *block);
            cols[4].push(u8::from(*intact_after));
        }
        TraceEvent::AdversaryTimer { channel, tag } => {
            put_varint(&mut cols[0], *channel);
            put_varint(&mut cols[1], *tag);
        }
        TraceEvent::AdversaryAction {
            channel,
            label,
            magnitude,
        } => {
            put_varint(&mut cols[0], *channel);
            put_str(&mut cols[1], label);
            put_varint(&mut cols[2], *magnitude);
        }
        TraceEvent::PeerJoin { peer } => {
            put_varint(&mut cols[0], u64::from(*peer));
        }
        TraceEvent::PhaseMark { label } => {
            put_str(&mut cols[0], label);
        }
        TraceEvent::Compromise { peer, corrupted } => {
            put_varint(&mut cols[0], u64::from(*peer));
            put_varint(&mut cols[1], *corrupted);
        }
        TraceEvent::Cure { peer, residual } => {
            put_varint(&mut cols[0], u64::from(*peer));
            put_varint(&mut cols[1], *residual);
        }
        TraceEvent::PoisonedRepair {
            peer,
            au,
            poll,
            block,
            server,
        } => {
            put_varint(&mut cols[0], u64::from(*peer));
            put_varint(&mut cols[1], u64::from(*au));
            put_varint(&mut cols[2], *poll);
            put_varint(&mut cols[3], *block);
            put_varint(&mut cols[4], u64::from(*server));
        }
    }
}

/// Reassembles one event of `kind` by pulling the next value off each
/// per-field column cursor (the decode mirror of [`put_event_fields`]).
pub(crate) fn get_event_fields(
    cols: &mut [Cursor<'_>],
    kind: TraceEventKind,
) -> Result<TraceEvent, TraceError> {
    Ok(match kind {
        TraceEventKind::PollStart => TraceEvent::PollStart {
            peer: cols[0].varint_u32()?,
            au: cols[1].varint_u32()?,
            poll: cols[2].varint()?,
        },
        TraceEventKind::PollOutcome => TraceEvent::PollOutcome {
            peer: cols[0].varint_u32()?,
            au: cols[1].varint_u32()?,
            poll: cols[2].varint()?,
            conclusion: {
                let code = cols[3].u8()?;
                PollConclusion::from_code(code).ok_or(TraceError::UnknownCode {
                    field: "poll conclusion",
                    code,
                })?
            },
            votes: cols[4].varint_u32()?,
        },
        TraceEventKind::MessageSend => TraceEvent::MessageSend {
            from: cols[0].varint_u32()?,
            to: cols[1].varint_u32()?,
            kind: {
                let code = cols[2].u8()?;
                MsgKind::from_code(code).ok_or(TraceError::UnknownCode {
                    field: "message kind",
                    code,
                })?
            },
            au: cols[3].varint_u32()?,
            poll: cols[4].varint()?,
            suppressed: cols[5].bool()?,
        },
        TraceEventKind::Admission => TraceEvent::Admission {
            peer: cols[0].varint_u32()?,
            poller: cols[1].varint()?,
            verdict: {
                let code = cols[2].u8()?;
                AdmissionVerdict::from_code(code).ok_or(TraceError::UnknownCode {
                    field: "admission verdict",
                    code,
                })?
            },
        },
        TraceEventKind::Damage => TraceEvent::Damage {
            peer: cols[0].varint_u32()?,
            au: cols[1].varint_u32()?,
            block: cols[2].varint()?,
            was_intact: cols[3].bool()?,
        },
        TraceEventKind::Repair => TraceEvent::Repair {
            peer: cols[0].varint_u32()?,
            au: cols[1].varint_u32()?,
            poll: cols[2].varint()?,
            block: cols[3].varint()?,
            intact_after: cols[4].bool()?,
        },
        TraceEventKind::AdversaryTimer => TraceEvent::AdversaryTimer {
            channel: cols[0].varint()?,
            tag: cols[1].varint()?,
        },
        TraceEventKind::AdversaryAction => TraceEvent::AdversaryAction {
            channel: cols[0].varint()?,
            label: cols[1].str()?,
            magnitude: cols[2].varint()?,
        },
        TraceEventKind::PeerJoin => TraceEvent::PeerJoin {
            peer: cols[0].varint_u32()?,
        },
        TraceEventKind::PhaseMark => TraceEvent::PhaseMark {
            label: cols[0].str()?,
        },
        TraceEventKind::Compromise => TraceEvent::Compromise {
            peer: cols[0].varint_u32()?,
            corrupted: cols[1].varint()?,
        },
        TraceEventKind::Cure => TraceEvent::Cure {
            peer: cols[0].varint_u32()?,
            residual: cols[1].varint()?,
        },
        TraceEventKind::PoisonedRepair => TraceEvent::PoisonedRepair {
            peer: cols[0].varint_u32()?,
            au: cols[1].varint_u32()?,
            poll: cols[2].varint()?,
            block: cols[3].varint()?,
            server: cols[4].varint_u32()?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_roundtrip() {
        let cases = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ];
        for v in cases {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut cur = Cursor::new(&buf);
            assert_eq!(cur.varint().unwrap(), v, "value {v}");
            assert!(cur.at_end());
        }
    }

    #[test]
    fn varint_sizes_are_compact() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 100);
        assert_eq!(buf.len(), 1);
        buf.clear();
        put_varint(&mut buf, 10_000);
        assert_eq!(buf.len(), 2);
        buf.clear();
        put_varint(&mut buf, u64::MAX);
        assert_eq!(buf.len(), 10);
    }

    #[test]
    fn overlong_varint_rejected() {
        let buf = [0xffu8; 11];
        let mut cur = Cursor::new(&buf);
        assert!(matches!(cur.varint(), Err(TraceError::BadVarint)));
    }

    #[test]
    fn strings_roundtrip() {
        let mut buf = Vec::new();
        put_str(&mut buf, "churn-storm/depart");
        put_str(&mut buf, "");
        let mut cur = Cursor::new(&buf);
        assert_eq!(cur.str().unwrap(), "churn-storm/depart");
        assert_eq!(cur.str().unwrap(), "");
        assert!(cur.at_end());
    }

    #[test]
    fn truncation_is_detected() {
        let mut buf = Vec::new();
        put_str(&mut buf, "hello");
        let mut cur = Cursor::new(&buf[..3]);
        assert!(matches!(cur.str(), Err(TraceError::Truncated)));
        let mut empty = Cursor::new(&[]);
        assert!(matches!(empty.u8(), Err(TraceError::Truncated)));
    }

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::PollStart {
                peer: 3,
                au: 1,
                poll: 900,
            },
            TraceEvent::PollOutcome {
                peer: 3,
                au: 1,
                poll: 900,
                conclusion: PollConclusion::Inconclusive,
                votes: 9,
            },
            TraceEvent::MessageSend {
                from: 10,
                to: 99,
                kind: MsgKind::RepairRequest,
                au: 0,
                poll: 17,
                suppressed: true,
            },
            TraceEvent::Admission {
                peer: 5,
                poller: 1 << 33,
                verdict: AdmissionVerdict::Refractory,
            },
            TraceEvent::Damage {
                peer: 7,
                au: 2,
                block: 499,
                was_intact: true,
            },
            TraceEvent::Repair {
                peer: 7,
                au: 2,
                poll: 31,
                block: 499,
                intact_after: false,
            },
            TraceEvent::AdversaryTimer {
                channel: 2,
                tag: u64::MAX,
            },
            TraceEvent::AdversaryAction {
                channel: 2,
                label: "sybil-ramp/escalate".into(),
                magnitude: 25,
            },
            TraceEvent::PeerJoin { peer: 101 },
            TraceEvent::PhaseMark {
                label: "admission-flood".into(),
            },
            TraceEvent::Compromise {
                peer: 42,
                corrupted: 6,
            },
            TraceEvent::Cure {
                peer: 42,
                residual: 1 << 40,
            },
            TraceEvent::PoisonedRepair {
                peer: 7,
                au: 2,
                poll: 31,
                block: 499,
                server: 42,
            },
        ]
    }

    #[test]
    fn every_event_payload_roundtrips() {
        for event in sample_events() {
            let mut buf = Vec::new();
            put_event(&mut buf, &event);
            let mut cur = Cursor::new(&buf);
            let back = get_event(&mut cur, event.kind()).unwrap();
            assert_eq!(back, event);
            assert!(cur.at_end(), "trailing bytes after {event}");
        }
    }

    #[test]
    fn field_codec_roundtrips_and_agrees_with_the_flat_codec() {
        // The sample list covers all 13 kinds; assert so a new kind can't
        // silently skip this test.
        assert_eq!(
            sample_events().len(),
            TraceEventKind::COUNT,
            "sample must cover every kind"
        );
        for event in sample_events() {
            let kind = event.kind();
            let n = field_count(kind);
            assert!(n <= MAX_FIELDS, "{kind:?}");
            let mut cols: Vec<Vec<u8>> = vec![Vec::new(); n];
            put_event_fields(&mut cols, &event);
            assert!(
                cols.iter().all(|c| !c.is_empty()),
                "{kind:?}: every declared field column must be written"
            );
            // The columns hold exactly the flat encoding's bytes,
            // redistributed: same total, and the same decoded event.
            let mut flat = Vec::new();
            put_event(&mut flat, &event);
            let total: usize = cols.iter().map(Vec::len).sum();
            assert_eq!(total, flat.len(), "{kind:?}");
            let mut cursors: Vec<Cursor<'_>> = cols.iter().map(|c| Cursor::new(c)).collect();
            let back = get_event_fields(&mut cursors, kind).unwrap();
            assert_eq!(back, event);
            assert!(
                cursors.iter().all(Cursor::at_end),
                "{kind:?}: trailing bytes in a field column"
            );
        }
    }

    #[test]
    fn unknown_payload_codes_are_reported() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 1); // peer
        put_varint(&mut buf, 2); // poller
        buf.push(99); // bogus verdict code
        let mut cur = Cursor::new(&buf);
        match get_event(&mut cur, TraceEventKind::Admission) {
            Err(TraceError::UnknownCode { field, code: 99 }) => {
                assert_eq!(field, "admission verdict");
            }
            other => panic!("expected UnknownCode, got {other:?}"),
        }
    }
}

//! The legacy flat v1 writer (`LTRC1`).
//!
//! ```text
//! magic    "LTRC1\n"
//! header   str scenario · str scale · varint seed · varint run_length_ms
//! records  kind u8 (≥1) · varint Δtime_ms · varint Δengine_seq · payload
//! end      0x00 · u64-le record count
//! trailer  32-byte SHA-256 over everything above
//! ```
//!
//! New recordings use the block-columnar [`crate::Recorder`]; this
//! writer survives so tests and benches can produce v1 fixtures, keep
//! the read path honest, and measure the v2 size and speed wins against
//! the real predecessor rather than a synthetic one. The read side
//! lives in [`crate::format`], which accepts both wires.

use std::cell::RefCell;
use std::rc::Rc;

use lockss_core::trace::{TraceEvent, TraceSink};
use lockss_crypto::sha256::sha256;
use lockss_sim::SimTime;

use crate::format::{Trace, TraceMeta, MAGIC_V1};
use crate::wire::{put_event, put_str, put_varint};

struct RecorderV1Inner {
    buf: Vec<u8>,
    prev_at: u64,
    prev_seq: u64,
    events: u64,
}

/// Records a run's event stream into the flat v1 trace format.
///
/// Shared-handle discipline matches [`crate::Recorder`]: install one
/// clone as the world's sink, keep the other to [`RecorderV1::finish`].
#[derive(Clone)]
pub struct RecorderV1 {
    inner: Rc<RefCell<RecorderV1Inner>>,
}

impl RecorderV1 {
    /// A recorder with the v1 header already encoded.
    pub fn new(meta: &TraceMeta) -> RecorderV1 {
        let mut buf = Vec::with_capacity(64 * 1024);
        buf.extend_from_slice(MAGIC_V1);
        put_str(&mut buf, &meta.scenario);
        put_str(&mut buf, &meta.scale);
        put_varint(&mut buf, meta.seed);
        put_varint(&mut buf, meta.run_length_ms);
        RecorderV1 {
            inner: Rc::new(RefCell::new(RecorderV1Inner {
                buf,
                prev_at: 0,
                prev_seq: 0,
                events: 0,
            })),
        }
    }

    /// Events recorded so far.
    pub fn events(&self) -> u64 {
        self.inner.borrow().events
    }

    /// Seals the trace: appends the end marker, the record count, and
    /// the content hash.
    pub fn finish(self) -> Trace {
        let mut inner = self.inner.borrow_mut();
        let mut bytes = std::mem::take(&mut inner.buf);
        let events = inner.events;
        drop(inner);
        bytes.push(0); // END marker
        bytes.extend_from_slice(&events.to_le_bytes());
        let digest = sha256(&bytes);
        bytes.extend_from_slice(&digest);
        Trace::from_bytes(bytes).expect("a freshly sealed v1 trace validates")
    }
}

impl TraceSink for RecorderV1 {
    fn record(&mut self, at: SimTime, seq: u64, event: &TraceEvent) {
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        inner.buf.push(event.kind().code());
        let at = at.as_millis();
        put_varint(&mut inner.buf, at - inner.prev_at);
        put_varint(&mut inner.buf, seq - inner.prev_seq);
        inner.prev_at = at;
        inner.prev_seq = seq;
        put_event(&mut inner.buf, event);
        inner.events += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TraceWire;
    use lockss_core::trace::TraceEvent;

    #[test]
    fn v1_writer_produces_a_valid_v1_trace() {
        let meta = TraceMeta {
            scenario: "baseline".into(),
            scale: "quick".into(),
            seed: 1,
            run_length_ms: 1_000,
        };
        let recorder = RecorderV1::new(&meta);
        let mut sink = recorder.clone();
        sink.record(SimTime(5), 1, &TraceEvent::PeerJoin { peer: 9 });
        let trace = recorder.finish();
        assert_eq!(trace.wire(), TraceWire::V1);
        assert_eq!(trace.events(), 1);
        assert_eq!(trace.meta().unwrap(), meta);
        let records = trace.decode_all().unwrap();
        assert_eq!(records.len(), 1);
        assert!(matches!(records[0].event, TraceEvent::PeerJoin { peer: 9 }));
    }
}

//! End-to-end tests of the observability layer's central promise: every
//! sealed artifact — scenario summaries, recorded traces, sweep
//! checkpoints — is byte-identical with telemetry on and off.
//!
//! Drives the real `lockss-sim` binary the way a user would: once plain,
//! once with `--profile --metrics-out --telemetry`, and compares the
//! bytes. Also validates the out-of-band artifacts themselves: the span
//! tree telescopes (children never exceed their parent), heartbeat JSONL
//! parses and advances monotonically, and the registry snapshot carries
//! every layer's metrics in both JSON and Prometheus text.

use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};

use lockss_experiments::sweep::HeartbeatRecord;
use lockss_sim::json;

const BIN: &str = env!("CARGO_BIN_EXE_lockss-sim");

/// Fresh scratch directory, unique per test, cleaned at entry.
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lockss-obs-{test}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Runs the binary with `dir` as its working directory (relative
/// artifact paths like `results/` land inside the scratch area).
fn run_in(dir: &Path, args: &[&str]) -> Output {
    let out = Command::new(BIN)
        .args(args)
        .current_dir(dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .expect("spawn lockss-sim");
    assert!(
        out.status.success(),
        "`{}` failed:\n{}{}",
        args.join(" "),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn read(p: &Path) -> String {
    std::fs::read_to_string(p).unwrap_or_else(|e| panic!("reading {}: {e}", p.display()))
}

fn read_bytes(p: &Path) -> Vec<u8> {
    std::fs::read(p).unwrap_or_else(|e| panic!("reading {}: {e}", p.display()))
}

/// Asserts one profile span node telescopes: `self <= total` and the
/// children's totals sum to no more than the parent's.
fn assert_telescopes(span: &json::Value) {
    let f = span.as_object("span").unwrap();
    let total = json::get(f, "total_ns")
        .unwrap()
        .as_u64("total_ns")
        .unwrap();
    let self_ns = json::get(f, "self_ns").unwrap().as_u64("self_ns").unwrap();
    assert!(self_ns <= total, "self {self_ns} > total {total}");
    let children = json::get(f, "children")
        .unwrap()
        .as_array("children")
        .unwrap();
    let sum: u64 = children
        .iter()
        .map(|c| {
            let cf = c.as_object("child").unwrap();
            json::get(cf, "total_ns")
                .unwrap()
                .as_u64("total_ns")
                .unwrap()
        })
        .sum();
    assert!(sum <= total, "children sum {sum} > parent total {total}");
    for c in children {
        assert_telescopes(c);
    }
}

#[test]
fn run_artifacts_are_byte_identical_with_observability_on() {
    let dir = scratch("run-ident");
    let plain = dir.join("plain");
    let observed = dir.join("observed");
    std::fs::create_dir_all(&plain).unwrap();
    std::fs::create_dir_all(&observed).unwrap();

    let base = [
        "run",
        "admission-flood",
        "--scale",
        "quick",
        "--seed",
        "2",
        "--record",
        "t.bin",
    ];
    run_in(&plain, &base);
    let mut obs_args = base.to_vec();
    obs_args.extend(["--profile", "--metrics-out", "metrics.json"]);
    run_in(&observed, &obs_args);

    // The sealed artifacts: recorded trace and scenario summary.
    assert_eq!(
        read_bytes(&plain.join("t.bin")),
        read_bytes(&observed.join("t.bin")),
        "recorded trace must not change under observation"
    );
    assert_eq!(
        read(&plain.join("results/scenario-admission-flood.json")),
        read(&observed.join("results/scenario-admission-flood.json")),
        "scenario summary must not change under observation"
    );

    // The out-of-band artifacts exist only where requested.
    let profile = observed.join("results/profile-admission-flood.json");
    assert!(profile.exists());
    assert!(!plain.join("results/profile-admission-flood.json").exists());

    // The span tree is well-formed and telescopes.
    let v = json::parse(&read(&profile)).expect("profile parses");
    let f = v.as_object("profile").unwrap();
    assert_eq!(
        json::get(f, "format").unwrap().as_str("format").unwrap(),
        "lockss-profile-v1"
    );
    let spans = json::get(f, "spans").unwrap().as_array("spans").unwrap();
    assert!(!spans.is_empty(), "profiled run produced no spans");
    let names: Vec<&str> = spans
        .iter()
        .map(|s| {
            json::get(s.as_object("span").unwrap(), "name")
                .unwrap()
                .as_str("name")
                .unwrap()
        })
        .collect();
    for expected in ["world-build", "simulate", "trace-seal"] {
        assert!(
            names.contains(&expected),
            "missing span {expected}: {names:?}"
        );
    }
    for s in spans {
        assert_telescopes(s);
    }

    // The registry snapshot carries protocol counters in both formats.
    let metrics = read(&observed.join("metrics.json"));
    assert!(metrics.contains("\"polls_started_total\""), "{metrics}");
    let prom = read(&observed.join("metrics.prom"));
    assert!(
        prom.contains("# TYPE polls_started_total counter"),
        "{prom}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sweep_checkpoints_are_byte_identical_with_telemetry_on() {
    let dir = scratch("sweep-ident");
    let plain_cp = dir.join("plain.json");
    // Named sweep-*.json so `sweep status` discovers it below (the plain
    // checkpoint's name keeps it out of the scan).
    let obs_cp = dir.join("sweep-baseline.json");
    let tele = dir.join("tele");

    run_in(
        &dir,
        &[
            "sweep",
            "baseline",
            "--scale",
            "quick",
            "--seeds",
            "1..4",
            "--threads",
            "2",
            "--checkpoint",
            plain_cp.to_str().unwrap(),
            "--fresh",
        ],
    );
    // Different thread count AND full observability: the checkpoint
    // bytes must still match.
    run_in(
        &dir,
        &[
            "sweep",
            "baseline",
            "--scale",
            "quick",
            "--seeds",
            "1..4",
            "--threads",
            "1",
            "--checkpoint",
            obs_cp.to_str().unwrap(),
            "--fresh",
            "--telemetry",
            tele.to_str().unwrap(),
            "--profile",
            "--metrics-out",
            dir.join("m.json").to_str().unwrap(),
        ],
    );
    assert_eq!(
        read(&plain_cp),
        read(&obs_cp),
        "sweep checkpoint must not change under observation"
    );

    // Heartbeats: every line parses, progress is monotone, and the
    // final record shows the finished sweep.
    let hb_path = tele.join("heartbeat-baseline.jsonl");
    let body = read(&hb_path);
    let records: Vec<HeartbeatRecord> = body
        .lines()
        .map(|l| HeartbeatRecord::from_line(l).expect("heartbeat line parses"))
        .collect();
    assert!(!records.is_empty());
    for pair in records.windows(2) {
        assert!(pair[1].unix_ms >= pair[0].unix_ms);
        assert!(pair[1].seeds_done >= pair[0].seeds_done);
        assert!(pair[1].polls >= pair[0].polls);
    }
    let last = records.last().unwrap();
    assert_eq!(last.seeds_done, 4);
    assert_eq!(last.seeds_total, 4);
    assert!(last.polls > 0);

    // `sweep status` reads the same directory back.
    let out = run_in(
        &dir,
        &[
            "sweep",
            "status",
            dir.to_str().unwrap(),
            "--telemetry",
            tele.to_str().unwrap(),
        ],
    );
    let rendered = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(rendered.contains("4/4"), "{rendered}");
    assert!(rendered.contains("campaign:"), "{rendered}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn trace_stats_json_round_trips_through_the_cli() {
    let dir = scratch("stats-json");
    run_in(
        &dir,
        &[
            "run", "baseline", "--scale", "quick", "--seed", "1", "--record", "t.bin",
        ],
    );
    let out = run_in(&dir, &["trace", "stats", "t.bin", "--json"]);
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    let v = json::parse(&text).expect("stats JSON parses");
    let f = v.as_object("stats").unwrap();
    assert_eq!(
        json::get(f, "format").unwrap().as_str("format").unwrap(),
        "lockss-trace-stats-v1"
    );
    assert!(json::get(f, "events").unwrap().as_u64("events").unwrap() > 0);
    let polls = json::get(f, "polls").unwrap().as_object("polls").unwrap();
    assert!(
        json::get(polls, "started")
            .unwrap()
            .as_u64("started")
            .unwrap()
            > 0
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn dispatch_passes_telemetry_through_and_logs_are_tagged() {
    let dir = scratch("dispatch-tele");
    let tele = dir.join("tele");
    let out = run_in(
        &dir,
        &[
            "sweep",
            "dispatch",
            "baseline",
            "--scale",
            "quick",
            "--seeds",
            "1..4",
            "--shards",
            "2",
            "--dir",
            dir.to_str().unwrap(),
            "--out",
            dir.join("sweep-baseline.json").to_str().unwrap(),
            "--telemetry",
            tele.to_str().unwrap(),
            "--stall-secs",
            "120",
        ],
    );
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(stdout.contains("campaign complete"), "{stdout}");

    // Workers wrote per-shard heartbeat files named by topology.
    for shard in ["s1of2", "s2of2"] {
        let hb = tele.join(format!("heartbeat-baseline-{shard}.jsonl"));
        assert!(hb.exists(), "missing {}", hb.display());
        let body = read(&hb);
        assert!(
            body.lines().all(|l| HeartbeatRecord::from_line(l).is_ok()),
            "unparseable heartbeat line in {}",
            hb.display()
        );
    }

    // Shard logs are timestamp- and topology-tagged line by line.
    let log = read(&dir.join("sweep-baseline-shard-1of2.log"));
    assert!(!log.is_empty());
    for line in log.lines() {
        assert!(
            line.starts_with('[') && line.contains(" s1/2 a1] "),
            "untagged log line: {line}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

//! Fault-injection harness for the distributed sweep fabric.
//!
//! Drives the real `lockss-sim` binary as shard worker subprocesses and
//! proves the fabric's core promise: kill any worker at any point —
//! including mid-checkpoint-write — resume it, merge the shards, and the
//! campaign report is byte-identical to an uninterrupted single-process
//! run. Also exercises every `sweep merge` negative path end-to-end,
//! asserting exit code 1 and a distinct actionable diagnostic per
//! failure mode.

use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};

use lockss_sim::rng::SimRng;

const BIN: &str = env!("CARGO_BIN_EXE_lockss-sim");
const SCENARIO: &str = "baseline";

/// Fresh scratch directory, unique per test, cleaned at entry.
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lockss-fabric-{test}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn run(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(BIN);
    cmd.args(args).stdout(Stdio::piped()).stderr(Stdio::piped());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn lockss-sim")
}

fn run_ok(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let out = run(args, envs);
    assert!(
        out.status.success(),
        "`{}` failed:\n{}{}",
        args.join(" "),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn path_str(p: &Path) -> String {
    p.to_str().expect("utf-8 path").to_string()
}

fn read(p: &Path) -> String {
    std::fs::read_to_string(p).unwrap_or_else(|e| panic!("reading {}: {e}", p.display()))
}

/// Single-process reference report for `seeds`, written to `out`.
fn single_process(seeds: &str, threads: &str, out: &Path) {
    run_ok(
        &[
            "sweep",
            SCENARIO,
            "--scale",
            "quick",
            "--seeds",
            seeds,
            "--threads",
            threads,
            "--checkpoint",
            &path_str(out),
            "--fresh",
        ],
        &[],
    );
}

fn shard_args(seeds: &str, shard: &str, checkpoint: &Path) -> Vec<String> {
    [
        "sweep",
        SCENARIO,
        "--scale",
        "quick",
        "--seeds",
        seeds,
        "--shard",
        shard,
        "--checkpoint",
        &path_str(checkpoint),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// Satellite: sequential shard workers + merge reproduce the
/// single-process bytes exactly.
#[test]
fn three_shards_merge_to_the_single_process_bytes() {
    let dir = scratch("three-shards");
    let single = dir.join("single.json");
    single_process("1..9", "3", &single);

    let mut shard_files = Vec::new();
    for i in 1..=3 {
        let ck = dir.join(format!("shard-{i}.json"));
        let args = shard_args("1..9", &format!("{i}/3"), &ck);
        run_ok(&args.iter().map(String::as_str).collect::<Vec<_>>(), &[]);
        shard_files.push(path_str(&ck));
    }

    let merged = dir.join("merged.json");
    let mut args = vec!["sweep".into(), "merge".into()];
    args.extend(shard_files);
    args.extend(["--out".into(), path_str(&merged)]);
    run_ok(&args.iter().map(String::as_str).collect::<Vec<_>>(), &[]);

    assert_eq!(read(&single), read(&merged), "merge must be byte-identical");
}

/// Satellite: kill workers at randomized points, resume each, merge —
/// still byte-identical. The kill lands wherever the scheduler puts it:
/// before the first checkpoint, between writes, or after completion.
#[test]
fn randomly_killed_workers_resume_to_identical_bytes() {
    let dir = scratch("random-kill");
    let single = dir.join("single.json");
    single_process("1..30", "2", &single);

    let mut rng = SimRng::seed_from_u64(0xfab_c1de);
    for trial in 0..4u32 {
        let victim = 1 + rng.below(2) as u64; // shard 1 or 2
        let delay_ms = rng.below(120) as u64;
        let mut shard_files = Vec::new();
        for i in 1..=2u64 {
            let ck = dir.join(format!("t{trial}-shard-{i}.json"));
            let _ = std::fs::remove_file(&ck);
            let args = shard_args("1..30", &format!("{i}/2"), &ck);
            if i == victim {
                let mut child = Command::new(BIN)
                    .args(&args)
                    .stdout(Stdio::null())
                    .stderr(Stdio::null())
                    .spawn()
                    .expect("spawn victim");
                std::thread::sleep(std::time::Duration::from_millis(delay_ms));
                let _ = child.kill();
                let _ = child.wait();
            }
            // Run (or resume) to completion.
            run_ok(&args.iter().map(String::as_str).collect::<Vec<_>>(), &[]);
            shard_files.push(path_str(&ck));
        }
        let merged = dir.join(format!("t{trial}-merged.json"));
        let mut args = vec!["sweep".into(), "merge".into()];
        args.extend(shard_files);
        args.extend(["--out".into(), path_str(&merged)]);
        run_ok(&args.iter().map(String::as_str).collect::<Vec<_>>(), &[]);
        assert_eq!(
            read(&single),
            read(&merged),
            "trial {trial}: kill of shard {victim} after {delay_ms}ms must not change bytes"
        );
    }
}

/// Satellite: a worker aborted *mid-checkpoint-write* (torn tmp file on
/// disk) resumes cleanly from the last durable checkpoint.
#[test]
fn crash_mid_checkpoint_write_resumes_cleanly() {
    let dir = scratch("mid-write-crash");
    let single = dir.join("single.json");
    single_process("1..6", "1", &single);

    let ck = dir.join("shard-1.json");
    let args = shard_args("1..6", "1/2", &ck);
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();

    // First attempt aborts while writing the checkpoint for its 2nd seed,
    // leaving a half-written `.json.tmp` behind.
    let out = run(&argv, &[("LOCKSS_SWEEP_CRASH_AFTER", "2")]);
    assert!(
        !out.status.success(),
        "the injected abort must kill the worker"
    );
    let torn = ck.with_extension("json.tmp");
    assert!(torn.exists(), "the crash hook leaves a torn tmp file");
    // The durable checkpoint (if any) must still parse: fsync-then-rename
    // means a reader never observes a half-written target.
    if ck.exists() {
        lockss_experiments::SweepReport::from_json(&read(&ck))
            .expect("the durable checkpoint survives a torn tmp write");
    }

    // Resume past the torn write, then finish the other shard and merge.
    run_ok(&argv, &[]);
    let ck2 = dir.join("shard-2.json");
    let args2 = shard_args("1..6", "2/2", &ck2);
    run_ok(&args2.iter().map(String::as_str).collect::<Vec<_>>(), &[]);
    let merged = dir.join("merged.json");
    run_ok(
        &[
            "sweep",
            "merge",
            &path_str(&ck),
            &path_str(&ck2),
            "--out",
            &path_str(&merged),
        ],
        &[],
    );
    assert_eq!(read(&single), read(&merged));
}

/// Satellite: `sweep dispatch` survives a worker that dies
/// mid-checkpoint-write — it re-dispatches the shard and the merged
/// campaign report is still byte-identical.
#[test]
fn dispatch_retries_a_crashed_shard_and_matches_single_process() {
    let dir = scratch("dispatch-crash");
    let single = dir.join("single.json");
    single_process("1..9", "3", &single);

    let out = dir.join("dispatched.json");
    let marker = dir.join("crash-marker");
    run_ok(
        &[
            "sweep",
            "dispatch",
            SCENARIO,
            "--scale",
            "quick",
            "--seeds",
            "1..9",
            "--shards",
            "3",
            "--dir",
            &path_str(&dir),
            "--out",
            &path_str(&out),
            "--fresh",
        ],
        &[
            ("LOCKSS_SWEEP_CRASH_SHARD", "2"),
            ("LOCKSS_SWEEP_CRASH_AFTER", "1"),
            ("LOCKSS_SWEEP_CRASH_ONCE", &path_str(&marker)),
        ],
    );
    assert!(
        marker.exists(),
        "the injected crash must actually have fired"
    );
    assert_eq!(read(&single), read(&out));
}

/// The jobfile's command lines are the real fabric wire protocol: run
/// them verbatim through a shell (any order) and the final merge line
/// reproduces the single-process bytes.
#[test]
fn jobfile_lines_executed_verbatim_reproduce_the_campaign() {
    let dir = scratch("jobfile");
    let single = dir.join("single.json");
    single_process("1..6", "2", &single);

    let jobs = dir.join("jobs.txt");
    run_ok(
        &[
            "sweep",
            "dispatch",
            SCENARIO,
            "--scale",
            "quick",
            "--seeds",
            "1..6",
            "--shards",
            "2",
            "--jobfile",
            &path_str(&jobs),
        ],
        &[],
    );
    let text = read(&jobs);
    let lines: Vec<&str> = text
        .lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .collect();
    assert_eq!(lines.len(), 3, "2 shard commands + 1 merge:\n{text}");
    // Shard lines in reverse order on purpose: order must not matter.
    for line in lines[..2].iter().rev().chain(&lines[2..]) {
        let status = Command::new("sh")
            .arg("-c")
            .arg(line)
            .current_dir(&dir)
            .stdout(Stdio::null())
            .status()
            .expect("run jobfile line");
        assert!(status.success(), "jobfile line failed: {line}");
    }
    let merged = dir.join(format!("results/sweep-{SCENARIO}.json"));
    assert_eq!(read(&single), read(&merged));
}

/// Asserts a `sweep merge` invocation fails with exit code 1 and a
/// diagnostic containing `needle`.
fn assert_merge_fails(files: &[&Path], needle: &str) {
    let mut args = vec!["sweep".to_string(), "merge".to_string()];
    args.extend(files.iter().map(|p| path_str(p)));
    let out = run(&args.iter().map(String::as_str).collect::<Vec<_>>(), &[]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "merge of {files:?} must exit 1 (a data error, not CLI misuse)"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("sweep merge:") && stderr.contains(needle),
        "diagnostic for {files:?} must mention '{needle}', got:\n{stderr}"
    );
}

/// Satellite: every merge negative path is a distinct, actionable
/// diagnostic — overlapping ranges, mismatched tags, truncated JSON,
/// foreign format versions, duplicates, missing shards, and
/// single-process inputs are all rejected with exit 1.
#[test]
fn merge_negative_paths_each_get_a_distinct_diagnostic() {
    let dir = scratch("merge-negative");

    // Build one honest 2-shard campaign to mutate.
    let s1 = dir.join("shard-1.json");
    let s2 = dir.join("shard-2.json");
    for (i, ck) in [(1u64, &s1), (2, &s2)] {
        let args = shard_args("1..4", &format!("{i}/2"), ck);
        run_ok(&args.iter().map(String::as_str).collect::<Vec<_>>(), &[]);
    }
    let write = |name: &str, content: &str| -> PathBuf {
        let p = dir.join(name);
        std::fs::write(&p, content).expect("write fixture");
        p
    };

    // Overlap: relabel shard 1's file as index 2 — both files now claim
    // seeds {1, 2}, and seed 1 would be averaged twice.
    let relabeled = write(
        "overlap.json",
        &read(&s1).replace("\"index\": 1", "\"index\": 2"),
    );
    assert_merge_fails(&[&s1, &relabeled], "shard seed ranges overlap");

    // Mismatched scenario tag.
    let foreign_scenario = write(
        "foreign-scenario.json",
        &read(&s2).replace(&format!("\"{SCENARIO}\""), "\"scale-10k-baseline\""),
    );
    assert_merge_fails(
        &[&s1, &foreign_scenario],
        "scenario 'scale-10k-baseline' does not match",
    );

    // Mismatched scale tag.
    let foreign_scale = write(
        "foreign-scale.json",
        &read(&s2).replace("\"quick\"", "\"paper\""),
    );
    assert_merge_fails(&[&s1, &foreign_scale], "scale 'paper' does not match");

    // Truncated file (torn write that lost its tail).
    let full = read(&s2);
    let truncated = write("truncated.json", &full[..full.len() / 2]);
    assert_merge_fails(&[&s1, &truncated], "truncated or torn write?");

    // Checkpoint from a different grammar version.
    let foreign_format = write(
        "foreign-format.json",
        &read(&s2).replace("lockss-sweep-v1", "lockss-sweep-v0"),
    );
    assert_merge_fails(&[&s1, &foreign_format], "different grammar version");

    // Same shard submitted twice.
    assert_merge_fails(&[&s1, &s1], "submitted twice");

    // Missing shard.
    assert_merge_fails(&[&s1], "missing shard(s) 2 of 2");

    // A single-process report is not a shard checkpoint.
    let single = dir.join("single.json");
    single_process("1..4", "1", &single);
    assert_merge_fails(&[&single, &s1], "single-process report");

    // An incomplete shard names its pending seeds and the resume command.
    // (Crash after the 2nd of 2 seeds: seed 1 is durably checkpointed,
    // seed 2's write is torn, so the file exists but is incomplete.)
    let killed = dir.join("killed.json");
    let args = shard_args("1..4", "1/2", &killed);
    let out = run(
        &args.iter().map(String::as_str).collect::<Vec<_>>(),
        &[("LOCKSS_SWEEP_CRASH_AFTER", "2")],
    );
    assert!(!out.status.success());
    assert_merge_fails(&[&killed, &s2], "is incomplete");
}

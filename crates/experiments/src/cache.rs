//! On-disk memoization of sweep results.
//!
//! Figures 3–5 share one pipe-stoppage sweep and Figures 6–8 one
//! admission-flood sweep; the first binary to run performs the simulations
//! and the others reuse the cached summaries. The format is a plain CSV so
//! no serialization crate is needed and the cache doubles as raw data.
//! Pass `--fresh` (or delete `results/`) to force recomputation.

use std::path::PathBuf;

use lockss_metrics::Summary;
use lockss_sim::Duration;

fn cache_path(name: &str) -> PathBuf {
    PathBuf::from("results").join(format!(".cache-{name}.csv"))
}

/// True if the user asked to ignore caches.
pub fn fresh_requested() -> bool {
    std::env::args().any(|a| a == "--fresh")
}

/// Formats an optional duration as milliseconds (empty for `None`).
fn opt_ms(d: Option<Duration>) -> String {
    d.map(|d| d.as_millis().to_string()).unwrap_or_default()
}

/// Parses an optional milliseconds column (empty means `None`; a malformed
/// value invalidates the cache).
fn parse_opt_ms(col: &str) -> Option<Option<Duration>> {
    if col.is_empty() {
        Some(None)
    } else {
        Some(Some(Duration::from_millis(col.parse().ok()?)))
    }
}

/// Saves labelled summaries.
pub fn store(name: &str, rows: &[(String, Summary)]) {
    let _ = std::fs::create_dir_all("results");
    let mut out = String::from(
        "label,afp,gap_ms,gap_p50_ms,gap_p90_ms,successes,failures,alarms,loyal_s,adv_s\n",
    );
    for (label, s) in rows {
        out.push_str(&format!(
            "{label},{},{},{},{},{},{},{},{},{}\n",
            s.access_failure_probability,
            opt_ms(s.mean_time_between_successes),
            opt_ms(s.gap_p50),
            opt_ms(s.gap_p90),
            s.successful_polls,
            s.failed_polls,
            s.alarms,
            s.loyal_effort_secs,
            s.adversary_effort_secs
        ));
    }
    let _ = std::fs::write(cache_path(name), out);
}

/// Loads labelled summaries, or `None` if absent/unreadable/stale (a cache
/// written by an older column layout simply misses and is recomputed).
pub fn load(name: &str) -> Option<Vec<(String, Summary)>> {
    if fresh_requested() {
        return None;
    }
    let text = std::fs::read_to_string(cache_path(name)).ok()?;
    let mut rows = Vec::new();
    for line in text.lines().skip(1) {
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() != 10 {
            return None;
        }
        rows.push((
            cols[0].to_string(),
            Summary {
                access_failure_probability: cols[1].parse().ok()?,
                mean_time_between_successes: parse_opt_ms(cols[2])?,
                gap_p50: parse_opt_ms(cols[3])?,
                gap_p90: parse_opt_ms(cols[4])?,
                successful_polls: cols[5].parse().ok()?,
                failed_polls: cols[6].parse().ok()?,
                alarms: cols[7].parse().ok()?,
                loyal_effort_secs: cols[8].parse().ok()?,
                adversary_effort_secs: cols[9].parse().ok()?,
            },
        ));
    }
    Some(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let rows = vec![
            (
                "a".to_string(),
                Summary {
                    access_failure_probability: 4.8e-4,
                    mean_time_between_successes: Some(Duration::from_days(90)),
                    gap_p50: Some(Duration::from_days(85)),
                    gap_p90: Some(Duration::from_days(120)),
                    successful_polls: 100,
                    failed_polls: 3,
                    alarms: 0,
                    loyal_effort_secs: 123.5,
                    adversary_effort_secs: 0.0,
                },
            ),
            (
                "b".to_string(),
                Summary {
                    access_failure_probability: 0.0,
                    mean_time_between_successes: None,
                    gap_p50: None,
                    gap_p90: None,
                    successful_polls: 0,
                    failed_polls: 0,
                    alarms: 1,
                    loyal_effort_secs: 0.0,
                    adversary_effort_secs: 9.75,
                },
            ),
        ];
        // Use a unique name to avoid collisions across test runs.
        let name = format!("test-{}", std::process::id());
        store(&name, &rows);
        let loaded = load(&name).expect("cache loads");
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].0, "a");
        assert_eq!(
            loaded[0].1.mean_time_between_successes,
            Some(Duration::from_days(90))
        );
        assert_eq!(loaded[1].1.mean_time_between_successes, None);
        assert!((loaded[1].1.adversary_effort_secs - 9.75).abs() < 1e-12);
        let _ = std::fs::remove_file(super::cache_path(&name));
    }
}

//! Figure 3: access failure probability under repeated pipe-stoppage
//! attacks of varying duration (1–180 days) and coverage (10–100%).
//!
//! Paper shape: failure grows with coverage and duration, but even 100%
//! coverage for 180 days only reaches a few 1e-3 — the system must be
//! attacked intensely, widely, and for a long time to degrade.

use lockss_experiments::sweeps::pipe_sweep;
use lockss_experiments::{save_results, Scale};
use lockss_metrics::table::sci;
use lockss_metrics::Table;

fn main() {
    let scale = Scale::from_env_and_args();
    println!(
        "Figure 3 (pipe stoppage: access failure) at scale '{}'",
        scale.label()
    );
    let points = pipe_sweep(scale);

    let mut table = Table::new(vec![
        "attack duration (days)",
        "coverage",
        "collection",
        "access failure probability",
    ]);
    for p in &points {
        table.row(vec![
            p.days.to_string(),
            format!("{:.0}%", p.coverage * 100.0),
            if p.large { "large" } else { "small" }.to_string(),
            sci(p.measured.access_failure()),
        ]);
    }
    let rendered = table.render();
    println!("{rendered}");
    save_results("fig3", &rendered, &table.to_csv());
}

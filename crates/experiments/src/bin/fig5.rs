//! Figure 5: coefficient of friction under repeated pipe-stoppage attacks.
//!
//! Paper shape: negligible (≈1) for attacks of a few days; up to ~10 for
//! long, wide attacks.

use lockss_experiments::sweeps::pipe_sweep;
use lockss_experiments::{save_results, Scale};
use lockss_metrics::table::ratio;
use lockss_metrics::Table;

fn main() {
    let scale = Scale::from_env_and_args();
    println!(
        "Figure 5 (pipe stoppage: coefficient of friction) at scale '{}'",
        scale.label()
    );
    let points = pipe_sweep(scale);

    let mut table = Table::new(vec![
        "attack duration (days)",
        "coverage",
        "collection",
        "coefficient of friction",
    ]);
    for p in &points {
        table.row(vec![
            p.days.to_string(),
            format!("{:.0}%", p.coverage * 100.0),
            if p.large { "large" } else { "small" }.to_string(),
            ratio(p.measured.friction()),
        ]);
    }
    let rendered = table.render();
    println!("{rendered}");
    save_results("fig5", &rendered, &table.to_csv());
}

//! Figure 7: delay ratio under the admission-control attack.
//!
//! Paper shape: essentially flat (≈1) at all durations and coverages —
//! refractory periods protect the victims' schedules, and known peers
//! bypass the blocked unknown/in-debt path.

use lockss_experiments::sweeps::flood_sweep;
use lockss_experiments::{save_results, Scale};
use lockss_metrics::table::ratio;
use lockss_metrics::Table;

fn main() {
    let scale = Scale::from_env_and_args();
    println!(
        "Figure 7 (admission flood: delay ratio) at scale '{}'",
        scale.label()
    );
    let points = flood_sweep(scale);

    let mut table = Table::new(vec![
        "attack duration (days)",
        "coverage",
        "collection",
        "delay ratio",
    ]);
    for p in &points {
        table.row(vec![
            p.days.to_string(),
            format!("{:.0}%", p.coverage * 100.0),
            if p.large { "large" } else { "small" }.to_string(),
            ratio(p.measured.delay_ratio()),
        ]);
    }
    let rendered = table.render();
    println!("{rendered}");
    save_results("fig7", &rendered, &table.to_csv());
}

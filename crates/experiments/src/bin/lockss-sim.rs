//! General-purpose scenario runner: build any world + attack combination
//! from the command line and print the full metric report.
//!
//! ```sh
//! cargo run --release -p lockss-experiments --bin lockss-sim -- \
//!     --peers 100 --aus 20 --years 2 --seeds 3 \
//!     --attack stoppage --coverage 0.7 --days 90
//! ```
//!
//! Attacks: `none` (default), `stoppage`, `flood`,
//! `brute-intro`, `brute-remaining`, `brute-none`.

use lockss_adversary::Defection;
use lockss_experiments::runner::{default_threads, run_batch};
use lockss_experiments::scenario::{AttackSpec, Scenario};
use lockss_experiments::Scale;
use lockss_metrics::table::{ratio, sci};
use lockss_sim::Duration;

struct Args {
    peers: usize,
    aus: usize,
    years: u64,
    seeds: u64,
    mtbf: f64,
    interval_months: u64,
    attack: String,
    coverage: f64,
    days: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        peers: 100,
        aus: 20,
        years: 2,
        seeds: 3,
        mtbf: 5.0,
        interval_months: 3,
        attack: "none".into(),
        coverage: 1.0,
        days: 90,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < argv.len() {
        let val = &argv[i + 1];
        match argv[i].as_str() {
            "--peers" => args.peers = val.parse().expect("--peers N"),
            "--aus" => args.aus = val.parse().expect("--aus N"),
            "--years" => args.years = val.parse().expect("--years N"),
            "--seeds" => args.seeds = val.parse().expect("--seeds N"),
            "--mtbf" => args.mtbf = val.parse().expect("--mtbf YEARS"),
            "--interval-months" => args.interval_months = val.parse().expect("--interval-months N"),
            "--attack" => args.attack = val.clone(),
            "--coverage" => args.coverage = val.parse().expect("--coverage F"),
            "--days" => args.days = val.parse().expect("--days N"),
            _ => {
                i += 1;
                continue;
            }
        }
        i += 2;
    }
    args
}

fn main() {
    let a = parse_args();
    let attack = match a.attack.as_str() {
        "none" => AttackSpec::None,
        "stoppage" => AttackSpec::PipeStoppage {
            coverage: a.coverage,
            days: a.days,
        },
        "flood" => AttackSpec::AdmissionFlood {
            coverage: a.coverage,
            days: a.days,
        },
        "brute-intro" => AttackSpec::BruteForce {
            defection: Defection::Intro,
        },
        "brute-remaining" => AttackSpec::BruteForce {
            defection: Defection::Remaining,
        },
        "brute-none" => AttackSpec::BruteForce {
            defection: Defection::None_,
        },
        other => {
            eprintln!("unknown attack '{other}'");
            std::process::exit(2);
        }
    };

    let mut scenario = Scenario::attacked(Scale::Default, a.aus, attack);
    scenario.cfg.n_peers = a.peers;
    scenario.cfg.mtbf_years = a.mtbf;
    scenario.cfg.protocol.poll_interval = Duration::MONTH * a.interval_months;
    scenario.run_length = Duration::YEAR * a.years;

    let mut baseline = scenario.clone();
    baseline.attack = AttackSpec::None;

    println!(
        "scenario: {} peers x {} AUs, {}y, interval {}, mtbf {} disk-years, attack {}",
        a.peers,
        a.aus,
        a.years,
        scenario.cfg.protocol.poll_interval,
        a.mtbf,
        attack.label(),
    );
    println!(
        "running {} seed(s) on {} threads...",
        a.seeds,
        default_threads()
    );

    let jobs = if attack == AttackSpec::None {
        vec![scenario.clone()]
    } else {
        vec![scenario.clone(), baseline]
    };
    let out = run_batch(&jobs, a.seeds, default_threads());
    let attacked = &out[0];
    let base = out.get(1).unwrap_or(attacked);

    println!();
    println!(
        "access failure probability  {}",
        sci(attacked.access_failure_probability)
    );
    if let Some(g) = attacked.mean_time_between_successes {
        println!("mean gap between successes  {g}");
    }
    println!(
        "poll outcomes               {} ok / {} failed / {} alarms",
        attacked.successful_polls, attacked.failed_polls, attacked.alarms
    );
    println!(
        "loyal effort                {:.0} CPU-s",
        attacked.loyal_effort_secs
    );
    if attack != AttackSpec::None {
        println!(
            "adversary effort            {:.0} CPU-s",
            attacked.adversary_effort_secs
        );
        println!(
            "delay ratio                 {}",
            ratio(attacked.delay_ratio(base))
        );
        println!(
            "coefficient of friction     {}",
            ratio(attacked.coefficient_of_friction(base))
        );
        println!(
            "cost ratio                  {}",
            ratio(attacked.cost_ratio())
        );
    }
}

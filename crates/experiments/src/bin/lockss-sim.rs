//! Registry-driven scenario runner.
//!
//! Every runnable world — baselines, the paper's figure points, the
//! dynamic-environment attacks, and composite campaigns — is a named entry
//! in the [`ScenarioRegistry`]; this binary lists, describes, and runs
//! them:
//!
//! ```sh
//! cargo run --release --bin lockss-sim -- list
//! cargo run --release --bin lockss-sim -- describe stoppage-then-flood
//! cargo run --release --bin lockss-sim -- run churn-storm --scale quick --seed 1 --json
//! ```
//!
//! `run` executes the scenario (plus its matched no-attack baseline when an
//! attack is installed, for the §6.1 ratio metrics), prints the metric
//! report, and writes a JSON summary to `results/scenario-<name>.json`.
//! Output is a pure function of `(name, scale, seeds)` — the same
//! invocation reproduces the same bytes.

use lockss_experiments::runner::{default_threads, run_batch, run_once, run_once_with_phases};
use lockss_experiments::{Scale, ScenarioRegistry};
use lockss_metrics::table::{ratio, sci};
use lockss_metrics::{PhaseSummary, Summary, Table};
use lockss_sim::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: lockss-sim <command> [options]\n\
         \n\
         commands:\n\
         \x20 list                     all registered scenarios\n\
         \x20 describe <name>          one scenario in detail\n\
         \x20 run <name>               run a scenario and report the metrics\n\
         \n\
         options:\n\
         \x20 --scale <quick|default|paper>   experiment scale (or LOCKSS_SCALE)\n\
         \x20 --seed <N>                      run exactly one seed\n\
         \x20 --seeds <K>                     run seeds 1..=K (default: the scale's)\n\
         \x20 --json                          print the JSON summary to stdout"
    );
    std::process::exit(2);
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = ScenarioRegistry::standard();
    let scale = Scale::from_env_and_args();
    match args.first().map(String::as_str) {
        Some("list") => list(&registry, scale),
        Some("describe") => {
            let name = args.get(1).cloned().unwrap_or_else(|| usage());
            describe(&registry, &name, scale);
        }
        Some("run") => {
            let name = args.get(1).cloned().unwrap_or_else(|| usage());
            let seeds: Vec<u64> = if let Some(s) = flag_value(&args, "--seed") {
                vec![s.parse().expect("--seed N")]
            } else {
                let k: u64 = flag_value(&args, "--seeds")
                    .map(|s| s.parse().expect("--seeds K"))
                    .unwrap_or_else(|| scale.seeds());
                (1..=k).collect()
            };
            if seeds.is_empty() {
                eprintln!("--seeds must be at least 1");
                std::process::exit(2);
            }
            let json = args.iter().any(|a| a == "--json");
            run(&registry, &name, scale, &seeds, json);
        }
        _ => usage(),
    }
}

fn resolve<'r>(
    registry: &'r ScenarioRegistry,
    name: &str,
) -> &'r lockss_experiments::ScenarioEntry {
    registry.get(name).unwrap_or_else(|| {
        eprintln!("unknown scenario '{name}'; `lockss-sim list` shows the registry");
        std::process::exit(2);
    })
}

fn list(registry: &ScenarioRegistry, scale: Scale) {
    println!(
        "{} registered scenarios (scale '{}'):\n",
        registry.len(),
        scale.label()
    );
    let mut table = Table::new(vec!["scenario", "paper", "description"]);
    for e in registry.entries() {
        table.row(vec![e.name, e.paper_ref, e.description]);
    }
    print!("{}", table.render());
}

fn describe(registry: &ScenarioRegistry, name: &str, scale: Scale) {
    let entry = resolve(registry, name);
    let s = entry.build(scale);
    println!("scenario     {}", entry.name);
    println!("paper        {}", entry.paper_ref);
    println!("description  {}", entry.description);
    println!("attack       {}", s.attack.label());
    println!(
        "world        {} peers x {} AUs, mtbf {} disk-years, poll interval {}",
        s.cfg.n_peers, s.cfg.n_aus, s.cfg.mtbf_years, s.cfg.protocol.poll_interval
    );
    println!(
        "run          {} at scale '{}', {} seed(s)",
        s.run_length,
        scale.label(),
        scale.seeds()
    );
}

fn run(registry: &ScenarioRegistry, name: &str, scale: Scale, seeds: &[u64], json_out: bool) {
    let entry = resolve(registry, name);
    let scenario = entry.build(scale);
    let attacked_label = scenario.attack.label();
    println!(
        "running '{}' at scale '{}' ({} seed(s), {} threads): {}",
        entry.name,
        scale.label(),
        seeds.len(),
        default_threads(),
        attacked_label,
    );

    // Matched baseline for the ratio metrics, skipped for baselines.
    let jobs = if scenario.attack.is_none() {
        vec![scenario.clone()]
    } else {
        vec![scenario.clone(), scenario.matched_baseline()]
    };
    // run_batch means over a contiguous 1..=K seed range; an explicit
    // --seed N runs that single seed directly. The per-phase breakdown is
    // per-seed, reported for the first seed: free in the single-seed path,
    // one extra (composite-only) run in the batch path.
    let (attacked, baseline, phases) = if seeds.len() == 1 {
        let (a, phases) = run_once_with_phases(&jobs[0], seeds[0]);
        let b = jobs.get(1).map(|j| run_once(j, seeds[0]));
        (a, b, phases)
    } else {
        let out = run_batch(&jobs, seeds.len() as u64, default_threads());
        let mut it = out.into_iter();
        let a = it.next().expect("attacked summary");
        let phases = if scenario.attack.is_composite() {
            run_once_with_phases(&scenario, seeds[0]).1
        } else {
            Vec::new()
        };
        (a, it.next(), phases)
    };
    let base = baseline.as_ref().unwrap_or(&attacked);

    println!();
    println!(
        "access failure probability  {}",
        sci(attacked.access_failure_probability)
    );
    if let Some(g) = attacked.mean_time_between_successes {
        println!("mean gap between successes  {g}");
    }
    println!(
        "poll outcomes               {} ok / {} failed / {} alarms",
        attacked.successful_polls, attacked.failed_polls, attacked.alarms
    );
    println!(
        "loyal effort                {:.0} CPU-s",
        attacked.loyal_effort_secs
    );
    if !scenario.attack.is_none() {
        println!(
            "adversary effort            {:.0} CPU-s",
            attacked.adversary_effort_secs
        );
        println!(
            "delay ratio                 {}",
            ratio(attacked.delay_ratio(base))
        );
        println!(
            "coefficient of friction     {}",
            ratio(attacked.coefficient_of_friction(base))
        );
        println!(
            "cost ratio                  {}",
            ratio(attacked.cost_ratio())
        );
    }
    if !phases.is_empty() {
        println!("\nper-phase breakdown (seed {}):", seeds[0]);
        let mut table = Table::new(vec![
            "phase",
            "from",
            "to",
            "access failure",
            "ok",
            "failed",
            "alarms",
            "loyal CPU-s",
            "adv CPU-s",
        ]);
        for p in &phases {
            table.row(vec![
                p.label.clone(),
                format!("{:.0}d", p.start.as_days_f64()),
                format!("{:.0}d", p.end.as_days_f64()),
                sci(p.access_failure_probability),
                p.successful_polls.to_string(),
                p.failed_polls.to_string(),
                p.alarms.to_string(),
                format!("{:.0}", p.loyal_effort_secs),
                format!("{:.0}", p.adversary_effort_secs),
            ]);
        }
        print!("{}", table.render());
    }

    let json = render_json(
        entry.name,
        entry.paper_ref,
        scale,
        seeds,
        &attacked_label,
        &attacked,
        baseline.as_ref(),
        &phases,
    );
    let path = format!("results/scenario-{}.json", entry.name);
    if std::fs::create_dir_all("results").is_ok() && std::fs::write(&path, &json).is_ok() {
        println!("\nwrote {path}");
    }
    if json_out {
        println!("{json}");
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_opt(v: Option<f64>) -> String {
    v.map(json_f64).unwrap_or_else(|| "null".to_string())
}

fn json_duration(d: Option<Duration>) -> String {
    d.map(|d| d.as_millis().to_string())
        .unwrap_or_else(|| "null".to_string())
}

fn summary_json(s: &Summary) -> String {
    format!(
        "{{\"access_failure_probability\": {}, \"mean_gap_ms\": {}, \
         \"successful_polls\": {}, \"failed_polls\": {}, \"alarms\": {}, \
         \"loyal_effort_secs\": {}, \"adversary_effort_secs\": {}}}",
        json_f64(s.access_failure_probability),
        json_duration(s.mean_time_between_successes),
        s.successful_polls,
        s.failed_polls,
        s.alarms,
        json_f64(s.loyal_effort_secs),
        json_f64(s.adversary_effort_secs),
    )
}

fn phase_json(p: &PhaseSummary) -> String {
    format!(
        "{{\"label\": \"{}\", \"start_ms\": {}, \"end_ms\": {}, \
         \"access_failure_probability\": {}, \"successful_polls\": {}, \
         \"failed_polls\": {}, \"alarms\": {}, \"loyal_effort_secs\": {}, \
         \"adversary_effort_secs\": {}}}",
        p.label,
        p.start.as_millis(),
        p.end.as_millis(),
        json_f64(p.access_failure_probability),
        p.successful_polls,
        p.failed_polls,
        p.alarms,
        json_f64(p.loyal_effort_secs),
        json_f64(p.adversary_effort_secs),
    )
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    name: &str,
    paper_ref: &str,
    scale: Scale,
    seeds: &[u64],
    attack_label: &str,
    attacked: &Summary,
    baseline: Option<&Summary>,
    phases: &[PhaseSummary],
) -> String {
    let seed_list: Vec<String> = seeds.iter().map(u64::to_string).collect();
    let phase_list: Vec<String> = phases.iter().map(phase_json).collect();
    let base_json = baseline
        .map(summary_json)
        .unwrap_or_else(|| "null".to_string());
    let ratios = match baseline {
        Some(b) => format!(
            "{{\"delay_ratio\": {}, \"coefficient_of_friction\": {}, \"cost_ratio\": {}}}",
            json_opt(attacked.delay_ratio(b)),
            json_opt(attacked.coefficient_of_friction(b)),
            json_opt(attacked.cost_ratio()),
        ),
        None => "null".to_string(),
    };
    format!(
        "{{\n  \"scenario\": \"{name}\",\n  \"paper_ref\": \"{paper_ref}\",\n  \
         \"scale\": \"{}\",\n  \"seeds\": [{}],\n  \"attack\": \"{attack_label}\",\n  \
         \"summary\": {},\n  \"baseline\": {base_json},\n  \"ratios\": {ratios},\n  \
         \"phases\": [{}]\n}}\n",
        scale.label(),
        seed_list.join(", "),
        summary_json(attacked),
        phase_list.join(", "),
    )
}

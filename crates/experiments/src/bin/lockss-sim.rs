//! Registry-driven scenario runner.
//!
//! Every runnable world — baselines, the paper's figure points, the
//! dynamic-environment attacks, and composite campaigns — is a named entry
//! in the [`ScenarioRegistry`]; this binary lists, describes, and runs
//! them:
//!
//! ```sh
//! cargo run --release --bin lockss-sim -- list
//! cargo run --release --bin lockss-sim -- describe stoppage-then-flood
//! cargo run --release --bin lockss-sim -- run churn-storm --scale quick --seed 1 --json
//! cargo run --release --bin lockss-sim -- run --file examples/campaign.json --scale quick
//! cargo run --release --bin lockss-sim -- run baseline --scale quick --record t.bin
//! cargo run --release --bin lockss-sim -- validate scenarios/*.json
//! cargo run --release --bin lockss-sim -- fuzz --seeds 1..200
//! cargo run --release --bin lockss-sim -- replay t.bin
//! cargo run --release --bin lockss-sim -- trace diff a.bin b.bin
//! cargo run --release --bin lockss-sim -- trace stats traces/*.bin
//! cargo run --release --bin lockss-sim -- trace convert old-v1.bin new-v2.bin
//! cargo run --release --bin lockss-sim -- trace export t.bin --csv timeline.csv
//! cargo run --release --bin lockss-sim -- sweep baseline --record traces/
//! ```
//!
//! `run` executes the scenario (plus its matched no-attack baseline when an
//! attack is installed, for the §6.1 ratio metrics), prints the metric
//! report, and writes a JSON summary to `results/scenario-<name>.json`.
//! Output is a pure function of `(name, scale, seeds)` — the same
//! invocation reproduces the same bytes, which is what makes the trace
//! verbs sound: `--record` captures the full causal event stream (one
//! file per `run`, a directory of per-seed traces per `sweep`), `replay`
//! re-drives the recorded scenario and verifies event-for-event
//! equivalence (a perturbed `--seed` shows the first divergence instead),
//! `trace diff` aligns two recordings, `trace stats` rebuilds
//! per-poll/per-phase timelines (aggregating across many traces), `trace
//! convert` migrates `LTRC1` recordings to the block-columnar `LTRC2`
//! wire, and `trace export` renders a CSV timeline. The analytics decode
//! blocks on a worker pool and render byte-identical output at any
//! `--threads` count.

use lockss_experiments::fuzz::run_fuzz;
use lockss_experiments::obs::{ObsSession, SweepObs, Telemetry};
use lockss_experiments::runner::{
    default_threads, replay_once, run_batch_observed, run_once_observed,
    run_once_recorded_observed, run_once_with_stats, RunStats,
};
use lockss_experiments::sweep::{
    self, campaign_status, dispatch, jobfile, load_checkpoint, merge_files, parse_seed_range,
    parse_shard_arg, render_status, run_sweep_observed, run_sweep_shard_observed, DispatchPlan,
    ShardTag,
};
use lockss_experiments::{
    run_recovery_study, RecoveryStudy, Scale, ScenarioEntry, ScenarioRegistry, ScenarioSpec,
};
use lockss_metrics::table::{ratio, sci};
use lockss_metrics::{PhaseSummary, Summary, Table};
use lockss_obs::{unix_ms_now, Profiler};
use lockss_trace::{
    diff_traces_threaded, export_csv, trace_stats_threaded, AggregateStats, Trace, TraceMeta,
};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

fn usage() -> ! {
    eprintln!(
        "usage: lockss-sim <command> [options]\n\
         \n\
         commands:\n\
         \x20 list [--names]           all registered scenarios (--names: bare names)\n\
         \x20 describe <name>          one scenario in detail\n\
         \x20 run <name>               run a scenario and report the metrics\n\
         \x20 run --file <path>        run a declarative scenario file instead of a\n\
         \x20                          registered name\n\
         \x20 validate <path>...       check scenario files against the spec grammar;\n\
         \x20                          errors carry line/field context, exits 1 on any\n\
         \x20 fuzz                     generate + run random campaigns under the three\n\
         \x20                          oracles (round-trip, accounting, replay); shrunk\n\
         \x20                          reproducers land in --out on violation\n\
         \x20 sweep <name>             run a seed sweep on a worker pool; the merged\n\
         \x20                          report is byte-identical for any --threads and\n\
         \x20                          resumes from --checkpoint after interruption;\n\
         \x20                          --shard i/N runs only the i-th disjoint slice\n\
         \x20                          of the seed range and tags the checkpoint with\n\
         \x20                          the topology\n\
         \x20 sweep merge <files>...   validate a set of shard checkpoints (disjoint,\n\
         \x20                          complete, same campaign) and write the merged\n\
         \x20                          report — byte-identical to a single-process\n\
         \x20                          run; any topology violation exits 1\n\
         \x20 sweep dispatch <name>    fan --shards N worker subprocesses out over\n\
         \x20                          the seed range with retry + backoff, straggler\n\
         \x20                          re-dispatch via heartbeat/checkpoint freshness,\n\
         \x20                          and a final validated merge; --jobfile writes\n\
         \x20                          the per-shard command lines instead of running\n\
         \x20 sweep status <dir>       render campaign progress from the checkpoints\n\
         \x20                          (and heartbeat telemetry) under <dir>\n\
         \x20 sweep recovery           mobile-takeover recovery threshold study: one\n\
         \x20                          row per --budgets entry with time-to-heal\n\
         \x20                          p50/p90 and a heals/data-loss verdict over\n\
         \x20                          --seeds; byte-identical for any --threads;\n\
         \x20                          --attack-days / --heal-window reshape the\n\
         \x20                          campaign; report lands at --out (default\n\
         \x20                          results/recovery-threshold.txt)\n\
         \x20 replay <trace>           re-run a recorded trace's scenario and verify\n\
         \x20                          event-for-event equivalence\n\
         \x20 trace diff <a> <b>       align two traces (either wire) and summarize\n\
         \x20                          where they fork; blocks decode in parallel\n\
         \x20 trace stats <trace>...   per-poll/per-phase timelines from one trace, or\n\
         \x20                          an aggregate table over many (e.g. a recorded\n\
         \x20                          sweep directory); --json: machine-readable\n\
         \x20 trace convert <in> <out> rewrite a trace in the block-columnar LTRC2\n\
         \x20                          wire (LTRC1 stays readable everywhere)\n\
         \x20 trace export <trace>     dense CSV timeline of the event stream\n\
         \x20                          (--csv <path>: write instead of stdout;\n\
         \x20                          --bucket-days <N>: row width, default 1)\n\
         \x20 bench diff <base> <new>..  compare bench reports mean-vs-mean with a\n\
         \x20                          noise band; --gate exits 1 on a >25%\n\
         \x20                          regression of the named hot benches;\n\
         \x20                          --gate-pct N tightens the limit to N%, and\n\
         \x20                          --gate-bench <glob> (repeatable) gates only\n\
         \x20                          the named benches\n\
         \n\
         options:\n\
         \x20 --scale <quick|default|paper>   experiment scale (or LOCKSS_SCALE)\n\
         \x20 --seed <N>                      run exactly one seed (replay: perturb\n\
         \x20                                 the recorded seed to find the fork)\n\
         \x20 --seeds <K>                     run seeds 1..=K (default: the scale's);\n\
         \x20                                 sweep also accepts a range A..B\n\
         \x20 --threads <N>                   sweep worker threads (default: all cores)\n\
         \x20 --checkpoint <path>             sweep: resumable checkpoint/report path\n\
         \x20                                 (default results/sweep-<name>.json, or\n\
         \x20                                 ...-shard-<i>of<N>.json with --shard)\n\
         \x20 --fresh                         sweep: ignore an existing checkpoint\n\
         \x20                                 and recompute every seed\n\
         \x20 --shard <i/N>                   sweep: run the i-th of N disjoint seed\n\
         \x20                                 slices (1-based)\n\
         \x20 --shards <N>                    dispatch: shard count (default: cores)\n\
         \x20 --out <path>                    merge/dispatch: merged report path\n\
         \x20                                 (default results/sweep-<name>.json)\n\
         \x20 --dir <path>                    dispatch: shard checkpoint/log directory\n\
         \x20                                 (default results)\n\
         \x20 --jobfile <path>                dispatch: write per-shard command lines\n\
         \x20                                 to <path> instead of running them\n\
         \x20 --retries <N>                   dispatch: re-dispatches per shard\n\
         \x20                                 (default 3)\n\
         \x20 --backoff-ms <N>                dispatch: base retry backoff, doubling\n\
         \x20                                 per attempt (default 250)\n\
         \x20 --stall-secs <N>                dispatch: kill + re-dispatch a worker\n\
         \x20                                 making no heartbeat/checkpoint progress\n\
         \x20                                 this long (default: off)\n\
         \x20 --profile                       run/sweep: time span trees (world build,\n\
         \x20                                 simulate, trace seal, worker chunks) and\n\
         \x20                                 write results/profile-<name>.json\n\
         \x20 --metrics-out <path>            run/sweep: snapshot the metrics registry\n\
         \x20                                 as JSON at <path> plus Prometheus text\n\
         \x20                                 at <path stem>.prom\n\
         \x20 --telemetry <dir>               sweep: append heartbeat JSONL records\n\
         \x20                                 under <dir> every ~2s; dispatch: pass\n\
         \x20                                 through to workers and prefer heartbeat\n\
         \x20                                 freshness for stall detection; status:\n\
         \x20                                 heartbeat directory when it differs from\n\
         \x20                                 the checkpoint directory\n\
         \x20 --mem-report                    print peak RSS and arena/table occupancy\n\
         \x20 --record <path>                 run: record the run's event trace (one\n\
         \x20                                 seed); sweep: directory for per-seed\n\
         \x20                                 traces (trace-<name>-s<seed>.bin)\n\
         \x20 --threads <N>                   trace stats/diff/export: decoder threads\n\
         \x20                                 (output is identical at any count)\n\
         \x20 --out <dir>                     fuzz: reproducer directory (default\n\
         \x20                                 results/fuzz)\n\
         \x20 --json                          print the JSON summary to stdout"
    );
    std::process::exit(2);
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = ScenarioRegistry::standard();
    let scale = Scale::from_env_and_args();
    match args.first().map(String::as_str) {
        Some("list") => {
            if args.iter().any(|a| a == "--names") {
                for name in registry.names() {
                    println!("{name}");
                }
            } else {
                list(&registry, scale);
            }
        }
        Some("describe") => {
            let name = args.get(1).cloned().unwrap_or_else(|| usage());
            describe(&registry, &name, scale);
        }
        Some("run") => {
            let entry = if let Some(path) = flag_value(&args, "--file") {
                load_entry(&path)
            } else {
                let name = args.get(1).cloned().unwrap_or_else(|| usage());
                if name.starts_with("--") {
                    usage();
                }
                resolve(&registry, &name).clone()
            };
            let seeds: Vec<u64> = if let Some(s) = flag_value(&args, "--seed") {
                vec![s.parse().expect("--seed N")]
            } else {
                let k: u64 = flag_value(&args, "--seeds")
                    .map(|s| s.parse().expect("--seeds K"))
                    .unwrap_or_else(|| scale.seeds());
                (1..=k).collect()
            };
            if seeds.is_empty() {
                eprintln!("--seeds must be at least 1");
                std::process::exit(2);
            }
            let json = args.iter().any(|a| a == "--json");
            let record = flag_value(&args, "--record");
            if record.is_some() && seeds.len() != 1 {
                eprintln!("--record captures exactly one run; pass --seed N (or --seeds 1)");
                std::process::exit(2);
            }
            let profile = args.iter().any(|a| a == "--profile");
            let metrics_out = flag_value(&args, "--metrics-out");
            run(
                &entry,
                scale,
                &seeds,
                json,
                record.as_deref(),
                profile,
                metrics_out.as_deref(),
            );
            if args.iter().any(|a| a == "--mem-report") {
                mem_report(&entry.build(scale), seeds[0]);
            }
        }
        Some("validate") => {
            let paths: Vec<&String> = args[1..].iter().filter(|a| !a.starts_with("--")).collect();
            if paths.is_empty() {
                usage();
            }
            validate(&paths);
        }
        Some("fuzz") => {
            let seeds = match flag_value(&args, "--seeds") {
                Some(arg) => parse_seed_range(&arg).unwrap_or_else(|e| fail(&e)),
                None => (1..=50).collect(),
            };
            let out = flag_value(&args, "--out").unwrap_or_else(|| "results/fuzz".to_string());
            fuzz(&seeds, &out);
        }
        Some("sweep") => match args.get(1).map(String::as_str) {
            Some("merge") => {
                let files: Vec<PathBuf> = args[2..]
                    .iter()
                    .take_while(|a| !a.starts_with("--"))
                    .map(PathBuf::from)
                    .collect();
                if files.is_empty() {
                    usage();
                }
                let out = flag_value(&args, "--out");
                let json = args.iter().any(|a| a == "--json");
                sweep_merge(&files, out.as_deref(), json);
            }
            Some("dispatch") => {
                let name = args.get(2).cloned().unwrap_or_else(|| usage());
                if name.starts_with("--") {
                    usage();
                }
                sweep_dispatch(&registry, &name, scale, &args);
            }
            Some("status") => {
                let dir = args.get(2).cloned().unwrap_or_else(|| usage());
                if dir.starts_with("--") {
                    usage();
                }
                let telemetry = flag_value(&args, "--telemetry").unwrap_or_else(|| dir.clone());
                sweep_status(Path::new(&dir), Path::new(&telemetry));
            }
            Some("recovery") => {
                sweep_recovery(&args);
            }
            Some(name) if !name.starts_with("--") => {
                let name = name.to_string();
                let seeds = match flag_value(&args, "--seeds") {
                    Some(arg) => parse_seed_range(&arg).unwrap_or_else(|e| fail(&e)),
                    None => (1..=scale.seeds()).collect(),
                };
                let shard = flag_value(&args, "--shard").map(|arg| {
                    let (index, count) = parse_shard_arg(&arg).unwrap_or_else(|e| fail(&e));
                    ShardTag::new(index, count, seeds.clone()).unwrap_or_else(|e| fail(&e))
                });
                let threads: usize = flag_value(&args, "--threads")
                    .map(|s| s.parse().expect("--threads N"))
                    .unwrap_or_else(default_threads);
                let checkpoint = flag_value(&args, "--checkpoint");
                let fresh = args.iter().any(|a| a == "--fresh");
                let json = args.iter().any(|a| a == "--json");
                let mem = args.iter().any(|a| a == "--mem-report");
                let obs = SweepObsFlags {
                    profile: args.iter().any(|a| a == "--profile"),
                    metrics_out: flag_value(&args, "--metrics-out"),
                    telemetry: flag_value(&args, "--telemetry"),
                };
                let record = flag_value(&args, "--record").map(PathBuf::from);
                sweep_cmd(
                    &registry,
                    &name,
                    scale,
                    &seeds,
                    shard,
                    threads,
                    checkpoint.as_deref(),
                    fresh,
                    json,
                    mem,
                    &obs,
                    record.as_deref(),
                );
            }
            _ => usage(),
        },
        Some("replay") => {
            let path = args.get(1).cloned().unwrap_or_else(|| usage());
            let seed = flag_value(&args, "--seed").map(|s| s.parse().expect("--seed N"));
            replay(&registry, &path, seed);
        }
        Some("bench") => match args.get(1).map(String::as_str) {
            Some("diff") => {
                // Flag values ("2", "world/simulate*") must not be
                // mistaken for report files, so walk the args by hand.
                let mut files: Vec<String> = Vec::new();
                let mut gate = false;
                let mut gate_pct: Option<f64> = None;
                let mut gate_benches: Vec<String> = Vec::new();
                let mut i = 2;
                while i < args.len() {
                    match args[i].as_str() {
                        "--gate" => gate = true,
                        "--gate-pct" => {
                            i += 1;
                            let v = args
                                .get(i)
                                .and_then(|s| s.parse::<f64>().ok())
                                .filter(|p| p.is_finite() && *p > 0.0)
                                .unwrap_or_else(|| fail("--gate-pct wants a percentage > 0"));
                            gate_pct = Some(v);
                        }
                        "--gate-bench" => {
                            i += 1;
                            let v = args
                                .get(i)
                                .cloned()
                                .unwrap_or_else(|| fail("--gate-bench wants a bench name or glob"));
                            gate_benches.push(v);
                        }
                        a if a.starts_with("--") => usage(),
                        a => files.push(a.to_string()),
                    }
                    i += 1;
                }
                let (base, news) = match files.split_first() {
                    Some((base, news)) if !news.is_empty() => (base, news),
                    _ => usage(),
                };
                // A tightened limit or an explicit bench list implies gating.
                let gate = gate || gate_pct.is_some() || !gate_benches.is_empty();
                let threshold = gate_pct.map(|p| p / 100.0).unwrap_or(0.25);
                bench_diff(base, news, gate, threshold, &gate_benches);
            }
            _ => usage(),
        },
        Some("trace") => match args.get(1).map(String::as_str) {
            Some("diff") => {
                let paths = operands(&args[2..], &["--threads"]);
                let [a, b] = paths.as_slice() else { usage() };
                let diff =
                    diff_traces_threaded(&load_trace(a), &load_trace(b), trace_threads(&args))
                        .unwrap_or_else(|e| fail(&format!("diffing: {e}")));
                print!("{diff}");
            }
            Some("stats") => {
                let paths = operands(&args[2..], &["--threads"]);
                if paths.is_empty() {
                    usage();
                }
                let threads = trace_threads(&args);
                let json = args.iter().any(|a| a == "--json");
                if let [path] = paths.as_slice() {
                    let stats = trace_stats_threaded(&load_trace(path), threads)
                        .unwrap_or_else(|e| fail(&format!("stats: {e}")));
                    if json {
                        print!("{}", stats.to_json());
                    } else {
                        print!("{stats}");
                    }
                } else {
                    let per_trace = paths
                        .iter()
                        .map(|path| {
                            let stats = trace_stats_threaded(&load_trace(path), threads)
                                .unwrap_or_else(|e| fail(&format!("stats: {path}: {e}")));
                            (path.clone(), stats)
                        })
                        .collect();
                    let agg = AggregateStats::new(per_trace);
                    if json {
                        print!("{}", agg.to_json());
                    } else {
                        print!("{agg}");
                    }
                }
            }
            Some("convert") => {
                let paths = operands(&args[2..], &[]);
                let [input, output] = paths.as_slice() else {
                    usage()
                };
                trace_convert(input, output);
            }
            Some("export") => {
                let paths = operands(&args[2..], &["--threads", "--csv", "--bucket-days"]);
                let [path] = paths.as_slice() else { usage() };
                let bucket_days: u64 = flag_value(&args, "--bucket-days")
                    .map(|s| {
                        s.parse()
                            .unwrap_or_else(|_| fail("--bucket-days wants a day count"))
                    })
                    .unwrap_or(1);
                let csv = export_csv(&load_trace(path), trace_threads(&args), bucket_days)
                    .unwrap_or_else(|e| fail(&format!("exporting: {e}")));
                match flag_value(&args, "--csv") {
                    Some(out) => {
                        if let Some(dir) = Path::new(&out).parent() {
                            let _ = std::fs::create_dir_all(dir);
                        }
                        std::fs::write(&out, &csv)
                            .unwrap_or_else(|e| fail(&format!("writing {out}: {e}")));
                        println!("wrote {out} ({} rows)", csv.lines().count() - 1);
                    }
                    None => print!("{csv}"),
                }
            }
            _ => usage(),
        },
        _ => usage(),
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("lockss-sim: {msg}");
    std::process::exit(2);
}

/// Loads a declarative scenario file as a runnable entry, exiting with
/// the spec error (line/field context included) on a bad file.
fn load_entry(path: &str) -> ScenarioEntry {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("reading {path}: {e}")));
    let spec = ScenarioSpec::from_json(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
    spec.validate()
        .unwrap_or_else(|e| fail(&format!("{path}: {e}")));
    ScenarioEntry::new(spec)
}

/// Checks each scenario file against the spec grammar and semantic
/// validation, printing one line per file. Exits 1 if any file fails.
fn validate(paths: &[&String]) {
    let mut bad = 0usize;
    for path in paths {
        let verdict = std::fs::read_to_string(path.as_str())
            .map_err(|e| format!("{e}"))
            .and_then(|text| {
                let spec = ScenarioSpec::from_json(&text).map_err(|e| format!("{e}"))?;
                spec.validate().map_err(|e| e.to_string())?;
                Ok(spec)
            });
        match verdict {
            Ok(spec) => println!("{path}: ok ({})", spec.name),
            Err(e) => {
                println!("{path}: {e}");
                bad += 1;
            }
        }
    }
    if bad > 0 {
        eprintln!("{bad} of {} file(s) failed validation", paths.len());
        std::process::exit(1);
    }
}

/// Generates and runs one random campaign per seed under the three
/// oracles, writing a shrunk reproducer spec per violation. Exits 1 if
/// any oracle fired.
fn fuzz(seeds: &[u64], out_dir: &str) {
    println!(
        "fuzzing {} campaign(s) (seeds {}..{}), reproducers to {out_dir}/",
        seeds.len(),
        seeds.first().copied().unwrap_or(0),
        seeds.last().copied().unwrap_or(0),
    );
    let outcome = run_fuzz(seeds, |line| println!("  {line}"));
    println!(
        "\n{} campaign(s): {} coverage signature(s), {} corpus mutation(s), \
         {} poll(s) concluded, {} violation(s)",
        outcome.campaigns,
        outcome.signatures,
        outcome.mutated,
        outcome.polls_observed,
        outcome.failures.len()
    );
    if outcome.polls_observed == 0 {
        println!("warning: no campaign concluded a single poll; the oracles saw nothing");
    }
    if outcome.failures.is_empty() {
        return;
    }
    if std::fs::create_dir_all(out_dir).is_err() {
        fail(&format!("cannot create {out_dir}"));
    }
    for f in &outcome.failures {
        let path = format!("{out_dir}/fuzz-{}-{}.json", f.gen_seed, f.violation.oracle);
        match std::fs::write(&path, f.minimized.to_json()) {
            Ok(()) => println!(
                "seed {}: {} -> reproducer {path} (re-run with `lockss-sim run --file {path} \
                 --scale quick --seed {}`)",
                f.gen_seed, f.violation, f.run_seed
            ),
            Err(e) => fail(&format!("writing {path}: {e}")),
        }
    }
    std::process::exit(1);
}

/// Compares a baseline bench report against one or more new reports
/// (merged in argument order) and prints the per-bench deltas. With
/// `gate`, exits 1 if any gated bench regressed beyond `threshold`
/// (a ratio; `--gate-pct N` sets N/100, default 0.25), or if a gated
/// baseline bench is missing from the new reports. `patterns` overrides
/// the default [`lockss_bench::diff::GATED_BENCHES`] list when
/// non-empty.
fn bench_diff(
    base_path: &str,
    new_paths: &[String],
    gate: bool,
    threshold: f64,
    patterns: &[String],
) {
    use lockss_bench::diff::{self, GATED_BENCHES};

    let read = |path: &str| -> Vec<diff::ParsedBench> {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("reading {path}: {e}")));
        diff::parse_report(&text).unwrap_or_else(|e| fail(&format!("parsing {path}: {e}")))
    };
    let base = read(base_path);
    let mut new = Vec::new();
    for p in new_paths {
        new.extend(read(p));
    }
    let pats: Vec<&str> = if patterns.is_empty() {
        GATED_BENCHES.to_vec()
    } else {
        patterns.iter().map(String::as_str).collect()
    };

    fn fmt_ns(ns: f64) -> String {
        if ns >= 1e6 {
            format!("{:.2}ms", ns / 1e6)
        } else if ns >= 1e3 {
            format!("{:.1}µs", ns / 1e3)
        } else {
            format!("{ns:.0}ns")
        }
    }

    let report = diff::diff_benches(&base, &new);
    let mut table = Table::new(vec!["benchmark", "baseline", "new", "delta", "band", ""]);
    for d in &report.deltas {
        table.row(vec![
            d.name.clone(),
            fmt_ns(d.base_mean_ns),
            fmt_ns(d.new_mean_ns),
            format!("{:+.1}%", (d.ratio - 1.0) * 100.0),
            format!("±{:.0}%", d.noise_band * 100.0),
            match (d.significant(), d.ratio > 1.0) {
                (false, _) => String::new(),
                (true, false) => "faster".to_string(),
                (true, true) => "SLOWER".to_string(),
            },
        ]);
    }
    print!("{}", table.render());
    for name in &report.missing {
        println!("missing from new report: {name}");
    }
    for name in &report.added {
        println!("new benchmark (no baseline): {name}");
    }

    if gate {
        let offenders = diff::gate(&report, &pats, threshold);
        let missing_gated: Vec<&String> = report
            .missing
            .iter()
            .filter(|n| pats.iter().any(|p| diff::name_matches(p, n)))
            .collect();
        for d in &offenders {
            eprintln!(
                "GATE: {} regressed {:+.1}% (limit +{:.1}%)",
                d.name,
                (d.ratio - 1.0) * 100.0,
                threshold * 100.0
            );
        }
        for n in &missing_gated {
            eprintln!("GATE: gated benchmark '{n}' missing from the new report");
        }
        if !offenders.is_empty() || !missing_gated.is_empty() {
            std::process::exit(1);
        }
        println!(
            "gate passed: no gated bench regressed more than {:.1}%",
            threshold * 100.0
        );
    }
}

/// The observability switches a `run` or `sweep` invocation carries:
/// span profiling, a registry snapshot destination, and (sweeps only)
/// the heartbeat telemetry directory.
struct SweepObsFlags {
    profile: bool,
    metrics_out: Option<String>,
    telemetry: Option<String>,
}

impl SweepObsFlags {
    fn any(&self) -> bool {
        self.profile || self.metrics_out.is_some() || self.telemetry.is_some()
    }
}

/// Writes the merged span tree to `results/profile-<name>.json`.
fn write_profile(prof: &Profiler, name: &str) {
    let path = format!("results/profile-{name}.json");
    if std::fs::create_dir_all("results").is_err()
        || std::fs::write(&path, prof.to_json(name)).is_err()
    {
        fail(&format!("writing {path}"));
    }
    println!("wrote {path}");
}

/// Snapshots `session`'s registry as JSON at `out` plus Prometheus text
/// beside it.
fn write_metrics(session: &ObsSession, out: &str) {
    match session.write_metrics(Path::new(out)) {
        Ok(prom) => println!("wrote {out} and {}", prom.display()),
        Err(e) => fail(&format!("writing {out}: {e}")),
    }
}

/// Renders campaign progress from the checkpoints under `dir`, pairing
/// each with its heartbeat file under `telemetry`.
fn sweep_status(dir: &Path, telemetry: &Path) {
    let statuses = campaign_status(dir, telemetry).unwrap_or_else(|e| {
        eprintln!("lockss-sim: sweep status: {e}");
        std::process::exit(1);
    });
    print!("{}", render_status(&statuses, unix_ms_now()));
}

/// Runs the post-compromise recovery threshold study: one row per
/// mobile-takeover concurrency budget, reporting time-to-heal quantiles
/// and a heals/data-loss verdict. Byte-deterministic for any --threads.
fn sweep_recovery(args: &[String]) {
    let mut study = RecoveryStudy::default();
    if let Some(arg) = flag_value(args, "--budgets") {
        study.budgets = arg
            .split(',')
            .map(|b| {
                b.trim()
                    .parse::<u32>()
                    .ok()
                    .filter(|b| *b > 0)
                    .unwrap_or_else(|| fail("--budgets wants positive integers, e.g. 1,2,4,8"))
            })
            .collect();
        if study.budgets.is_empty() {
            fail("--budgets wants at least one budget");
        }
    }
    if let Some(arg) = flag_value(args, "--seeds") {
        study.seeds = parse_seed_range(&arg).unwrap_or_else(|e| fail(&e));
    }
    for (flag, slot) in [
        ("--attack-days", &mut study.attack_days),
        ("--heal-window", &mut study.heal_window_days),
        ("--period", &mut study.period_days),
    ] {
        if let Some(arg) = flag_value(args, flag) {
            *slot = arg
                .parse::<u64>()
                .ok()
                .filter(|d| *d > 0)
                .unwrap_or_else(|| fail(&format!("{flag} wants a positive day count")));
        }
    }
    let threads: usize = flag_value(args, "--threads")
        .map(|s| s.parse().expect("--threads N"))
        .unwrap_or_else(default_threads);
    let out = flag_value(args, "--out").unwrap_or_else(|| "results/recovery-threshold.txt".into());
    let rendered = run_recovery_study(&study, threads).render();
    print!("{rendered}");
    if let Some(dir) = Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if std::fs::write(&out, &rendered).is_err() {
        fail(&format!("writing {out}"));
    }
    println!("wrote {out}");
}

/// Runs a seed sweep of one registered scenario across a worker pool —
/// the whole campaign, or (with `--shard i/N`) one disjoint slice of it.
///
/// The merged report is byte-identical regardless of `threads` (per-seed
/// result slots, seed-ordered reduction), and a sweep interrupted mid-way
/// resumes from its `--checkpoint` file, producing the same final bytes
/// as an uninterrupted run. Observability (`--profile`, `--metrics-out`,
/// `--telemetry`) is strictly out-of-band: it never changes those bytes.
#[allow(clippy::too_many_arguments)]
fn sweep_cmd(
    registry: &ScenarioRegistry,
    name: &str,
    scale: Scale,
    seeds: &[u64],
    shard: Option<ShardTag>,
    threads: usize,
    checkpoint: Option<&str>,
    fresh: bool,
    json_out: bool,
    mem: bool,
    obs: &SweepObsFlags,
    record: Option<&Path>,
) {
    let entry = resolve(registry, name);
    let scenario = entry.build(scale);
    let default_path = match &shard {
        Some(tag) => format!(
            "results/sweep-{}-shard-{}of{}.json",
            entry.name(),
            tag.index,
            tag.count
        ),
        None => format!("results/sweep-{}.json", entry.name()),
    };
    let path = PathBuf::from(checkpoint.unwrap_or(&default_path));
    // --fresh ignores any existing checkpoint: without it, a rerun after a
    // code change would replay the stale per-seed summaries verbatim.
    let resume = if fresh {
        None
    } else {
        load_checkpoint(&path, entry.name(), scale.label(), shard.as_ref())
    };
    let done_before = resume.as_ref().map(|r| r.completed.len()).unwrap_or(0);
    let shard_seeds = shard.as_ref().map(ShardTag::seeds);
    let my_seeds: &[u64] = shard_seeds.as_deref().unwrap_or(seeds);
    println!(
        "sweeping '{}' at scale '{}': {} seed(s){} on {} thread(s){}",
        entry.name(),
        scale.label(),
        my_seeds.len(),
        shard
            .as_ref()
            .map(|t| format!(
                " (shard {} of a {}-seed campaign)",
                t.label(),
                t.campaign.len()
            ))
            .unwrap_or_default(),
        threads,
        if done_before > 0 {
            format!(" ({done_before} already in {})", path.display())
        } else {
            String::new()
        }
    );
    let session = obs.any().then(ObsSession::new);
    let merged_prof = obs.profile.then(|| Mutex::new(Profiler::new()));
    let sweep_obs = session.as_ref().map(|s| SweepObs {
        session: s,
        profiler: merged_prof.as_ref(),
        telemetry: obs
            .telemetry
            .as_deref()
            .map(|d| Telemetry::new(Path::new(d))),
    });
    if let Some(dir) = record {
        println!(
            "recording per-seed traces under {} (resumed seeds are not re-recorded)",
            dir.display()
        );
    }
    let report = match shard {
        Some(tag) => run_sweep_shard_observed(
            &scenario,
            entry.name(),
            scale.label(),
            tag,
            threads,
            Some(&path),
            resume,
            sweep_obs.as_ref(),
            record,
        ),
        None => run_sweep_observed(
            &scenario,
            entry.name(),
            scale.label(),
            seeds,
            threads,
            Some(&path),
            resume,
            sweep_obs.as_ref(),
            record,
        ),
    };

    let mut table = Table::new(vec![
        "seed",
        "access failure",
        "gap p50",
        "gap p90",
        "ok",
        "failed",
        "alarms",
    ]);
    let fmt_gap = |d: Option<lockss_sim::Duration>| {
        d.map(|d| format!("{:.0}d", d.as_days_f64()))
            .unwrap_or_else(|| "-".into())
    };
    for (seed, s) in &report.completed {
        table.row(vec![
            seed.to_string(),
            sci(s.access_failure_probability),
            fmt_gap(s.gap_p50),
            fmt_gap(s.gap_p90),
            s.successful_polls.to_string(),
            s.failed_polls.to_string(),
            s.alarms.to_string(),
        ]);
    }
    print!("{}", table.render());
    if let Some(m) = report.merged() {
        println!(
            "\nmerged over {} seed(s): access failure {}, {} ok / {} failed, \
             loyal {:.0} CPU-s",
            report.completed.len(),
            sci(m.access_failure_probability),
            m.successful_polls,
            m.failed_polls,
            m.loyal_effort_secs
        );
    }
    // The report claims persistence only after re-reading the file: a full
    // disk or unwritable results/ must fail loudly, not lose a multi-hour
    // sweep silently.
    match std::fs::read_to_string(&path) {
        Ok(on_disk) if on_disk == report.to_json() => println!("wrote {}", path.display()),
        _ => fail(&format!(
            "sweep finished but the report at {} is missing or stale (checkpoint writes failed?)",
            path.display()
        )),
    }
    if let Some(tag) = &report.shard {
        println!(
            "shard {} complete; reassemble the campaign with: \
             lockss-sim sweep merge <all {} shard checkpoints>",
            tag.label(),
            tag.count
        );
    }
    if let Some(m) = &merged_prof {
        write_profile(&m.lock().unwrap(), entry.name());
    }
    if let (Some(s), Some(out)) = (&session, obs.metrics_out.as_deref()) {
        write_metrics(s, out);
    }
    if json_out {
        print!("{}", report.to_json());
    }
    if mem {
        mem_report(&scenario, report.seeds.first().copied().unwrap_or(1));
    }
}

/// `sweep merge`-style failures exit 1 — a diagnostic about the *input
/// files*, distinct from exit 2 (CLI misuse).
fn fail_merge(msg: &str) -> ! {
    eprintln!("lockss-sim: sweep merge: {msg}");
    std::process::exit(1);
}

/// Validates and reassembles shard checkpoints into the campaign report.
/// Every topology violation — overlapping or missing seed ranges,
/// mismatched scenario/scale tags, truncated files, a foreign format
/// version, duplicate shard submissions — is a distinct diagnostic and
/// exit 1. On success the merged report is byte-identical to what a
/// single-process sweep of the whole seed range writes.
fn sweep_merge(files: &[PathBuf], out: Option<&str>, json_out: bool) {
    let report = merge_files(files).unwrap_or_else(|e| fail_merge(&e));
    let default_path = format!("results/sweep-{}.json", report.scenario);
    let path = PathBuf::from(out.unwrap_or(&default_path));
    let rendered = report.to_json();
    if let Err(e) = sweep::write_checkpoint(&path, &rendered) {
        fail_merge(&format!("writing {}: {e}", path.display()));
    }
    match std::fs::read_to_string(&path) {
        Ok(on_disk) if on_disk == rendered => {}
        _ => fail_merge(&format!(
            "merged report at {} is missing or stale after writing it",
            path.display()
        )),
    }
    let merged = report.merged().expect("a valid merge has completed seeds");
    println!(
        "merged {} shard(s) of '{}' (scale '{}') covering {} seed(s): \
         access failure {}, {} ok / {} failed",
        files.len(),
        report.scenario,
        report.scale,
        report.seeds.len(),
        sci(merged.access_failure_probability),
        merged.successful_polls,
        merged.failed_polls,
    );
    println!("wrote {}", path.display());
    if json_out {
        print!("{rendered}");
    }
}

/// Fans a campaign out over shard worker subprocesses (or, with
/// `--jobfile`, writes their command lines for host-level fan-out),
/// survives worker deaths via retry-with-backoff and checkpoint-freshness
/// straggler re-dispatch, then merges and writes the campaign report.
fn sweep_dispatch(registry: &ScenarioRegistry, name: &str, scale: Scale, args: &[String]) {
    let entry = resolve(registry, name);
    let seeds_arg = flag_value(args, "--seeds").unwrap_or_else(|| scale.seeds().to_string());
    let campaign = parse_seed_range(&seeds_arg).unwrap_or_else(|e| fail(&e));
    let parse_num = |flag: &str, default: u64| -> u64 {
        flag_value(args, flag)
            .map(|s| {
                s.parse()
                    .unwrap_or_else(|_| fail(&format!("{flag} wants a number, got '{s}'")))
            })
            .unwrap_or(default)
    };
    let plan = DispatchPlan {
        scenario: entry.name().to_string(),
        scale: scale.label().to_string(),
        seeds_arg,
        campaign,
        shards: parse_num("--shards", default_threads() as u64),
        threads_per_shard: parse_num("--threads", 1) as usize,
        retries: parse_num("--retries", 3) as u32,
        backoff_ms: parse_num("--backoff-ms", 250),
        stall_secs: flag_value(args, "--stall-secs").map(|s| {
            s.parse()
                .unwrap_or_else(|_| fail("--stall-secs wants a number"))
        }),
        dir: PathBuf::from(flag_value(args, "--dir").unwrap_or_else(|| "results".into())),
        out: PathBuf::from(
            flag_value(args, "--out")
                .unwrap_or_else(|| format!("results/sweep-{}.json", entry.name())),
        ),
        fresh: args.iter().any(|a| a == "--fresh"),
        telemetry: flag_value(args, "--telemetry").map(PathBuf::from),
    };
    let bin = std::env::current_exe().unwrap_or_else(|e| fail(&format!("current_exe: {e}")));

    if let Some(jobfile_path) = flag_value(args, "--jobfile") {
        let text = jobfile(&plan, &bin).unwrap_or_else(|e| fail(&e));
        std::fs::write(&jobfile_path, &text)
            .unwrap_or_else(|e| fail(&format!("writing {jobfile_path}: {e}")));
        println!(
            "wrote {jobfile_path}: {} shard command(s) + 1 merge for '{}' \
             ({} seed(s), scale '{}')",
            plan.shards,
            plan.scenario,
            plan.campaign.len(),
            plan.scale
        );
        return;
    }

    println!(
        "dispatching '{}' at scale '{}': {} seed(s) over {} shard worker(s) \
         x {} thread(s), {} retr{} each{}{}",
        plan.scenario,
        plan.scale,
        plan.campaign.len(),
        plan.shards,
        plan.threads_per_shard,
        plan.retries,
        if plan.retries == 1 { "y" } else { "ies" },
        plan.stall_secs
            .map(|s| format!(", {s}s stall window"))
            .unwrap_or_default(),
        plan.telemetry
            .as_ref()
            .map(|d| format!(", heartbeats under {}", d.display()))
            .unwrap_or_default()
    );
    let report = dispatch(&bin, &plan, &mut |line| println!("  {line}")).unwrap_or_else(|e| {
        eprintln!("lockss-sim: sweep dispatch: {e}");
        std::process::exit(1);
    });
    let merged = report.merged().expect("a dispatched campaign has results");
    println!(
        "campaign complete: {} seed(s), access failure {}, {} ok / {} failed, \
         loyal {:.0} CPU-s",
        report.completed.len(),
        sci(merged.access_failure_probability),
        merged.successful_polls,
        merged.failed_polls,
        merged.loyal_effort_secs
    );
    println!("wrote {}", plan.out.display());
    if args.iter().any(|a| a == "--json") {
        print!("{}", report.to_json());
    }
}

/// Prints peak RSS plus event-arena and peer-table occupancy for one
/// representative seed of `scenario` (the run is repeated with the
/// instrumented path; its metrics are identical to the plain run).
fn mem_report(scenario: &lockss_experiments::Scenario, seed: u64) {
    let RunStats {
        summary: _,
        peak_rss_kb,
        arena_live,
        arena_total,
        events_executed,
        events_queued,
        table,
    } = run_once_with_stats(scenario, seed);
    println!("\nmemory report (seed {seed}):");
    println!(
        "  peak RSS                  {}",
        peak_rss_kb
            .map(|kb| format!("{:.1} MiB", kb as f64 / 1024.0))
            .unwrap_or_else(|| "unavailable on this platform".into())
    );
    println!("  event arena               {arena_live} live / {arena_total} high-water slots");
    println!(
        "  events                    {events_executed} executed, {events_queued} queued at horizon"
    );
    println!(
        "  peer table                {} peers x {} AU(s)",
        table.peers, table.aus_per_peer
    );
    println!(
        "  reputation entries        {} materialized (lazy founding-population rule)",
        table.known_entries
    );
    println!("  reference-list entries    {}", table.reflist_entries);
    println!(
        "  live polls / voter sessions  {} / {}",
        table.live_polls, table.voter_sessions
    );
}

fn load_trace(path: &str) -> Trace {
    Trace::read_from(Path::new(path)).unwrap_or_else(|e| fail(&format!("reading {path}: {e}")))
}

/// Collects the bare (non-flag) operands from `args`, skipping the value
/// token after any flag listed in `value_flags`.
fn operands(args: &[String], value_flags: &[&str]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if value_flags.contains(&args[i].as_str()) {
            i += 2;
            continue;
        }
        if !args[i].starts_with("--") {
            out.push(args[i].clone());
        }
        i += 1;
    }
    out
}

/// Worker threads for the trace analytics (`--threads N`, default: all
/// cores). The rendered output is byte-identical at any count.
fn trace_threads(args: &[String]) -> usize {
    flag_value(args, "--threads")
        .map(|s| s.parse().expect("--threads N"))
        .unwrap_or_else(default_threads)
}

/// Rewrites a trace in the block-columnar `LTRC2` wire (a v2 input is
/// copied verbatim) and reports the size change.
fn trace_convert(input: &str, output: &str) {
    let trace = load_trace(input);
    let from_wire = trace.wire();
    let from_len = trace.as_bytes().len();
    let converted = trace
        .to_v2()
        .unwrap_or_else(|e| fail(&format!("converting {input}: {e}")));
    converted
        .write_to(Path::new(output))
        .unwrap_or_else(|e| fail(&format!("writing {output}: {e}")));
    let to_len = converted.as_bytes().len();
    println!(
        "converted {input} ({} event(s)): {from_wire} {from_len} bytes -> {} {to_len} bytes \
         ({:.2}x), content hash {}",
        converted.events(),
        converted.wire(),
        from_len as f64 / to_len.max(1) as f64,
        converted.content_hash()
    );
    println!("wrote {output}");
}

/// Re-drives a recorded trace's scenario and verifies equivalence. Exits 0
/// on zero divergence, 1 with the first divergence otherwise.
fn replay(registry: &ScenarioRegistry, path: &str, seed_override: Option<u64>) {
    let trace = load_trace(path);
    let meta = trace
        .meta()
        .unwrap_or_else(|e| fail(&format!("header: {e}")));
    let entry = registry.get(&meta.scenario).unwrap_or_else(|| {
        fail(&format!(
            "trace records scenario '{}', which is not in this build's registry",
            meta.scenario
        ))
    });
    let scenario = entry.build(Scale::parse(&meta.scale));
    let seed = seed_override.unwrap_or(meta.seed);
    println!(
        "replaying {path}: {meta}{}",
        if seed == meta.seed {
            String::new()
        } else {
            format!(" (perturbed to seed {seed})")
        }
    );
    let report =
        replay_once(&scenario, seed, &trace).unwrap_or_else(|e| fail(&format!("replaying: {e}")));
    println!("{report}");
    if !report.is_equivalent() {
        std::process::exit(1);
    }
}

fn resolve<'r>(
    registry: &'r ScenarioRegistry,
    name: &str,
) -> &'r lockss_experiments::ScenarioEntry {
    registry.get(name).unwrap_or_else(|| {
        eprintln!("unknown scenario '{name}'; `lockss-sim list` shows the registry");
        std::process::exit(2);
    })
}

fn list(registry: &ScenarioRegistry, scale: Scale) {
    println!(
        "{} registered scenarios (scale '{}'):\n",
        registry.len(),
        scale.label()
    );
    let mut table = Table::new(vec!["scenario", "paper", "description"]);
    for e in registry.entries() {
        table.row(vec![e.name(), e.paper_ref(), e.description()]);
    }
    print!("{}", table.render());
}

fn describe(registry: &ScenarioRegistry, name: &str, scale: Scale) {
    let entry = resolve(registry, name);
    let s = entry.build(scale);
    println!("scenario     {}", entry.name());
    println!("paper        {}", entry.paper_ref());
    println!("description  {}", entry.description());
    println!("attack       {}", s.attack.label());
    println!(
        "world        {} peers x {} AUs, mtbf {} disk-years, poll interval {}",
        s.cfg.n_peers, s.cfg.n_aus, s.cfg.mtbf_years, s.cfg.protocol.poll_interval
    );
    println!(
        "run          {} at scale '{}', {} seed(s)",
        s.run_length,
        scale.label(),
        scale.seeds()
    );
}

#[allow(clippy::too_many_arguments)]
fn run(
    entry: &ScenarioEntry,
    scale: Scale,
    seeds: &[u64],
    json_out: bool,
    record: Option<&str>,
    profile: bool,
    metrics_out: Option<&str>,
) {
    let scenario = entry.build(scale);
    let attacked_label = scenario.attack.label();
    println!(
        "running '{}' at scale '{}' ({} seed(s), {} threads): {}",
        entry.name(),
        scale.label(),
        seeds.len(),
        default_threads(),
        attacked_label,
    );

    // Observability is out-of-band: the observed run variants produce
    // byte-identical summaries, so they are used unconditionally (with
    // empty instruments when nothing was requested).
    let session = (profile || metrics_out.is_some()).then(ObsSession::new);
    let merged_prof = profile.then(|| Mutex::new(Profiler::new()));
    let sp = profile.then(Profiler::shared);
    let ins = session
        .as_ref()
        .map(|s| s.instruments(sp.clone()))
        .unwrap_or_default();

    // Matched baseline for the ratio metrics, skipped for baselines.
    let jobs = if scenario.attack.is_none() {
        vec![scenario.clone()]
    } else {
        vec![scenario.clone(), scenario.matched_baseline()]
    };
    // run_batch means over a contiguous 1..=K seed range; an explicit
    // --seed N runs that single seed directly. The per-phase breakdown is
    // per-seed, reported for the first seed: free in the single-seed path,
    // one extra (composite-only) run in the batch path.
    let (attacked, baseline, phases) = if let Some(path) = record {
        // Recording is single-seed (enforced by the caller): the recorded
        // run doubles as the report run, since the sink never perturbs it.
        let meta = TraceMeta {
            scenario: entry.name().to_string(),
            scale: scale.label().to_string(),
            seed: seeds[0],
            run_length_ms: scenario.run_length.as_millis(),
        };
        let (a, phases, trace) = run_once_recorded_observed(&jobs[0], seeds[0], &meta, &ins);
        match trace.write_to(Path::new(path)) {
            Ok(()) => println!(
                "recorded {} event(s) to {path} (content hash {})",
                trace.events(),
                trace.content_hash()
            ),
            Err(e) => fail(&format!("writing {path}: {e}")),
        }
        let b = jobs.get(1).map(|j| run_once_observed(j, seeds[0], &ins).0);
        (a, b, phases)
    } else if seeds.len() == 1 {
        let (a, phases) = run_once_observed(&jobs[0], seeds[0], &ins);
        let b = jobs.get(1).map(|j| run_once_observed(j, seeds[0], &ins).0);
        (a, b, phases)
    } else {
        let out = run_batch_observed(
            &jobs,
            seeds.len() as u64,
            default_threads(),
            session.as_ref(),
            merged_prof.as_ref(),
        );
        let mut it = out.into_iter();
        let a = it.next().expect("attacked summary");
        let phases = if scenario.attack.is_composite() {
            run_once_observed(&scenario, seeds[0], &ins).1
        } else {
            Vec::new()
        };
        (a, it.next(), phases)
    };
    let base = baseline.as_ref().unwrap_or(&attacked);

    println!();
    println!(
        "access failure probability  {}",
        sci(attacked.access_failure_probability)
    );
    if let Some(g) = attacked.mean_time_between_successes {
        println!("mean gap between successes  {g}");
    }
    println!(
        "poll outcomes               {} ok / {} failed / {} alarms",
        attacked.successful_polls, attacked.failed_polls, attacked.alarms
    );
    println!(
        "loyal effort                {:.0} CPU-s",
        attacked.loyal_effort_secs
    );
    if !scenario.attack.is_none() {
        println!(
            "adversary effort            {:.0} CPU-s",
            attacked.adversary_effort_secs
        );
        println!(
            "delay ratio                 {}",
            ratio(attacked.delay_ratio(base))
        );
        println!(
            "coefficient of friction     {}",
            ratio(attacked.coefficient_of_friction(base))
        );
        println!(
            "cost ratio                  {}",
            ratio(attacked.cost_ratio())
        );
    }
    if !phases.is_empty() {
        println!("\nper-phase breakdown (seed {}):", seeds[0]);
        let mut table = Table::new(vec![
            "phase",
            "from",
            "to",
            "access failure",
            "ok",
            "failed",
            "alarms",
            "loyal CPU-s",
            "adv CPU-s",
        ]);
        for p in &phases {
            table.row(vec![
                p.label.clone(),
                format!("{:.0}d", p.start.as_days_f64()),
                format!("{:.0}d", p.end.as_days_f64()),
                sci(p.access_failure_probability),
                p.successful_polls.to_string(),
                p.failed_polls.to_string(),
                p.alarms.to_string(),
                format!("{:.0}", p.loyal_effort_secs),
                format!("{:.0}", p.adversary_effort_secs),
            ]);
        }
        print!("{}", table.render());
    }

    let json = render_json(
        entry.name(),
        entry.paper_ref(),
        scale,
        seeds,
        &attacked_label,
        &attacked,
        baseline.as_ref(),
        &phases,
    );
    let path = format!("results/scenario-{}.json", entry.name());
    if std::fs::create_dir_all("results").is_ok() && std::fs::write(&path, &json).is_ok() {
        println!("\nwrote {path}");
    }
    if let Some(m) = &merged_prof {
        // The single-seed paths profiled into `sp`; batch workers have
        // already absorbed theirs into the merge target.
        if let Some(sp) = &sp {
            m.lock().unwrap().absorb(&sp.borrow());
        }
        write_profile(&m.lock().unwrap(), entry.name());
    }
    if let (Some(s), Some(out)) = (&session, metrics_out) {
        write_metrics(s, out);
    }
    if json_out {
        println!("{json}");
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_opt(v: Option<f64>) -> String {
    v.map(json_f64).unwrap_or_else(|| "null".to_string())
}

fn summary_json(s: &Summary) -> String {
    // The canonical field order shared with the sweep reports.
    sweep::summary_to_json(s)
}

fn phase_json(p: &PhaseSummary) -> String {
    format!(
        "{{\"label\": \"{}\", \"start_ms\": {}, \"end_ms\": {}, \
         \"access_failure_probability\": {}, \"successful_polls\": {}, \
         \"failed_polls\": {}, \"alarms\": {}, \"loyal_effort_secs\": {}, \
         \"adversary_effort_secs\": {}}}",
        p.label,
        p.start.as_millis(),
        p.end.as_millis(),
        json_f64(p.access_failure_probability),
        p.successful_polls,
        p.failed_polls,
        p.alarms,
        json_f64(p.loyal_effort_secs),
        json_f64(p.adversary_effort_secs),
    )
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    name: &str,
    paper_ref: &str,
    scale: Scale,
    seeds: &[u64],
    attack_label: &str,
    attacked: &Summary,
    baseline: Option<&Summary>,
    phases: &[PhaseSummary],
) -> String {
    let seed_list: Vec<String> = seeds.iter().map(u64::to_string).collect();
    let phase_list: Vec<String> = phases.iter().map(phase_json).collect();
    let base_json = baseline
        .map(summary_json)
        .unwrap_or_else(|| "null".to_string());
    let ratios = match baseline {
        Some(b) => format!(
            "{{\"delay_ratio\": {}, \"coefficient_of_friction\": {}, \"cost_ratio\": {}}}",
            json_opt(attacked.delay_ratio(b)),
            json_opt(attacked.coefficient_of_friction(b)),
            json_opt(attacked.cost_ratio()),
        ),
        None => "null".to_string(),
    };
    format!(
        "{{\n  \"scenario\": \"{name}\",\n  \"paper_ref\": \"{paper_ref}\",\n  \
         \"scale\": \"{}\",\n  \"seeds\": [{}],\n  \"attack\": \"{attack_label}\",\n  \
         \"summary\": {},\n  \"baseline\": {base_json},\n  \"ratios\": {ratios},\n  \
         \"phases\": [{}]\n}}\n",
        scale.label(),
        seed_list.join(", "),
        summary_json(attacked),
        phase_list.join(", "),
    )
}

//! Figure 4: delay ratio under repeated pipe-stoppage attacks.
//!
//! Paper shape: attacks must last at least ~60 days to raise the delay
//! ratio by an order of magnitude; short attacks barely move it.

use lockss_experiments::sweeps::pipe_sweep;
use lockss_experiments::{save_results, Scale};
use lockss_metrics::table::ratio;
use lockss_metrics::Table;

fn main() {
    let scale = Scale::from_env_and_args();
    println!(
        "Figure 4 (pipe stoppage: delay ratio) at scale '{}'",
        scale.label()
    );
    let points = pipe_sweep(scale);

    let mut table = Table::new(vec![
        "attack duration (days)",
        "coverage",
        "collection",
        "delay ratio",
    ]);
    for p in &points {
        table.row(vec![
            p.days.to_string(),
            format!("{:.0}%", p.coverage * 100.0),
            if p.large { "large" } else { "small" }.to_string(),
            ratio(p.measured.delay_ratio()),
        ]);
    }
    let rendered = table.render();
    println!("{rendered}");
    save_results("fig4", &rendered, &table.to_csv());
}

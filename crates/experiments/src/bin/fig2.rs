//! Figure 2: baseline access failure probability vs inter-poll interval,
//! for storage MTBFs of 1–5 disk-years and both collection sizes, absent
//! any attack.
//!
//! Paper shape: failure probability grows with the poll interval and with
//! the damage rate; the large collection tracks the small one closely.
//! Anchor: ~4.8e-4 at (3 months, 5 years, small collection).

use lockss_experiments::sweeps::fig2_sweep;
use lockss_experiments::{save_results, Scale};
use lockss_metrics::table::sci;
use lockss_metrics::Table;

fn main() {
    let scale = Scale::from_env_and_args();
    println!("Figure 2 (baseline) at scale '{}'", scale.label());
    let points = fig2_sweep(scale);

    let mut table = Table::new(vec![
        "poll interval (months)",
        "storage MTBF (disk-years)",
        "collection",
        "access failure probability",
    ]);
    for p in &points {
        table.row(vec![
            p.interval_months.to_string(),
            format!("{:.0}", p.mtbf_years),
            if p.large { "large" } else { "small" }.to_string(),
            sci(p.summary.access_failure_probability),
        ]);
    }
    let rendered = table.render();
    println!("{rendered}");
    save_results("fig2", &rendered, &table.to_csv());

    // The paper's anchor point for comparison.
    if let Some(anchor) = points
        .iter()
        .find(|p| p.interval_months == 3 && p.mtbf_years == 5.0 && !p.large)
    {
        println!(
            "anchor (3 months, 5 disk-years, small): {}   [paper: 4.8e-4]",
            sci(anchor.summary.access_failure_probability)
        );
    }
}

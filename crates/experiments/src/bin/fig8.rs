//! Figure 8: coefficient of friction under the admission-control attack.
//!
//! Paper shape: long full-coverage attacks raise the cost of each
//! successful poll by ~33% (loyal peers waste introductory efforts on
//! victims stuck in refractory periods); short or narrow attacks are
//! negligible.

use lockss_experiments::sweeps::flood_sweep;
use lockss_experiments::{save_results, Scale};
use lockss_metrics::table::ratio;
use lockss_metrics::Table;

fn main() {
    let scale = Scale::from_env_and_args();
    println!(
        "Figure 8 (admission flood: coefficient of friction) at scale '{}'",
        scale.label()
    );
    let points = flood_sweep(scale);

    let mut table = Table::new(vec![
        "attack duration (days)",
        "coverage",
        "collection",
        "coefficient of friction",
    ]);
    for p in &points {
        table.row(vec![
            p.days.to_string(),
            format!("{:.0}%", p.coverage * 100.0),
            if p.large { "large" } else { "small" }.to_string(),
            ratio(p.measured.friction()),
        ]);
    }
    let rendered = table.render();
    println!("{rendered}");
    save_results("fig8", &rendered, &table.to_csv());
}

//! Dynamic membership (the paper's §9 future-work item): how quickly do
//! newly joining peers integrate, with and without an ongoing
//! admission-control flood?
//!
//! New peers join a steady-state network at intervals; we track each
//! joiner's reference-list penetration (the fraction of the population
//! whose per-AU reference list contains it) over time. Under a sustained
//! flood, refractory periods block unknown peers, so integration leans
//! entirely on mutual friends and introductions — measurably slower.

use lockss_adversary::AdmissionFlood;
use lockss_core::{World, WorldConfig};
use lockss_experiments::{save_results, Scale, ScenarioRegistry};
use lockss_metrics::Table;
use lockss_sim::{Duration, Engine, SimTime};
use lockss_storage::AuId;

fn config(scale: Scale, seed: u64) -> WorldConfig {
    // The registered baseline world, shrunk and sped up (monthly polls) so
    // the one-year integration ramp has enough poll rounds to show.
    let mut cfg = ScenarioRegistry::standard()
        .build("baseline", scale)
        .expect("'baseline' is registered")
        .with_aus(scale.small_collection().min(8))
        .cfg;
    cfg.seed = seed;
    cfg.protocol.poll_interval = Duration::MONTH;
    cfg
}

fn run(scale: Scale, flood: bool, seed: u64) -> Vec<(u64, f64)> {
    let mut world = World::new(config(scale, seed));
    if flood {
        world.install_adversary(Box::new(AdmissionFlood::new(1.0, 10_000)));
    }
    let mut eng: Engine<World> = Engine::new();
    world.start(&mut eng);

    // Reach steady state, then join one newcomer.
    eng.run_until(&mut world, SimTime::ZERO + Duration::MONTH * 3);
    let joiner = world.join_loyal_peer(&mut eng);

    // Sample penetration monthly for a year.
    let mut series = Vec::new();
    for month in 1..=12u64 {
        eng.run_until(&mut world, SimTime::ZERO + Duration::MONTH * (3 + month));
        let mut pen = 0.0;
        for au in 0..world.cfg.n_aus {
            pen += world.reflist_penetration(joiner, AuId(au as u32));
        }
        series.push((month, pen / world.cfg.n_aus as f64));
    }
    series
}

fn main() {
    let scale = Scale::from_env_and_args();
    println!(
        "Peer churn: integration of a cold-start joiner, scale '{}'",
        scale.label()
    );

    let quiet = run(scale, false, 1);
    let flooded = run(scale, true, 1);

    let mut table = Table::new(vec![
        "months since join",
        "reflist penetration (quiet)",
        "reflist penetration (under flood)",
    ]);
    for ((m, q), (_, f)) in quiet.iter().zip(flooded.iter()) {
        table.row(vec![
            m.to_string(),
            format!("{:.1}%", q * 100.0),
            format!("{:.1}%", f * 100.0),
        ]);
    }
    let rendered = table.render();
    println!("{rendered}");
    save_results("churn", &rendered, &table.to_csv());
    println!(
        "A joiner integrates through mutual friends, outer-circle votes, and\n\
         introductions; the flood slows discovery but cannot stop it (§5.1)."
    );
}

//! Ablation study: what each defense buys (DESIGN.md §8; the paper's §9
//! parameter exploration and the §1/§5 motivations).
//!
//! For each defense, runs the attack that defense exists to stop, with the
//! defense on and off, and reports the difference:
//!
//! - **refractory periods** vs the admission flood (§7.3): without the
//!   refractory rate limit, every garbage invitation that survives the
//!   random drop costs a consideration — unbounded consideration work;
//! - **first-hand reputation** vs brute force (§7.4): without grades, the
//!   attacker's seeded identities pass as `even` and bypass drops and the
//!   one-per-period unknown slot entirely;
//! - **introductions** vs the admission flood: without them, discovery
//!   stalls while refractory periods are held open;
//! - **effort balancing** vs brute force: without provable effort the
//!   attack becomes free for the attacker (cost ratio collapses);
//! - **desynchronization** under heavy load: synchronous solicitation
//!   concentrates vote work and fails polls that individual solicitation
//!   would have completed.

use lockss_adversary::Defection;
use lockss_core::config::Ablation;
use lockss_experiments::runner::{default_threads, run_batch};
use lockss_experiments::scenario::AttackSpec;
use lockss_experiments::{save_results, Scale, ScenarioRegistry};
use lockss_metrics::table::{ratio, sci};
use lockss_metrics::Table;

struct Case {
    name: &'static str,
    attack: AttackSpec,
    ablation: Ablation,
}

fn main() {
    let scale = Scale::from_env_and_args();
    println!("Ablation study at scale '{}'", scale.label());
    let n_aus = scale.small_collection();
    let seeds = scale.seeds();

    let flood = AttackSpec::AdmissionFlood {
        coverage: 1.0,
        days: 360,
    };
    let brute = AttackSpec::BruteForce {
        defection: Defection::Remaining,
    };

    let cases = vec![
        Case {
            name: "full defenses / admission flood",
            attack: flood.clone(),
            ablation: Ablation::default(),
        },
        Case {
            name: "no refractory / admission flood",
            attack: flood.clone(),
            ablation: Ablation {
                no_refractory: true,
                ..Ablation::default()
            },
        },
        Case {
            name: "no introductions / admission flood",
            attack: flood.clone(),
            ablation: Ablation {
                no_introductions: true,
                ..Ablation::default()
            },
        },
        Case {
            name: "full defenses / brute force",
            attack: brute.clone(),
            ablation: Ablation::default(),
        },
        Case {
            name: "no reputation / brute force",
            attack: brute.clone(),
            ablation: Ablation {
                no_reputation: true,
                ..Ablation::default()
            },
        },
        Case {
            name: "no effort balancing / brute force",
            attack: brute.clone(),
            ablation: Ablation {
                no_effort_balancing: true,
                ..Ablation::default()
            },
        },
        Case {
            name: "synchronous solicitation / no attack",
            attack: AttackSpec::None,
            ablation: Ablation {
                synchronous_solicitation: true,
                ..Ablation::default()
            },
        },
    ];

    // Baselines: the unattacked world with the same ablation, so each row's
    // ratios isolate the attack's effect under that protocol variant.
    let registry = ScenarioRegistry::standard();
    let base = registry
        .build("baseline", scale)
        .expect("'baseline' is registered")
        .with_aus(n_aus);
    let mut jobs = Vec::new();
    for case in &cases {
        let mut attacked = base.clone().with_attack(case.attack.clone());
        attacked.cfg.protocol.ablation = case.ablation;
        let mut baseline = base.clone();
        baseline.cfg.protocol.ablation = case.ablation;
        jobs.push(attacked);
        jobs.push(baseline);
    }
    let summaries = run_batch(&jobs, seeds, default_threads());

    let mut table = Table::new(vec![
        "case",
        "coeff. friction",
        "cost ratio",
        "delay ratio",
        "access failure",
        "poll success %",
    ]);
    for (i, case) in cases.iter().enumerate() {
        let attacked = &summaries[2 * i];
        let baseline = &summaries[2 * i + 1];
        let success = 100.0 * attacked.successful_polls as f64
            / (attacked.successful_polls + attacked.failed_polls).max(1) as f64;
        table.row(vec![
            case.name.to_string(),
            ratio(attacked.coefficient_of_friction(baseline)),
            ratio(attacked.cost_ratio()),
            ratio(attacked.delay_ratio(baseline)),
            sci(attacked.access_failure_probability),
            format!("{success:.1}"),
        ]);
    }
    let rendered = table.render();
    println!("{rendered}");
    save_results("ablations", &rendered, &table.to_csv());
}

//! Table 1: the brute-force effortful adversary defecting at INTRO,
//! REMAINING, or NONE — coefficient of friction, cost ratio, delay ratio,
//! and access failure probability, for both collection sizes.
//!
//! Paper shape: full participation (NONE) is the attacker's most
//! cost-effective strategy (lowest cost ratio); friction tops out around
//! 2.5–2.6; the delay ratio stays ≈1.1; access failure rises only ~20–30%
//! over baseline. Rate limits prevent an unconstrained adversary from
//! bringing his resources to bear.

use lockss_experiments::sweeps::table1_rows;
use lockss_experiments::{save_results, Scale};
use lockss_metrics::table::{ratio, sci};
use lockss_metrics::Table;

fn main() {
    let scale = Scale::from_env_and_args();
    println!(
        "Table 1 (brute-force defection points) at scale '{}'",
        scale.label()
    );
    let rows = table1_rows(scale);

    let mut table = Table::new(vec![
        "defection",
        "collection",
        "coeff. friction",
        "cost ratio",
        "delay ratio",
        "access failure",
    ]);
    for r in &rows {
        table.row(vec![
            r.defection.label().to_string(),
            if r.large { "large" } else { "small" }.to_string(),
            ratio(r.measured.friction()),
            ratio(r.measured.cost_ratio()),
            ratio(r.measured.delay_ratio()),
            sci(r.measured.access_failure()),
        ]);
    }
    let rendered = table.render();
    println!("{rendered}");
    save_results("table1", &rendered, &table.to_csv());

    println!(
        "paper (50-AU rows): INTRO 1.40/1.93/1.11/4.99e-4, \
         REMAINING 2.61/1.55/1.11/5.90e-4, NONE 2.60/1.02/1.11/5.58e-4"
    );
}

//! Figure 6: access failure probability under the admission-control
//! (garbage invitation) attack, durations 1–720 days, coverage 10–100%.
//!
//! Paper shape: the attack barely moves access failure — from ~5.2e-4 to
//! ~5.9e-4 even when sustained for the whole two years at full coverage.

use lockss_experiments::sweeps::flood_sweep;
use lockss_experiments::{save_results, Scale};
use lockss_metrics::table::sci;
use lockss_metrics::Table;

fn main() {
    let scale = Scale::from_env_and_args();
    println!(
        "Figure 6 (admission flood: access failure) at scale '{}'",
        scale.label()
    );
    let points = flood_sweep(scale);

    let mut table = Table::new(vec![
        "attack duration (days)",
        "coverage",
        "collection",
        "access failure probability",
    ]);
    for p in &points {
        table.row(vec![
            p.days.to_string(),
            format!("{:.0}%", p.coverage * 100.0),
            if p.large { "large" } else { "small" }.to_string(),
            sci(p.measured.access_failure()),
        ]);
    }
    let rendered = table.render();
    println!("{rendered}");
    save_results("fig6", &rendered, &table.to_csv());
}

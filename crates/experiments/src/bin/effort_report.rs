//! Where the CPU goes: per-purpose effort breakdown of a baseline run and
//! an attacked run, side by side.
//!
//! The §6.1 friction metric aggregates all loyal effort; this report
//! splits it by purpose (the `lockss-effort` ledger categories) so the
//! *mechanism* of each attack is visible — e.g. the admission flood shows
//! up almost entirely in `Consider`/`VerifyIntro`, brute force in
//! `ComputeVote`.

use lockss_core::World;
use lockss_effort::ledger::ALL_PURPOSES;
use lockss_effort::EffortLedger;
use lockss_experiments::scenario::Scenario;
use lockss_experiments::{save_results, Scale, ScenarioRegistry};
use lockss_metrics::Table;
use lockss_sim::{Engine, SimTime};

fn run_ledger(scenario: &Scenario, seed: u64) -> EffortLedger {
    let mut cfg = scenario.cfg.clone();
    cfg.seed = seed;
    let mut world = World::new(cfg);
    if let Some(adv) = scenario.attack.build() {
        world.install_adversary(adv);
    }
    let mut eng: Engine<World> = Engine::new();
    world.start(&mut eng);
    eng.run_until(&mut world, SimTime::ZERO + scenario.run_length);
    let mut total = EffortLedger::new();
    for ledger in world.peers.ledgers() {
        total.merge(ledger);
    }
    total
}

fn main() {
    let scale = Scale::from_env_and_args();
    println!(
        "Per-purpose loyal effort breakdown at scale '{}'",
        scale.label()
    );
    let n_aus = scale.small_collection().min(8); // this report needs no statistics

    // The registry's representative scenario for each attack mechanism.
    let registry = ScenarioRegistry::standard();
    let cases = [
        "baseline",
        "admission-flood",
        "brute-force-none",
        "pipe-stoppage",
    ];

    let ledgers: Vec<(&str, EffortLedger)> = cases
        .iter()
        .map(|name| {
            let scenario = registry
                .build(name, scale)
                .unwrap_or_else(|| panic!("'{name}' is registered"))
                .with_aus(n_aus);
            (*name, run_ledger(&scenario, 1))
        })
        .collect();

    let mut header = vec!["purpose".to_string()];
    for (name, _) in &ledgers {
        header.push(name.to_string());
    }
    let mut table = Table::new(header);
    for purpose in ALL_PURPOSES {
        let mut row = vec![format!("{purpose:?}")];
        for (_, ledger) in &ledgers {
            row.push(format!("{:.0}", ledger.secs_for(purpose)));
        }
        table.row(row);
    }
    let mut totals = vec!["TOTAL (CPU-s)".to_string()];
    for (_, ledger) in &ledgers {
        totals.push(format!("{:.0}", ledger.total_secs()));
    }
    table.row(totals);

    let rendered = table.render();
    println!("{rendered}");
    save_results("effort_report", &rendered, &table.to_csv());
}

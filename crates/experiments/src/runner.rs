//! Runs scenarios across seeds, in parallel, and condenses the metrics —
//! plus the traced variants: record a run's full event stream, or replay
//! one against a recorded trace and verify event-for-event equivalence.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

use lockss_core::{CoreObs, TableOccupancy, World, WorldConfig};
use lockss_metrics::{PhaseSummary, Summary};
use lockss_obs::{Profiler, SharedProfiler, Span};
use lockss_sim::{Engine, EngineObs, SimTime};
use lockss_trace::{Recorder, ReplayReport, Trace, TraceError, TraceMeta, Verifier};

use crate::scenario::Scenario;

/// An engine pre-sized for the scenario's population: a 10k+-peer world
/// schedules (peers × AUs) first-poll events plus per-peer damage timers
/// before the first event runs, and the in-flight message population
/// scales the same way. Sizing up front replaces the doubling cascade on
/// the heap and the event arena with one allocation each.
fn engine_for(cfg: &WorldConfig) -> Engine<World> {
    let outstanding = cfg.n_peers * (cfg.n_aus + 1) * 4;
    Engine::with_capacity(outstanding.clamp(1024, 1 << 22))
}

/// Locks a mutex, recovering from poisoning: if a worker panicked while
/// holding the lock, the queue/result state it protects is still valid (a
/// pop or a push completed or didn't), so the surviving workers keep
/// draining instead of cascading panics and wedging `run_batch`.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The measured result of one scenario (mean over seeds), with its matched
/// baseline for the ratio metrics.
#[derive(Clone, Debug)]
pub struct MeasuredPoint {
    pub label: String,
    pub attacked: Summary,
    pub baseline: Summary,
}

impl MeasuredPoint {
    /// Access failure probability under attack.
    pub fn access_failure(&self) -> f64 {
        self.attacked.access_failure_probability
    }

    /// Delay ratio vs the matched baseline (§6.1).
    pub fn delay_ratio(&self) -> Option<f64> {
        self.attacked.delay_ratio(&self.baseline)
    }

    /// Coefficient of friction vs the matched baseline (§6.1).
    pub fn friction(&self) -> Option<f64> {
        self.attacked.coefficient_of_friction(&self.baseline)
    }

    /// Cost ratio (§6.1); meaningful only for effortful attacks.
    pub fn cost_ratio(&self) -> Option<f64> {
        self.attacked.cost_ratio()
    }
}

/// Out-of-band instruments for one run: metric handles cloned into the
/// world/engine and an optional profiler for span timing. `Default` is
/// fully off — the run pays one `Option` check per instrumented site.
///
/// Instruments never perturb a run: counters and spans read protocol
/// state, they never feed it, so summaries, traces, and reports are
/// byte-identical with instruments on or off (enforced by
/// `tests/observability.rs`).
#[derive(Clone, Default)]
pub struct Instruments {
    /// Protocol-layer counters (poll lifecycle, admission, repairs).
    pub core: Option<CoreObs>,
    /// Engine counters (events, arena occupancy).
    pub engine: Option<EngineObs>,
    /// Wall-clock span profiler.
    pub profiler: Option<SharedProfiler>,
}

impl Instruments {
    /// True when nothing is being observed.
    pub fn is_off(&self) -> bool {
        self.core.is_none() && self.engine.is_none() && self.profiler.is_none()
    }
}

/// Runs one seed of a scenario to completion.
pub fn run_once(scenario: &Scenario, seed: u64) -> Summary {
    run_once_with_phases(scenario, seed).0
}

/// Runs one seed and also returns the per-phase metric breakdown (empty
/// unless the attack is a phased composite, which records a mark as each
/// member starts).
pub fn run_once_with_phases(scenario: &Scenario, seed: u64) -> (Summary, Vec<PhaseSummary>) {
    run_once_observed(scenario, seed, &Instruments::default())
}

/// [`run_once_with_phases`] with instruments installed: spans around
/// world build and the simulation loop, metric handles wired into the
/// world and engine.
pub fn run_once_observed(
    scenario: &Scenario,
    seed: u64,
    ins: &Instruments,
) -> (Summary, Vec<PhaseSummary>) {
    let mut cfg = scenario.cfg.clone();
    cfg.seed = seed;
    let mut world = {
        let _span = Span::enter(&ins.profiler, "world-build");
        let mut world = World::new(cfg);
        if let Some(adv) = scenario.attack.build() {
            world.install_adversary(adv);
        }
        world
    };
    if let Some(core) = &ins.core {
        world.set_obs(core.clone());
    }
    if let Some(prof) = &ins.profiler {
        world.set_profiler(prof.clone());
    }
    let mut eng: Engine<World> = engine_for(&scenario.cfg);
    if let Some(engine) = &ins.engine {
        eng.set_obs(engine.clone());
    }
    let end = SimTime::ZERO + scenario.run_length;
    {
        let _span = Span::enter(&ins.profiler, "simulate");
        world.start(&mut eng);
        eng.run_until(&mut world, end);
    }
    (
        world.metrics.summarize(end),
        world.metrics.phase_summaries(end),
    )
}

/// Runs one seed with a trace recorder installed; returns the summary, the
/// per-phase breakdown, and the sealed trace.
///
/// Recording does not perturb the run: emission never touches the RNG or
/// the event queue, so the summary is byte-identical to an untraced
/// [`run_once`] of the same `(scenario, seed)`.
pub fn run_once_recorded(
    scenario: &Scenario,
    seed: u64,
    meta: &TraceMeta,
) -> (Summary, Vec<PhaseSummary>, Trace) {
    run_once_recorded_observed(scenario, seed, meta, &Instruments::default())
}

/// [`run_once_recorded`] with instruments installed; adds a
/// `trace-seal` span around sealing the recorded stream.
pub fn run_once_recorded_observed(
    scenario: &Scenario,
    seed: u64,
    meta: &TraceMeta,
    ins: &Instruments,
) -> (Summary, Vec<PhaseSummary>, Trace) {
    let recorder = Recorder::new(meta);
    let mut cfg = scenario.cfg.clone();
    cfg.seed = seed;
    let mut world = {
        let _span = Span::enter(&ins.profiler, "world-build");
        let mut world = World::new(cfg);
        world.set_trace_sink(Box::new(recorder.clone()));
        if let Some(adv) = scenario.attack.build() {
            world.install_adversary(adv);
        }
        world
    };
    if let Some(core) = &ins.core {
        world.set_obs(core.clone());
    }
    if let Some(prof) = &ins.profiler {
        world.set_profiler(prof.clone());
    }
    let mut eng: Engine<World> = engine_for(&scenario.cfg);
    if let Some(engine) = &ins.engine {
        eng.set_obs(engine.clone());
    }
    let end = SimTime::ZERO + scenario.run_length;
    {
        let _span = Span::enter(&ins.profiler, "simulate");
        world.start(&mut eng);
        eng.run_until(&mut world, end);
    }
    let summary = world.metrics.summarize(end);
    let phases = world.metrics.phase_summaries(end);
    let trace = {
        let _span = Span::enter(&ins.profiler, "trace-seal");
        recorder.finish()
    };
    (summary, phases, trace)
}

/// Replays a scenario at `seed` against a recorded trace, verifying
/// event-for-event equivalence; the run aborts at the first divergence.
///
/// The scenario and seed are the caller's to choose: pass the recorded
/// ones for a faithfulness check (zero divergence expected), or perturb
/// either to locate exactly where two executions fork.
pub fn replay_once(
    scenario: &Scenario,
    seed: u64,
    trace: &Trace,
) -> Result<ReplayReport, TraceError> {
    let verifier = Verifier::new(trace);
    let meta = trace.meta()?;
    let mut cfg = scenario.cfg.clone();
    cfg.seed = seed;
    let mut world = World::new(cfg);
    world.set_trace_sink(Box::new(verifier.clone()));
    if let Some(adv) = scenario.attack.build() {
        world.install_adversary(adv);
    }
    let mut eng: Engine<World> = engine_for(&scenario.cfg);
    world.start(&mut eng);
    let end = SimTime::ZERO + scenario.run_length;
    eng.run_until(&mut world, end);
    verifier.finish(meta)
}

/// Resource accounting of one run, for `--mem-report`.
#[derive(Clone, Debug)]
pub struct RunStats {
    /// The run's metric summary.
    pub summary: Summary,
    /// Process peak RSS in kilobytes (`VmHWM`), where the platform exposes
    /// it. Note: a process-wide high-water mark, so it reflects the
    /// heaviest world this process ever built, not necessarily this run.
    pub peak_rss_kb: Option<u64>,
    /// Event-arena occupancy at end of run: live slots.
    pub arena_live: usize,
    /// Event-arena high-water mark: total slots ever in use at once.
    pub arena_total: usize,
    /// Events executed by the run.
    pub events_executed: u64,
    /// Events still queued at the horizon.
    pub events_queued: usize,
    /// Peer-table heap occupancy at end of run.
    pub table: TableOccupancy,
}

/// Runs one seed and collects the memory/occupancy report alongside the
/// summary (the run itself is identical to [`run_once`]).
pub fn run_once_with_stats(scenario: &Scenario, seed: u64) -> RunStats {
    let mut cfg = scenario.cfg.clone();
    cfg.seed = seed;
    let mut world = World::new(cfg);
    if let Some(adv) = scenario.attack.build() {
        world.install_adversary(adv);
    }
    let mut eng: Engine<World> = engine_for(&scenario.cfg);
    world.start(&mut eng);
    let end = SimTime::ZERO + scenario.run_length;
    eng.run_until(&mut world, end);
    let (arena_live, arena_total) = eng.arena_occupancy();
    RunStats {
        summary: world.metrics.summarize(end),
        peak_rss_kb: peak_rss_kb(),
        arena_live,
        arena_total,
        events_executed: eng.executed(),
        events_queued: eng.queued(),
        table: world.peers.occupancy(),
    }
}

/// The process's peak resident set size in kilobytes, read from
/// `/proc/self/status` (`VmHWM`). `None` on platforms without procfs.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Runs `seeds` seeds of a scenario and returns the mean summary.
pub fn run_scenario(scenario: &Scenario, seeds: u64) -> Summary {
    let runs: Vec<Summary> = (0..seeds).map(|s| run_once(scenario, s + 1)).collect();
    Summary::mean_of(&runs)
}

/// Runs a batch of (key, scenario) jobs × seeds across worker threads;
/// returns mean summaries in input order.
///
/// Workers claim work items by bumping one atomic cursor — no queue lock
/// to contend on or poison. Results are slotted by seed index, not
/// completion order, so the mean (a float reduction, hence
/// order-sensitive) is byte-identical no matter how many threads raced —
/// `threads = 1` and `threads = 4` agree exactly.
pub fn run_batch(jobs: &[Scenario], seeds: u64, threads: usize) -> Vec<Summary> {
    run_batch_observed(jobs, seeds, threads, None, None)
}

/// [`run_batch`] with instruments: workers share the session's metric
/// handles, and each worker profiles into its own tree (under a
/// `worker-chunk` root) that is merged into `profiler` as it exits.
pub fn run_batch_observed(
    jobs: &[Scenario],
    seeds: u64,
    threads: usize,
    session: Option<&crate::obs::ObsSession>,
    profiler: Option<&Mutex<Profiler>>,
) -> Vec<Summary> {
    // Expand into (job index, seed) work items, claimed by atomic index.
    let work: Vec<(usize, u64)> = (0..jobs.len())
        .flat_map(|j| (0..seeds).map(move |s| (j, s + 1)))
        .collect();
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Vec<Option<Summary>>>> = (0..jobs.len())
        .map(|_| Mutex::new(vec![None; seeds as usize]))
        .collect();

    let threads = threads.max(1).min(work.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // Profilers are single-threaded (`Rc`); each worker grows
                // its own tree and merges it on the way out.
                let wprof = profiler.map(|_| Profiler::shared());
                let ins = match session {
                    Some(s) => s.instruments(wprof.clone()),
                    None => Instruments::default(),
                };
                let chunk = Span::enter(&wprof, "worker-chunk");
                loop {
                    let item = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(j, seed)) = work.get(item) else {
                        break;
                    };
                    let summary = if ins.is_off() {
                        run_once(&jobs[j], seed)
                    } else {
                        run_once_observed(&jobs[j], seed, &ins).0
                    };
                    lock(&results[j])[(seed - 1) as usize] = Some(summary);
                }
                drop(chunk);
                if let (Some(wp), Some(merged)) = (wprof, profiler) {
                    lock(merged).absorb(&wp.borrow());
                }
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            let slots = lock(&m);
            let runs: Vec<Summary> = slots.iter().flatten().cloned().collect();
            Summary::mean_of(&runs)
        })
        .collect()
}

/// Default worker-thread count: the machine's parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;
    use lockss_sim::Duration;

    fn tiny() -> Scenario {
        let mut s = Scenario::baseline(Scale::Quick, 2);
        s.run_length = Duration::from_days(120);
        s
    }

    #[test]
    fn run_once_is_deterministic() {
        let s = tiny();
        let a = run_once(&s, 7);
        let b = run_once(&s, 7);
        assert_eq!(a.successful_polls, b.successful_polls);
        assert!((a.loyal_effort_secs - b.loyal_effort_secs).abs() < 1e-9);
    }

    fn tiny_meta(seed: u64) -> TraceMeta {
        TraceMeta {
            scenario: "tiny".into(),
            scale: "quick".into(),
            seed,
            run_length_ms: tiny().run_length.as_millis(),
        }
    }

    #[test]
    fn recording_does_not_perturb_the_run() {
        let s = tiny();
        let plain = run_once(&s, 5);
        let (recorded, _phases, trace) = run_once_recorded(&s, 5, &tiny_meta(5));
        assert_eq!(plain, recorded, "recording must be invisible to the run");
        assert!(trace.decode_all().unwrap().len() > 100, "stream captured");
    }

    #[test]
    fn faithful_replay_is_equivalent() {
        let s = tiny();
        let (_, _, trace) = run_once_recorded(&s, 5, &tiny_meta(5));
        let report = replay_once(&s, 5, &trace).unwrap();
        assert!(report.is_equivalent(), "{report}");
        assert!(report.events_matched > 100);
    }

    #[test]
    fn perturbed_replay_reports_the_first_divergence() {
        let s = tiny();
        let (_, _, trace) = run_once_recorded(&s, 5, &tiny_meta(5));
        let report = replay_once(&s, 6, &trace).unwrap();
        assert!(!report.is_equivalent(), "different seed must fork");
        let d = report.divergence.clone().expect("divergence");
        assert!(d.expected.is_some() || d.actual.is_some());
        // The report names the time and kind of the fork.
        let text = report.to_string();
        assert!(text.contains("day"), "{text}");
    }

    #[test]
    fn batch_matches_sequential() {
        let s = tiny();
        let seq = run_scenario(&s, 2);
        let batch = run_batch(std::slice::from_ref(&s), 2, 4);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].successful_polls, seq.successful_polls);
        assert!((batch[0].loyal_effort_secs - seq.loyal_effort_secs).abs() < 1e-6);
    }
}

//! The paper's §6.3 layering methodology.
//!
//! "Memory limits in the Java Virtual Machine prevent Narses from
//! simulating more than about 50 AUs/peer in a single run. We simulate
//! 600 AU collections by layering 50 AUs/peer runs, adding the tasks
//! caused by this layer's 50 AUs to the task schedule for each peer
//! accumulated during the preceding layers. In effect, layer n is a
//! simulation of 50 AUs on peers already running a realistic workload of
//! 50(n−1) AUs."
//!
//! This reproduction has no JVM limit and simulates large collections
//! directly; the layering technique is implemented anyway so the paper's
//! methodology itself can be validated: `layered_run` simulates `layers ×
//! layer_aus` AUs by running one layer at a time, pre-loading each peer's
//! task schedule with synthetic background commitments matching the
//! per-peer busy-time density measured in the preceding layers — and the
//! validation test checks it against direct simulation (the paper: "we
//! found negligible differences").

use lockss_core::{World, WorldConfig};
use lockss_metrics::Summary;
use lockss_sim::{Duration, Engine, SimTime};

/// Result of a layered simulation.
#[derive(Clone, Debug)]
pub struct LayeredOutcome {
    /// Per-layer summaries (layer n ran with n−1 layers of background
    /// load).
    pub layers: Vec<Summary>,
    /// The §6.3 aggregate: all layers' replicas pooled, weighted equally.
    pub combined: Summary,
}

/// Measured busy density from one layer, re-injected into the next.
#[derive(Clone, Copy, Debug, Default)]
struct BusyDensity {
    /// Mean committed CPU fraction per peer (0..1).
    fraction: f64,
}

/// Runs `layers` sequential simulations of `cfg` (which describes ONE
/// layer, i.e. `cfg.n_aus` = the per-layer collection), accumulating
/// background load between layers, and combines the results.
///
/// # Panics
///
/// Panics if `layers == 0` or the configuration is invalid.
pub fn layered_run(cfg: &WorldConfig, layers: usize, run_length: Duration) -> LayeredOutcome {
    assert!(layers > 0, "need at least one layer");
    let mut density = BusyDensity::default();
    let mut summaries = Vec::with_capacity(layers);
    let end = SimTime::ZERO + run_length;

    for layer in 0..layers {
        let mut layer_cfg = cfg.clone();
        // Independent randomness per layer, reproducible from the seed.
        layer_cfg.seed = cfg
            .seed
            .wrapping_mul(0x9e37_79b9)
            .wrapping_add(layer as u64);
        let mut world = World::new(layer_cfg);

        // Pre-load each peer's schedule with the background commitments of
        // the preceding layers: periodic synthetic tasks matching the
        // measured busy fraction.
        if density.fraction > 0.0 {
            inject_background(&mut world, density, run_length);
        }

        let mut eng: Engine<World> = Engine::new();
        world.start(&mut eng);
        eng.run_until(&mut world, end);
        let summary = world.metrics.summarize(end);

        // Measure this layer's own busy density (committed CPU time per
        // peer over the run), and stack it for the next layer.
        let span = run_length.as_secs_f64();
        let mean_busy: f64 = world
            .peers
            .schedules()
            .iter()
            .map(|s| s.committed_total().as_secs_f64())
            .sum::<f64>()
            / world.peers.len() as f64;
        density.fraction += (mean_busy / span).min(1.0);

        summaries.push(summary);
    }

    let combined = Summary::mean_of(&summaries);
    LayeredOutcome {
        layers: summaries,
        combined,
    }
}

/// Books periodic synthetic busy intervals totalling `density.fraction` of
/// each peer's CPU across the run (one slot per simulated day).
fn inject_background(world: &mut World, density: BusyDensity, run_length: Duration) {
    let slot_period = Duration::DAY;
    let busy_per_slot = slot_period.mul_f64(density.fraction.min(0.9));
    if busy_per_slot.is_zero() {
        return;
    }
    let slots = run_length.as_millis() / slot_period.as_millis();
    for p in 0..world.peers.len() {
        // Random phase so layers do not synchronize (the §5.2 concern).
        let phase = world.rng.duration_between(Duration::ZERO, slot_period);
        for s in 0..slots {
            let start = SimTime::ZERO + phase + slot_period * s;
            let _ = world.peers.schedule_mut(p).try_reserve(
                SimTime::ZERO,
                start,
                start + slot_period,
                busy_per_slot,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;
    use crate::scenario::Scenario;

    #[test]
    fn layering_matches_direct_simulation() {
        // The paper validated layering against unlayered runs and found
        // "negligible differences"; check the same at smoke scale: a
        // 2-layer x 2-AU layered run vs a direct 4-AU run.
        let mut base = Scenario::baseline(Scale::Quick, 2);
        base.cfg.mtbf_years = 1.0; // enough damage to measure
        base.cfg.seed = 17;
        let run_length = Duration::from_days(360);

        let layered = layered_run(&base.cfg, 2, run_length);

        let mut direct_cfg = base.cfg.clone();
        direct_cfg.n_aus = 4;
        let mut world = World::new(direct_cfg);
        let mut eng: Engine<World> = Engine::new();
        world.start(&mut eng);
        let end = SimTime::ZERO + run_length;
        eng.run_until(&mut world, end);
        let direct = world.metrics.summarize(end);

        // Success rates agree closely.
        let lr = layered.combined.successful_polls as f64
            / (layered.combined.successful_polls + layered.combined.failed_polls).max(1) as f64;
        let dr = direct.successful_polls as f64
            / (direct.successful_polls + direct.failed_polls).max(1) as f64;
        assert!((lr - dr).abs() < 0.05, "success rates {lr} vs {dr}");

        // Per-AU poll throughput agrees within 10% (layered counts 2 AUs
        // per layer; direct counts 4).
        let per_au_layered = layered
            .layers
            .iter()
            .map(|s| s.successful_polls)
            .sum::<u64>() as f64
            / 4.0;
        let per_au_direct = direct.successful_polls as f64 / 4.0;
        let rel = (per_au_layered - per_au_direct).abs() / per_au_direct;
        assert!(
            rel < 0.10,
            "per-AU polls {per_au_layered} vs {per_au_direct}"
        );
    }

    #[test]
    fn later_layers_carry_background_load() {
        let mut base = Scenario::baseline(Scale::Quick, 2);
        base.cfg.seed = 23;
        let outcome = layered_run(&base.cfg, 3, Duration::from_days(180));
        assert_eq!(outcome.layers.len(), 3);
        // All layers still function.
        for (i, layer) in outcome.layers.iter().enumerate() {
            let rate = layer.successful_polls as f64
                / (layer.successful_polls + layer.failed_polls).max(1) as f64;
            assert!(rate > 0.7, "layer {i} success rate {rate}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn zero_layers_panics() {
        let base = Scenario::baseline(Scale::Quick, 2);
        let _ = layered_run(&base.cfg, 0, Duration::from_days(30));
    }
}

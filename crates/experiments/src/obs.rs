//! Experiment-level observability: one registry session that wires the
//! protocol ([`CoreObs`]) and engine ([`EngineObs`]) metric handles
//! together with the sweep fabric's own counters, plus the heartbeat
//! telemetry configuration sweeps thread down to their workers.
//!
//! Everything here is strictly out-of-band, like tracing: a session
//! observes a run, it never steers one. The byte-identity tests in
//! `tests/observability.rs` hold the harness to that.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use lockss_core::CoreObs;
use lockss_obs::{Counter, Profiler, Registry, RegistryBuilder, SharedProfiler};
use lockss_sim::EngineObs;

use crate::runner::Instruments;

/// One observability session: a sealed metrics registry with every
/// handle the harness knows about pre-registered, shared by all worlds,
/// engines, and sweep workers the process runs.
///
/// Handles are `Arc` clones around atomics, so a session can be read
/// (for heartbeats or a final snapshot) while workers are still
/// bumping the counters.
pub struct ObsSession {
    /// The sealed registry; snapshot with [`ObsSession::write_metrics`].
    pub registry: Registry,
    /// Protocol-layer handles, cloned into each observed world.
    pub core: CoreObs,
    /// Engine handles, cloned into each observed engine.
    pub engine: EngineObs,
    /// Seeds completed by sweep workers.
    pub sweep_seeds: Counter,
    /// Worker chunks started (one per worker thread per sweep).
    pub sweep_chunks: Counter,
    /// When the session was created; heartbeat rates are relative to it.
    pub started: Instant,
}

impl ObsSession {
    /// Builds the registry and every handle.
    pub fn new() -> ObsSession {
        let mut b = RegistryBuilder::new();
        let core = CoreObs::register(&mut b);
        let engine = EngineObs::register(&mut b);
        let sweep_seeds = b.counter(
            "sweep_seeds_completed_total",
            "Seeds completed by sweep workers",
        );
        let sweep_chunks = b.counter(
            "sweep_worker_chunks_total",
            "Worker chunks started by sweeps (one per worker thread)",
        );
        ObsSession {
            registry: b.build(),
            core,
            engine,
            sweep_seeds,
            sweep_chunks,
            started: Instant::now(),
        }
    }

    /// Run-level instruments backed by this session's handles, plus an
    /// optional profiler for span timing.
    pub fn instruments(&self, profiler: Option<SharedProfiler>) -> Instruments {
        Instruments {
            core: Some(self.core.clone()),
            engine: Some(self.engine.clone()),
            profiler,
        }
    }

    /// Writes the JSON snapshot to `path` and the Prometheus text
    /// exposition next to it (same stem, `.prom` extension); returns the
    /// Prometheus path.
    pub fn write_metrics(&self, path: &Path) -> io::Result<PathBuf> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.registry.to_json())?;
        let prom = path.with_extension("prom");
        std::fs::write(&prom, self.registry.to_prometheus())?;
        Ok(prom)
    }
}

impl Default for ObsSession {
    fn default() -> Self {
        Self::new()
    }
}

/// Heartbeat telemetry configuration for one sweep.
#[derive(Clone, Debug)]
pub struct Telemetry {
    /// Directory the heartbeat JSONL files land in (created if missing).
    pub dir: PathBuf,
    /// Emission interval. Heartbeats are time-based, not per-seed: the
    /// protocol counters advance *during* a seed, so a long seed still
    /// shows progress — which is exactly what lets `sweep dispatch` tell
    /// a slow shard from a stalled one.
    pub interval: Duration,
}

impl Telemetry {
    /// Telemetry into `dir` at the default 2-second cadence.
    pub fn new(dir: &Path) -> Telemetry {
        Telemetry {
            dir: dir.to_path_buf(),
            interval: Duration::from_millis(2000),
        }
    }
}

/// The heartbeat JSONL path for a (possibly sharded) sweep of
/// `scenario` under `dir`. Shards are `(index, count)` with the 1-based
/// index the checkpoint names use.
pub fn heartbeat_path(dir: &Path, scenario: &str, shard: Option<(u64, u64)>) -> PathBuf {
    match shard {
        Some((i, n)) => dir.join(format!("heartbeat-{scenario}-s{i}of{n}.jsonl")),
        None => dir.join(format!("heartbeat-{scenario}.jsonl")),
    }
}

/// Observability hooks a sweep threads through its orchestrator: the
/// shared session (always), a merge target for per-worker profilers
/// (when profiling), and heartbeat telemetry (when requested).
pub struct SweepObs<'a> {
    /// The session whose handles workers bump.
    pub session: &'a ObsSession,
    /// Per-worker profilers are absorbed here as each worker exits.
    pub profiler: Option<&'a Mutex<Profiler>>,
    /// Heartbeat emission, when `--telemetry` is on.
    pub telemetry: Option<Telemetry>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_registers_all_layers() {
        let s = ObsSession::new();
        let json = s.registry.to_json();
        for key in [
            "polls_started_total",
            "engine_events_executed_total",
            "sweep_seeds_completed_total",
            "sweep_worker_chunks_total",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn write_metrics_emits_both_formats() {
        let dir = std::env::temp_dir().join(format!("obs-session-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let s = ObsSession::new();
        s.core.polls_started.add(3);
        let json_path = dir.join("metrics.json");
        let prom_path = s.write_metrics(&json_path).unwrap();
        let json = std::fs::read_to_string(&json_path).unwrap();
        let prom = std::fs::read_to_string(&prom_path).unwrap();
        assert!(json.contains("\"polls_started_total\": 3"));
        assert!(prom.contains("polls_started_total 3"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn heartbeat_paths_name_the_shard() {
        let d = Path::new("tele");
        assert_eq!(
            heartbeat_path(d, "attrition", Some((2, 4))),
            d.join("heartbeat-attrition-s2of4.jsonl")
        );
        assert_eq!(
            heartbeat_path(d, "attrition", None),
            d.join("heartbeat-attrition.jsonl")
        );
    }
}

//! Declarative scenario files: the serialization layer behind the
//! registry.
//!
//! A [`ScenarioSpec`] is the data form of one registry entry: world
//! knobs, an [`AttackSpec`] tree (including phased composites), and the
//! catalog metadata, all round-tripping through the workspace's
//! fixed-schema JSON reader ([`lockss_sim::json`]). Three guarantees make
//! the files first-class citizens:
//!
//! - **exact float round-trip** — floats are written in shortest-repr
//!   form and parsed back to the same bits, so
//!   `encode(decode(encode(s))) == encode(s)` byte-for-byte;
//! - **schema errors with context** — syntax errors carry `line:column`
//!   (via [`json::line_col`]), field errors carry the dotted field path
//!   (`attack.members[1].coverage`), and unknown fields are rejected;
//! - **builder equivalence** — [`ScenarioSpec::build`] layers the world
//!   knobs over [`Scenario::attacked`] exactly as the pre-refactor
//!   builder closures did, so a spec-loaded scenario is structurally
//!   identical to its hand-coded ancestor (`tests/golden_scenarios.rs`
//!   proves this for every checked-in file).
//!
//! The checked-in corpus lives in `scenarios/*.json`; the CLI loads
//! further files at runtime (`lockss-sim run --file`, `validate`), and
//! the campaign fuzzer ([`crate::fuzz`]) generates random specs from
//! this grammar.

use lockss_adversary::Defection;
use lockss_sim::json::{self, Value};
use lockss_sim::Duration;

use crate::scale::Scale;
use crate::scenario::{phased, AttackSpec, Scenario};

use std::fmt;

/// The format tag every scenario file must carry.
pub const FORMAT: &str = "lockss-scenario-v1";

/// A schema error: what went wrong, where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    /// Dotted path of the offending field (empty for document-level
    /// errors), e.g. `attack.members[1].coverage`.
    pub path: String,
    /// What went wrong.
    pub message: String,
    /// `1`-based `(line, column)` for syntax errors.
    pub location: Option<(usize, usize)>,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.location, self.path.is_empty()) {
            (Some((line, col)), _) => write!(f, "line {line}:{col}: {}", self.message),
            (None, false) => write!(f, "field '{}': {}", self.path, self.message),
            (None, true) => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for SpecError {}

fn field_err(path: &str, message: impl Into<String>) -> SpecError {
    SpecError {
        path: path.to_string(),
        message: message.into(),
        location: None,
    }
}

/// Loyal-population size: follow the experiment scale, or pin a count
/// (the production-scale worlds pin 10,000+).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PeersSpec {
    /// `Scale::n_peers()` (40 quick / 100 default and paper).
    Scale,
    /// A fixed population.
    Fixed(usize),
}

/// Collection size: the scale's small or large collection, or a fixed
/// AU count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AusSpec {
    /// `Scale::small_collection()`.
    Small,
    /// `Scale::large_collection()`.
    Large,
    /// A fixed AU count.
    Fixed(usize),
}

/// Run length: the scale's default horizon, one fixed length, or one
/// length per scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunSpec {
    /// `Scale::run_length()`.
    Scale,
    /// A fixed number of simulated days at every scale.
    Days(u64),
    /// A per-scale horizon (the scale-layer worlds run shorter smoke
    /// horizons at `quick`).
    PerScale {
        /// Days at `Scale::Quick`.
        quick: u64,
        /// Days at `Scale::Default`.
        default: u64,
        /// Days at `Scale::Paper`.
        paper: u64,
    },
}

/// The world half of a scenario file: every knob the registry's builder
/// closures used to set in code.
#[derive(Clone, Debug, PartialEq)]
pub struct WorldSpec {
    /// Loyal population.
    pub peers: PeersSpec,
    /// Collection size.
    pub aus: AusSpec,
    /// Storage MTBF in years.
    pub mtbf_years: f64,
    /// Optional skewed access-link mix (low → high bandwidth weights).
    pub link_mix: Option<[f64; 3]>,
    /// Optional inter-poll interval override, in months.
    pub poll_months: Option<u64>,
    /// Run length.
    pub run: RunSpec,
}

impl Default for WorldSpec {
    fn default() -> WorldSpec {
        WorldSpec {
            peers: PeersSpec::Scale,
            aus: AusSpec::Small,
            mtbf_years: 5.0,
            link_mix: None,
            poll_months: None,
            run: RunSpec::Scale,
        }
    }
}

/// One declarative scenario: catalog metadata, world, attack.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Unique, CLI-addressable name (kebab-case).
    pub name: String,
    /// One-line description of the world and what it demonstrates.
    pub description: String,
    /// The paper figure/table/section the scenario reproduces or extends.
    pub paper_ref: String,
    /// World knobs.
    pub world: WorldSpec,
    /// The attack campaign.
    pub attack: AttackSpec,
}

// ---------------------------------------------------------------------
// Encoding: canonical, pretty-printed, shortest-repr floats.
// ---------------------------------------------------------------------

/// Shortest round-trip representation of a finite float (`5` for `5.0`,
/// `0.30000000000000004` stays exact).
fn fmt_f64(x: f64) -> String {
    debug_assert!(x.is_finite(), "scenario floats must be finite");
    format!("{x}")
}

fn push_attack(out: &mut String, attack: &AttackSpec, indent: usize) {
    let pad = "  ".repeat(indent);
    let inner = "  ".repeat(indent + 1);
    match attack {
        AttackSpec::None => out.push_str("{\"kind\": \"none\"}"),
        AttackSpec::PipeStoppage { coverage, days } => out.push_str(&format!(
            "{{\"kind\": \"pipe-stoppage\", \"coverage\": {}, \"days\": {days}}}",
            fmt_f64(*coverage)
        )),
        AttackSpec::AdmissionFlood { coverage, days } => out.push_str(&format!(
            "{{\"kind\": \"admission-flood\", \"coverage\": {}, \"days\": {days}}}",
            fmt_f64(*coverage)
        )),
        AttackSpec::BruteForce { defection } => out.push_str(&format!(
            "{{\"kind\": \"brute-force\", \"defection\": \"{}\"}}",
            defection.label()
        )),
        AttackSpec::VoteFlood {
            votes_per_wave,
            wave_hours,
        } => out.push_str(&format!(
            "{{\"kind\": \"vote-flood\", \"votes_per_wave\": {votes_per_wave}, \
             \"wave_hours\": {wave_hours}}}"
        )),
        AttackSpec::ChurnStorm { coverage, duty } => out.push_str(&format!(
            "{{\"kind\": \"churn-storm\", \"coverage\": {}, \"duty\": {}}}",
            fmt_f64(*coverage),
            fmt_f64(*duty)
        )),
        AttackSpec::SybilRamp { step, step_days } => out.push_str(&format!(
            "{{\"kind\": \"sybil-ramp\", \"step\": {}, \"step_days\": {step_days}}}",
            fmt_f64(*step)
        )),
        AttackSpec::MobileTakeover {
            budget,
            period_days,
        } => out.push_str(&match period_days {
            None => format!(
                "{{\"kind\": \"mobile-takeover\", \"budget\": {budget}, \
                 \"cadence\": \"synced\"}}"
            ),
            Some(days) => format!(
                "{{\"kind\": \"mobile-takeover\", \"budget\": {budget}, \
                 \"cadence\": \"fixed\", \"period_days\": {days}}}"
            ),
        }),
        AttackSpec::Compose(members) => {
            out.push_str("{\n");
            out.push_str(&format!("{inner}\"kind\": \"compose\",\n"));
            out.push_str(&format!("{inner}\"members\": ["));
            if members.is_empty() {
                out.push_str("]\n");
            } else {
                out.push('\n');
                let member_pad = "  ".repeat(indent + 2);
                for (i, m) in members.iter().enumerate() {
                    out.push_str(&format!(
                        "{member_pad}{{\"start_days\": {}, \"attack\": ",
                        m.start_days
                    ));
                    push_attack(out, &m.attack, indent + 2);
                    out.push('}');
                    out.push_str(if i + 1 < members.len() { ",\n" } else { "\n" });
                }
                out.push_str(&format!("{inner}]\n"));
            }
            out.push_str(&format!("{pad}}}"));
        }
    }
}

impl ScenarioSpec {
    /// The canonical file encoding: stable field order, two-space
    /// indent, shortest-repr floats, trailing newline. Every checked-in
    /// `scenarios/*.json` file is exactly this function's output.
    pub fn to_json(&self) -> String {
        let w = &self.world;
        let mut out = String::with_capacity(512);
        out.push_str("{\n");
        out.push_str(&format!("  \"format\": \"{FORMAT}\",\n"));
        out.push_str(&format!("  \"name\": \"{}\",\n", json::escape(&self.name)));
        out.push_str(&format!(
            "  \"description\": \"{}\",\n",
            json::escape(&self.description)
        ));
        out.push_str(&format!(
            "  \"paper_ref\": \"{}\",\n",
            json::escape(&self.paper_ref)
        ));
        out.push_str("  \"world\": {\n");
        out.push_str(&match w.peers {
            PeersSpec::Scale => "    \"peers\": \"scale\",\n".to_string(),
            PeersSpec::Fixed(n) => format!("    \"peers\": {n},\n"),
        });
        out.push_str(&match w.aus {
            AusSpec::Small => "    \"aus\": \"small\",\n".to_string(),
            AusSpec::Large => "    \"aus\": \"large\",\n".to_string(),
            AusSpec::Fixed(n) => format!("    \"aus\": {n},\n"),
        });
        out.push_str(&format!("    \"mtbf_years\": {},\n", fmt_f64(w.mtbf_years)));
        out.push_str(&match w.link_mix {
            None => "    \"link_mix\": null,\n".to_string(),
            Some(mix) => format!(
                "    \"link_mix\": [{}, {}, {}],\n",
                fmt_f64(mix[0]),
                fmt_f64(mix[1]),
                fmt_f64(mix[2])
            ),
        });
        out.push_str(&match w.poll_months {
            None => "    \"poll_months\": null,\n".to_string(),
            Some(m) => format!("    \"poll_months\": {m},\n"),
        });
        out.push_str(&match w.run {
            RunSpec::Scale => "    \"run_days\": \"scale\"\n".to_string(),
            RunSpec::Days(d) => format!("    \"run_days\": {d}\n"),
            RunSpec::PerScale {
                quick,
                default,
                paper,
            } => format!(
                "    \"run_days\": {{\"quick\": {quick}, \"default\": {default}, \
                 \"paper\": {paper}}}\n"
            ),
        });
        out.push_str("  },\n");
        out.push_str("  \"attack\": ");
        push_attack(&mut out, &self.attack, 1);
        out.push_str("\n}\n");
        out
    }

    /// Parses one scenario file. Unknown fields, wrong types, missing
    /// fields, and unknown attack kinds are all rejected with the
    /// offending field path; syntax errors carry their `line:column`.
    pub fn from_json(text: &str) -> Result<ScenarioSpec, SpecError> {
        let doc = json::parse(text).map_err(|e| SpecError {
            path: String::new(),
            message: e.message,
            location: Some(json::line_col(text, e.at)),
        })?;
        let root = expect_object(&doc, "")?;
        reject_unknown(
            root,
            &[
                "format",
                "name",
                "description",
                "paper_ref",
                "world",
                "attack",
            ],
            "",
        )?;
        let format = str_field(root, "format", "format")?;
        if format != FORMAT {
            return Err(field_err(
                "format",
                format!("unsupported format '{format}' (this build reads '{FORMAT}')"),
            ));
        }
        Ok(ScenarioSpec {
            name: str_field(root, "name", "name")?.to_string(),
            description: str_field(root, "description", "description")?.to_string(),
            paper_ref: str_field(root, "paper_ref", "paper_ref")?.to_string(),
            world: decode_world(require(root, "world", "world")?)?,
            attack: decode_attack(require(root, "attack", "attack")?, "attack")?,
        })
    }

    /// Builds the runnable scenario at `scale`, layering the world knobs
    /// over [`Scenario::attacked`] exactly as the pre-refactor builder
    /// closures did.
    pub fn build(&self, scale: Scale) -> Scenario {
        let n_aus = match self.world.aus {
            AusSpec::Small => scale.small_collection(),
            AusSpec::Large => scale.large_collection(),
            AusSpec::Fixed(n) => n,
        };
        let mut s = Scenario::attacked(scale, n_aus, self.attack.clone());
        if let PeersSpec::Fixed(n) = self.world.peers {
            s.cfg.n_peers = n;
        }
        s.cfg.mtbf_years = self.world.mtbf_years;
        s.cfg.link_mix = self.world.link_mix;
        if let Some(months) = self.world.poll_months {
            s.cfg.protocol.poll_interval = Duration::MONTH * months;
        }
        match self.world.run {
            RunSpec::Scale => {}
            RunSpec::Days(d) => s.run_length = Duration::from_days(d),
            RunSpec::PerScale {
                quick,
                default,
                paper,
            } => {
                s.run_length = Duration::from_days(match scale {
                    Scale::Quick => quick,
                    Scale::Default => default,
                    Scale::Paper => paper,
                });
            }
        }
        s
    }

    /// Semantic checks beyond the schema: kebab-case name, finite knobs,
    /// and a world that validates at every scale.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty()
            || !self
                .name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
        {
            return Err(format!("name '{}' is not kebab-case", self.name));
        }
        if !self.world.mtbf_years.is_finite() || self.world.mtbf_years <= 0.0 {
            return Err("mtbf_years must be positive and finite".into());
        }
        if self.world.poll_months == Some(0) {
            return Err("poll_months must be positive".into());
        }
        validate_attack(&self.attack)?;
        for scale in [Scale::Quick, Scale::Default, Scale::Paper] {
            let s = self.build(scale);
            s.cfg
                .validate()
                .map_err(|e| format!("world invalid at {} scale: {e}", scale.label()))?;
            if s.run_length.is_zero() {
                return Err(format!("run length is zero at {} scale", scale.label()));
            }
        }
        Ok(())
    }
}

fn validate_attack(attack: &AttackSpec) -> Result<(), String> {
    let unit = |x: f64, what: &str| {
        if x.is_finite() && (0.0..=1.0).contains(&x) {
            Ok(())
        } else {
            Err(format!("{what} must be in [0,1]"))
        }
    };
    match attack {
        AttackSpec::None | AttackSpec::BruteForce { .. } => Ok(()),
        AttackSpec::PipeStoppage { coverage, days }
        | AttackSpec::AdmissionFlood { coverage, days } => {
            unit(*coverage, "coverage")?;
            if *days == 0 {
                return Err("attack cycle days must be positive".into());
            }
            Ok(())
        }
        AttackSpec::VoteFlood {
            votes_per_wave,
            wave_hours,
        } => {
            if *votes_per_wave == 0 || *wave_hours == 0 {
                return Err("vote-flood wave shape must be positive".into());
            }
            Ok(())
        }
        AttackSpec::ChurnStorm { coverage, duty } => {
            unit(*coverage, "coverage")?;
            unit(*duty, "duty")
        }
        AttackSpec::SybilRamp { step, step_days } => {
            unit(*step, "step")?;
            if *step_days == 0 {
                return Err("sybil-ramp step_days must be positive".into());
            }
            Ok(())
        }
        AttackSpec::MobileTakeover {
            budget,
            period_days,
        } => {
            if *budget == 0 {
                return Err("mobile-takeover budget must be positive".into());
            }
            if *period_days == Some(0) {
                return Err("mobile-takeover period_days must be positive".into());
            }
            Ok(())
        }
        AttackSpec::Compose(members) => {
            for m in members {
                validate_attack(&m.attack)?;
            }
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------
// Decoding helpers: dotted field paths, unknown-field rejection.
// ---------------------------------------------------------------------

fn expect_object<'v>(v: &'v Value, path: &str) -> Result<&'v [(String, Value)], SpecError> {
    match v {
        Value::Obj(fields) => Ok(fields),
        other => Err(field_err(
            path,
            format!("expected object, got {}", other.type_name()),
        )),
    }
}

fn reject_unknown(
    fields: &[(String, Value)],
    allowed: &[&str],
    path: &str,
) -> Result<(), SpecError> {
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            let at = if path.is_empty() {
                key.clone()
            } else {
                format!("{path}.{key}")
            };
            return Err(field_err(
                &at,
                format!("unknown field (expected one of: {})", allowed.join(", ")),
            ));
        }
    }
    Ok(())
}

fn require<'v>(
    fields: &'v [(String, Value)],
    key: &str,
    path: &str,
) -> Result<&'v Value, SpecError> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| field_err(path, format!("missing field '{key}'")))
}

fn str_field<'v>(
    fields: &'v [(String, Value)],
    key: &str,
    path: &str,
) -> Result<&'v str, SpecError> {
    require(fields, key, path)?
        .as_str(key)
        .map_err(|m| field_err(path, m))
}

fn f64_field(fields: &[(String, Value)], key: &str, path: &str) -> Result<f64, SpecError> {
    let x = require(fields, key, path)?
        .as_f64(key)
        .map_err(|m| field_err(path, m))?;
    if !x.is_finite() {
        return Err(field_err(path, "must be finite"));
    }
    Ok(x)
}

fn u64_field(fields: &[(String, Value)], key: &str, path: &str) -> Result<u64, SpecError> {
    require(fields, key, path)?
        .as_u64(key)
        .map_err(|m| field_err(path, m))
}

fn decode_world(v: &Value) -> Result<WorldSpec, SpecError> {
    let fields = expect_object(v, "world")?;
    reject_unknown(
        fields,
        &[
            "peers",
            "aus",
            "mtbf_years",
            "link_mix",
            "poll_months",
            "run_days",
        ],
        "world",
    )?;
    let peers = match require(fields, "peers", "world")? {
        Value::Str(s) if s == "scale" => PeersSpec::Scale,
        Value::Str(s) => {
            return Err(field_err(
                "world.peers",
                format!("expected \"scale\" or a count, got \"{s}\""),
            ))
        }
        n => PeersSpec::Fixed(n.as_u64("peers").map_err(|m| field_err("world.peers", m))? as usize),
    };
    let aus = match require(fields, "aus", "world")? {
        Value::Str(s) if s == "small" => AusSpec::Small,
        Value::Str(s) if s == "large" => AusSpec::Large,
        Value::Str(s) => {
            return Err(field_err(
                "world.aus",
                format!("expected \"small\", \"large\", or a count, got \"{s}\""),
            ))
        }
        n => AusSpec::Fixed(n.as_u64("aus").map_err(|m| field_err("world.aus", m))? as usize),
    };
    let mtbf_years = f64_field(fields, "mtbf_years", "world.mtbf_years")?;
    let link_mix = match json::get_opt(fields, "link_mix") {
        None => {
            require(fields, "link_mix", "world")?; // absent vs explicit null
            None
        }
        Some(v) => {
            let items = v
                .as_array("link_mix")
                .map_err(|m| field_err("world.link_mix", m))?;
            if items.len() != 3 {
                return Err(field_err(
                    "world.link_mix",
                    format!("expected exactly 3 weights, got {}", items.len()),
                ));
            }
            let mut mix = [0.0; 3];
            for (i, item) in items.iter().enumerate() {
                mix[i] = item
                    .as_f64("weight")
                    .map_err(|m| field_err(&format!("world.link_mix[{i}]"), m))?;
            }
            Some(mix)
        }
    };
    let poll_months = match json::get_opt(fields, "poll_months") {
        None => {
            require(fields, "poll_months", "world")?;
            None
        }
        Some(v) => Some(
            v.as_u64("poll_months")
                .map_err(|m| field_err("world.poll_months", m))?,
        ),
    };
    let run = match require(fields, "run_days", "world")? {
        Value::Str(s) if s == "scale" => RunSpec::Scale,
        Value::Str(s) => {
            return Err(field_err(
                "world.run_days",
                format!("expected \"scale\", a day count, or a per-scale object, got \"{s}\""),
            ))
        }
        Value::Obj(per) => {
            reject_unknown(per, &["quick", "default", "paper"], "world.run_days")?;
            RunSpec::PerScale {
                quick: u64_field(per, "quick", "world.run_days.quick")?,
                default: u64_field(per, "default", "world.run_days.default")?,
                paper: u64_field(per, "paper", "world.run_days.paper")?,
            }
        }
        n => RunSpec::Days(
            n.as_u64("run_days")
                .map_err(|m| field_err("world.run_days", m))?,
        ),
    };
    Ok(WorldSpec {
        peers,
        aus,
        mtbf_years,
        link_mix,
        poll_months,
        run,
    })
}

fn decode_attack(v: &Value, path: &str) -> Result<AttackSpec, SpecError> {
    let fields = expect_object(v, path)?;
    let kind = str_field(fields, "kind", path)?;
    let only = |allowed: &[&str]| reject_unknown(fields, allowed, path);
    let sub = |key: &str| format!("{path}.{key}");
    match kind {
        "none" => {
            only(&["kind"])?;
            Ok(AttackSpec::None)
        }
        "pipe-stoppage" => {
            only(&["kind", "coverage", "days"])?;
            Ok(AttackSpec::PipeStoppage {
                coverage: f64_field(fields, "coverage", &sub("coverage"))?,
                days: u64_field(fields, "days", &sub("days"))?,
            })
        }
        "admission-flood" => {
            only(&["kind", "coverage", "days"])?;
            Ok(AttackSpec::AdmissionFlood {
                coverage: f64_field(fields, "coverage", &sub("coverage"))?,
                days: u64_field(fields, "days", &sub("days"))?,
            })
        }
        "brute-force" => {
            only(&["kind", "defection"])?;
            let defection = match str_field(fields, "defection", &sub("defection"))? {
                "INTRO" => Defection::Intro,
                "REMAINING" => Defection::Remaining,
                "NONE" => Defection::None_,
                other => {
                    return Err(field_err(
                        &sub("defection"),
                        format!("unknown defection point '{other}' (INTRO, REMAINING, NONE)"),
                    ))
                }
            };
            Ok(AttackSpec::BruteForce { defection })
        }
        "vote-flood" => {
            only(&["kind", "votes_per_wave", "wave_hours"])?;
            let votes = u64_field(fields, "votes_per_wave", &sub("votes_per_wave"))?;
            let votes = u32::try_from(votes)
                .map_err(|_| field_err(&sub("votes_per_wave"), "does not fit in u32"))?;
            Ok(AttackSpec::VoteFlood {
                votes_per_wave: votes,
                wave_hours: u64_field(fields, "wave_hours", &sub("wave_hours"))?,
            })
        }
        "churn-storm" => {
            only(&["kind", "coverage", "duty"])?;
            Ok(AttackSpec::ChurnStorm {
                coverage: f64_field(fields, "coverage", &sub("coverage"))?,
                duty: f64_field(fields, "duty", &sub("duty"))?,
            })
        }
        "sybil-ramp" => {
            only(&["kind", "step", "step_days"])?;
            Ok(AttackSpec::SybilRamp {
                step: f64_field(fields, "step", &sub("step"))?,
                step_days: u64_field(fields, "step_days", &sub("step_days"))?,
            })
        }
        "mobile-takeover" => {
            only(&["kind", "budget", "cadence", "period_days"])?;
            let budget = u64_field(fields, "budget", &sub("budget"))?;
            let budget = u32::try_from(budget)
                .map_err(|_| field_err(&sub("budget"), "does not fit in u32"))?;
            let cadence = str_field(fields, "cadence", &sub("cadence"))?;
            let period_days = match cadence {
                "synced" => {
                    if fields.iter().any(|(k, _)| k == "period_days") {
                        return Err(field_err(
                            &sub("period_days"),
                            "dangling migration cadence: \"synced\" takes no period_days",
                        ));
                    }
                    None
                }
                "fixed" => Some(u64_field(fields, "period_days", &sub("period_days"))?),
                other => {
                    return Err(field_err(
                        &sub("cadence"),
                        format!("unknown migration cadence '{other}' (synced, fixed)"),
                    ))
                }
            };
            Ok(AttackSpec::MobileTakeover {
                budget,
                period_days,
            })
        }
        "compose" => {
            only(&["kind", "members"])?;
            let members_path = sub("members");
            let items = require(fields, "members", path)?
                .as_array("members")
                .map_err(|m| field_err(&members_path, m))?;
            let mut members = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                let member_path = format!("{members_path}[{i}]");
                let member = expect_object(item, &member_path)?;
                reject_unknown(member, &["start_days", "attack"], &member_path)?;
                let start_days = u64_field(member, "start_days", &member_path)?;
                let attack = decode_attack(
                    require(member, "attack", &member_path)?,
                    &format!("{member_path}.attack"),
                )?;
                members.push(phased(start_days, attack));
            }
            Ok(AttackSpec::Compose(members))
        }
        other => Err(field_err(
            &sub("kind"),
            format!(
                "unknown attack kind '{other}' (none, pipe-stoppage, admission-flood, \
                 brute-force, vote-flood, churn-storm, sybil-ramp, mobile-takeover, compose)"
            ),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScenarioSpec {
        ScenarioSpec {
            name: "stoppage-then-flood".into(),
            description: "composite demo".into(),
            paper_ref: "§7.2 + §7.3".into(),
            world: WorldSpec::default(),
            attack: AttackSpec::Compose(vec![
                phased(
                    0,
                    AttackSpec::PipeStoppage {
                        coverage: 1.0,
                        days: 60,
                    },
                ),
                phased(
                    90,
                    AttackSpec::AdmissionFlood {
                        coverage: 0.30000000000000004,
                        days: 360,
                    },
                ),
            ]),
        }
    }

    #[test]
    fn encode_decode_encode_is_identity() {
        let spec = sample();
        let once = spec.to_json();
        let decoded = ScenarioSpec::from_json(&once).expect("decode");
        assert_eq!(decoded, spec);
        assert_eq!(decoded.to_json(), once, "byte identity");
    }

    #[test]
    fn every_attack_kind_round_trips() {
        let attacks = [
            AttackSpec::None,
            AttackSpec::PipeStoppage {
                coverage: 0.4,
                days: 30,
            },
            AttackSpec::AdmissionFlood {
                coverage: 1.0,
                days: 720,
            },
            AttackSpec::BruteForce {
                defection: Defection::Intro,
            },
            AttackSpec::BruteForce {
                defection: Defection::Remaining,
            },
            AttackSpec::BruteForce {
                defection: Defection::None_,
            },
            AttackSpec::VoteFlood {
                votes_per_wave: 4,
                wave_hours: 6,
            },
            AttackSpec::ChurnStorm {
                coverage: 0.5,
                duty: 0.7,
            },
            AttackSpec::SybilRamp {
                step: 0.25,
                step_days: 45,
            },
            AttackSpec::MobileTakeover {
                budget: 5,
                period_days: None,
            },
            AttackSpec::MobileTakeover {
                budget: 2,
                period_days: Some(45),
            },
            AttackSpec::Compose(vec![phased(
                10,
                AttackSpec::Compose(vec![phased(
                    5,
                    AttackSpec::VoteFlood {
                        votes_per_wave: 1,
                        wave_hours: 12,
                    },
                )]),
            )]),
        ];
        for attack in attacks {
            let spec = ScenarioSpec {
                attack: attack.clone(),
                ..sample()
            };
            let round = ScenarioSpec::from_json(&spec.to_json()).expect("decode");
            assert_eq!(round.attack, attack);
        }
    }

    #[test]
    fn world_variants_round_trip() {
        let worlds = [
            WorldSpec::default(),
            WorldSpec {
                peers: PeersSpec::Fixed(10_000),
                aus: AusSpec::Fixed(1),
                link_mix: Some([0.6, 0.3, 0.1]),
                run: RunSpec::PerScale {
                    quick: 200,
                    default: 540,
                    paper: 540,
                },
                ..WorldSpec::default()
            },
            WorldSpec {
                aus: AusSpec::Large,
                mtbf_years: 1.25,
                poll_months: Some(6),
                run: RunSpec::Days(180),
                ..WorldSpec::default()
            },
        ];
        for world in worlds {
            let spec = ScenarioSpec {
                world: world.clone(),
                ..sample()
            };
            let round = ScenarioSpec::from_json(&spec.to_json()).expect("decode");
            assert_eq!(round.world, world);
        }
    }

    #[test]
    fn build_matches_hand_built_baseline() {
        let spec = ScenarioSpec {
            name: "baseline".into(),
            description: "d".into(),
            paper_ref: "p".into(),
            world: WorldSpec::default(),
            attack: AttackSpec::None,
        };
        for scale in [Scale::Quick, Scale::Default, Scale::Paper] {
            let built = spec.build(scale);
            let legacy = Scenario::baseline(scale, scale.small_collection());
            assert_eq!(built, legacy, "at {scale:?}");
        }
    }

    #[test]
    fn syntax_errors_carry_line_and_column() {
        let err = ScenarioSpec::from_json("{\n  \"format\": !\n}").unwrap_err();
        let (line, _col) = err.location.expect("location");
        assert_eq!(line, 2);
        assert!(err.to_string().starts_with("line 2:"), "{err}");
    }

    #[test]
    fn unknown_fields_are_rejected_with_paths() {
        let mut spec = sample();
        spec.attack = AttackSpec::None;
        let doc = spec.to_json().replace(
            "\"mtbf_years\": 5,",
            "\"mtbf_years\": 5,\n    \"mtbf_yaers\": 5,",
        );
        let err = ScenarioSpec::from_json(&doc).unwrap_err();
        assert_eq!(err.path, "world.mtbf_yaers");
        assert!(err.to_string().contains("unknown field"), "{err}");
    }

    #[test]
    fn wrong_types_and_missing_fields_name_the_field() {
        let base = ScenarioSpec {
            attack: AttackSpec::None,
            ..sample()
        };
        let doc = base
            .to_json()
            .replace("\"mtbf_years\": 5", "\"mtbf_years\": \"five\"");
        let err = ScenarioSpec::from_json(&doc).unwrap_err();
        assert_eq!(err.path, "world.mtbf_years");
        assert!(err.message.contains("expected number"), "{err}");

        let doc = base.to_json().replace("    \"peers\": \"scale\",\n", "");
        let err = ScenarioSpec::from_json(&doc).unwrap_err();
        assert!(err.message.contains("missing field 'peers'"), "{err}");
    }

    #[test]
    fn dangling_compose_member_is_rejected() {
        let doc = sample().to_json().replace(
            "{\"start_days\": 90, \"attack\": {\"kind\": \"admission-flood\", \
             \"coverage\": 0.30000000000000004, \"days\": 360}}",
            "{\"start_days\": 90}",
        );
        let err = ScenarioSpec::from_json(&doc).unwrap_err();
        assert_eq!(err.path, "attack.members[1]");
        assert!(err.message.contains("missing field 'attack'"), "{err}");
    }

    #[test]
    fn unknown_attack_kind_lists_the_grammar() {
        let doc = sample().to_json().replace(
            "\"kind\": \"admission-flood\"",
            "\"kind\": \"admission-floood\"",
        );
        let err = ScenarioSpec::from_json(&doc).unwrap_err();
        assert_eq!(err.path, "attack.members[1].attack.kind");
        assert!(err.message.contains("unknown attack kind"), "{err}");
    }

    fn mobile(attack_json: &str) -> Result<ScenarioSpec, SpecError> {
        let spec = ScenarioSpec {
            name: "mobile-x".into(),
            description: "d".into(),
            paper_ref: "p".into(),
            world: WorldSpec::default(),
            attack: AttackSpec::None,
        };
        let doc = spec.to_json().replace("{\"kind\": \"none\"}", attack_json);
        ScenarioSpec::from_json(&doc)
    }

    #[test]
    fn mobile_takeover_rejects_unknown_budget_field() {
        let err = mobile(
            "{\"kind\": \"mobile-takeover\", \"budget\": 3, \"cadence\": \"synced\", \
             \"budgett\": 4}",
        )
        .unwrap_err();
        assert_eq!(err.path, "attack.budgett");
        assert!(err.message.contains("unknown field"), "{err}");
    }

    #[test]
    fn mobile_takeover_rejects_dangling_cadence() {
        // "synced" with a period: the period dangles.
        let err = mobile(
            "{\"kind\": \"mobile-takeover\", \"budget\": 3, \"cadence\": \"synced\", \
             \"period_days\": 45}",
        )
        .unwrap_err();
        assert_eq!(err.path, "attack.period_days");
        assert!(err.message.contains("dangling"), "{err}");
        // "fixed" without a period: the cadence dangles.
        let err = mobile("{\"kind\": \"mobile-takeover\", \"budget\": 3, \"cadence\": \"fixed\"}")
            .unwrap_err();
        assert!(err.message.contains("missing field 'period_days'"), "{err}");
        // Neither cadence word parses.
        let err = mobile("{\"kind\": \"mobile-takeover\", \"budget\": 3, \"cadence\": \"weekly\"}")
            .unwrap_err();
        assert_eq!(err.path, "attack.cadence");
        assert!(err.message.contains("unknown migration cadence"), "{err}");
    }

    #[test]
    fn mobile_takeover_zero_budget_fails_validate() {
        let spec =
            mobile("{\"kind\": \"mobile-takeover\", \"budget\": 0, \"cadence\": \"synced\"}")
                .expect("schema-valid");
        let err = spec.validate().unwrap_err();
        assert!(err.contains("budget must be positive"), "{err}");
        let spec = mobile(
            "{\"kind\": \"mobile-takeover\", \"budget\": 3, \"cadence\": \"fixed\", \
             \"period_days\": 0}",
        )
        .expect("schema-valid");
        let err = spec.validate().unwrap_err();
        assert!(err.contains("period_days must be positive"), "{err}");
    }

    #[test]
    fn format_tag_is_enforced() {
        let doc = sample().to_json().replace(FORMAT, "lockss-scenario-v0");
        let err = ScenarioSpec::from_json(&doc).unwrap_err();
        assert_eq!(err.path, "format");
    }

    #[test]
    fn validate_catches_semantic_nonsense() {
        let mut spec = sample();
        spec.validate().expect("sample is sound");
        spec.world.mtbf_years = -1.0;
        assert!(spec.validate().is_err());
        spec.world.mtbf_years = 5.0;
        spec.name = "Not Kebab".into();
        assert!(spec.validate().is_err());
        spec.name = "ok".into();
        spec.attack = AttackSpec::ChurnStorm {
            coverage: 1.5,
            duty: 0.5,
        };
        assert!(spec.validate().is_err());
        spec.attack = AttackSpec::None;
        spec.world.peers = PeersSpec::Fixed(3); // below inner circle + 1
        assert!(spec.validate().is_err());
    }
}

//! Scenario description: a world configuration plus an attack.

use lockss_adversary::{AdmissionFlood, BruteForce, Defection, PipeStoppage};
use lockss_core::{Adversary, WorldConfig};
use lockss_effort::CostModel;
use lockss_sim::Duration;
use lockss_storage::AuSpec;

use crate::scale::Scale;

/// Which attack to install.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum AttackSpec {
    /// No attack (baseline).
    None,
    /// §7.2 pipe stoppage.
    PipeStoppage { coverage: f64, days: u64 },
    /// §7.3 admission flood.
    AdmissionFlood { coverage: f64, days: u64 },
    /// §7.4 brute force with a defection point.
    BruteForce { defection: Defection },
}

impl AttackSpec {
    /// Instantiates the adversary, if any.
    pub fn build(self) -> Option<Box<dyn Adversary>> {
        match self {
            AttackSpec::None => None,
            AttackSpec::PipeStoppage { coverage, days } => {
                Some(Box::new(PipeStoppage::new(coverage, days)))
            }
            AttackSpec::AdmissionFlood { coverage, days } => {
                Some(Box::new(AdmissionFlood::new(coverage, days)))
            }
            AttackSpec::BruteForce { defection } => Some(Box::new(BruteForce::new(defection))),
        }
    }

    /// Short label for tables.
    pub fn label(self) -> String {
        match self {
            AttackSpec::None => "baseline".into(),
            AttackSpec::PipeStoppage { coverage, days } => {
                format!("stoppage {}% x {}d", (coverage * 100.0).round(), days)
            }
            AttackSpec::AdmissionFlood { coverage, days } => {
                format!("flood {}% x {}d", (coverage * 100.0).round(), days)
            }
            AttackSpec::BruteForce { defection } => format!("brute-force {}", defection.label()),
        }
    }
}

/// One experiment point: configuration + attack + run length.
#[derive(Clone, Debug)]
pub struct Scenario {
    pub cfg: WorldConfig,
    pub attack: AttackSpec,
    pub run_length: Duration,
}

impl Scenario {
    /// The §6.3 world at a given scale and collection size, no attack.
    pub fn baseline(scale: Scale, n_aus: usize) -> Scenario {
        let au_spec = AuSpec::default();
        let cfg = WorldConfig {
            n_peers: scale.n_peers(),
            n_aus,
            au_spec,
            mtbf_years: 5.0,
            cost: CostModel::default().with_au_bytes(au_spec.size_bytes),
            seed: 0, // overwritten per run
            ..WorldConfig::default()
        };
        Scenario {
            cfg,
            attack: AttackSpec::None,
            run_length: scale.run_length(),
        }
    }

    /// The same world with an attack installed.
    pub fn attacked(scale: Scale, n_aus: usize, attack: AttackSpec) -> Scenario {
        Scenario {
            attack,
            ..Scenario::baseline(scale, n_aus)
        }
    }

    /// Overrides the inter-poll interval (Fig. 2 sweep).
    pub fn with_poll_interval(mut self, interval: Duration) -> Scenario {
        self.cfg.protocol.poll_interval = interval;
        self
    }

    /// Overrides the storage MTBF (Fig. 2 sweep).
    pub fn with_mtbf_years(mut self, years: f64) -> Scenario {
        self.cfg.mtbf_years = years;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_validates() {
        for scale in [Scale::Quick, Scale::Default, Scale::Paper] {
            let s = Scenario::baseline(scale, scale.small_collection());
            s.cfg.validate().expect("baseline config");
        }
    }

    #[test]
    fn attack_builders() {
        assert!(AttackSpec::None.build().is_none());
        let p = AttackSpec::PipeStoppage {
            coverage: 0.4,
            days: 30,
        }
        .build()
        .expect("pipe");
        assert_eq!(p.name(), "pipe-stoppage");
        let f = AttackSpec::AdmissionFlood {
            coverage: 1.0,
            days: 720,
        }
        .build()
        .expect("flood");
        assert_eq!(f.name(), "admission-flood");
        let b = AttackSpec::BruteForce {
            defection: Defection::None_,
        }
        .build()
        .expect("bf");
        assert_eq!(b.name(), "brute-force/NONE");
    }

    #[test]
    fn labels_are_informative() {
        let l = AttackSpec::PipeStoppage {
            coverage: 0.7,
            days: 90,
        }
        .label();
        assert!(l.contains("70"));
        assert!(l.contains("90"));
    }
}

//! Scenario description: a world configuration plus an attack.

use lockss_adversary::{
    AdmissionFlood, BruteForce, ChurnStorm, Compose, Defection, MobileTakeover, PipeStoppage,
    SybilRamp, VoteFlood,
};
use lockss_core::{Adversary, WorldConfig};
use lockss_effort::CostModel;
use lockss_sim::Duration;
use lockss_storage::AuSpec;

use crate::scale::Scale;

/// Which attack to install: a declarative, composable attack description.
///
/// Primitive variants map one-to-one onto `lockss-adversary` strategies;
/// [`AttackSpec::Compose`] combines any of them — concurrently (all
/// offsets zero) or phased (staggered offsets) — into one campaign.
#[derive(Clone, PartialEq, Debug)]
pub enum AttackSpec {
    /// No attack (baseline).
    None,
    /// §7.2 pipe stoppage.
    PipeStoppage {
        /// Fraction of the population suppressed per cycle.
        coverage: f64,
        /// Stoppage length per cycle, in days.
        days: u64,
    },
    /// §7.3 admission flood.
    AdmissionFlood {
        /// Fraction of the population flooded per cycle.
        coverage: f64,
        /// Flood length per cycle, in days.
        days: u64,
    },
    /// §7.4 brute force with a defection point.
    BruteForce {
        /// Where the adversary defects (Table 1).
        defection: Defection,
    },
    /// §5.1 unsolicited bogus-vote flood.
    VoteFlood {
        /// Bogus votes per victim per wave.
        votes_per_wave: u32,
        /// Hours between waves.
        wave_hours: u64,
    },
    /// Mass departure/re-arrival synchronized with the poll cadence.
    ChurnStorm {
        /// Fraction of the population departing per cycle.
        coverage: f64,
        /// Fraction of each poll interval spent departed.
        duty: f64,
    },
    /// Escalating garbage-invitation campaign from fresh sybil identities.
    SybilRamp {
        /// Victim-set growth per step (fraction of the population).
        step: f64,
        /// Days between escalation steps.
        step_days: u64,
    },
    /// Migrating Byzantine compromise with a fixed concurrency budget;
    /// cure restores loyalty but not data.
    MobileTakeover {
        /// Maximum concurrent compromises.
        budget: u32,
        /// Migration period in days; `None` syncs to the poll cadence.
        period_days: Option<u64>,
    },
    /// A composite campaign: members run against the same world, each
    /// starting at its own offset.
    Compose(Vec<PhasedAttack>),
}

/// One member of a composite campaign: an attack and when it starts.
#[derive(Clone, PartialEq, Debug)]
pub struct PhasedAttack {
    /// Days after the run start at which this member begins.
    pub start_days: u64,
    /// The member attack (composites flatten; see [`AttackSpec::build`]).
    pub attack: AttackSpec,
}

/// Shorthand for a composite member.
pub fn phased(start_days: u64, attack: AttackSpec) -> PhasedAttack {
    PhasedAttack { start_days, attack }
}

impl AttackSpec {
    /// True for the no-attack baseline.
    pub fn is_none(&self) -> bool {
        matches!(self, AttackSpec::None)
    }

    /// True for composite (or phased) campaigns.
    pub fn is_composite(&self) -> bool {
        matches!(self, AttackSpec::Compose(_))
    }

    /// Flattens the spec into primitive `(start offset, adversary)` pairs.
    /// Nested composites contribute their members at cumulative offsets;
    /// `None` members contribute nothing.
    fn flatten(&self, start: Duration, out: &mut Vec<(Duration, Box<dyn Adversary>)>) {
        match self {
            AttackSpec::None => {}
            AttackSpec::Compose(members) => {
                for m in members {
                    m.attack
                        .flatten(start + Duration::from_days(m.start_days), out);
                }
            }
            primitive => {
                let adversary: Box<dyn Adversary> = match primitive {
                    AttackSpec::PipeStoppage { coverage, days } => {
                        Box::new(PipeStoppage::new(*coverage, *days))
                    }
                    AttackSpec::AdmissionFlood { coverage, days } => {
                        Box::new(AdmissionFlood::new(*coverage, *days))
                    }
                    AttackSpec::BruteForce { defection } => Box::new(BruteForce::new(*defection)),
                    AttackSpec::VoteFlood {
                        votes_per_wave,
                        wave_hours,
                    } => Box::new(VoteFlood::new(
                        *votes_per_wave,
                        Duration::from_hours(*wave_hours),
                    )),
                    AttackSpec::ChurnStorm { coverage, duty } => {
                        Box::new(ChurnStorm::new(*coverage, *duty))
                    }
                    AttackSpec::SybilRamp { step, step_days } => {
                        Box::new(SybilRamp::new(*step, *step_days))
                    }
                    AttackSpec::MobileTakeover {
                        budget,
                        period_days,
                    } => {
                        let mut adv = MobileTakeover::new(*budget);
                        if let Some(days) = period_days {
                            adv = adv.with_period(Duration::from_days(*days));
                        }
                        Box::new(adv)
                    }
                    AttackSpec::None | AttackSpec::Compose(_) => unreachable!("handled above"),
                };
                out.push((start, adversary));
            }
        }
    }

    /// Instantiates the adversary, if any.
    ///
    /// Primitive specs build their strategy directly. Composites flatten
    /// into a [`Compose`] adversary — one child per primitive member, each
    /// at its cumulative start offset — which also records a metrics phase
    /// mark as each member starts.
    pub fn build(&self) -> Option<Box<dyn Adversary>> {
        match self {
            AttackSpec::None => None,
            AttackSpec::Compose(_) => {
                let mut members = Vec::new();
                self.flatten(Duration::ZERO, &mut members);
                if members.is_empty() {
                    return None;
                }
                let mut composite = Compose::new();
                for (start, adversary) in members {
                    composite = composite.with(start, adversary);
                }
                Some(Box::new(composite))
            }
            primitive => {
                let mut members = Vec::new();
                primitive.flatten(Duration::ZERO, &mut members);
                members.pop().map(|(_, adversary)| adversary)
            }
        }
    }

    /// Short label for tables.
    pub fn label(&self) -> String {
        match self {
            AttackSpec::None => "baseline".into(),
            AttackSpec::PipeStoppage { coverage, days } => {
                format!("stoppage {}% x {}d", (coverage * 100.0).round(), days)
            }
            AttackSpec::AdmissionFlood { coverage, days } => {
                format!("flood {}% x {}d", (coverage * 100.0).round(), days)
            }
            AttackSpec::BruteForce { defection } => format!("brute-force {}", defection.label()),
            AttackSpec::VoteFlood {
                votes_per_wave,
                wave_hours,
            } => format!("vote-flood {votes_per_wave}/{wave_hours}h"),
            AttackSpec::ChurnStorm { coverage, duty } => format!(
                "churn-storm {}% duty {}%",
                (coverage * 100.0).round(),
                (duty * 100.0).round()
            ),
            AttackSpec::SybilRamp { step, step_days } => {
                format!("sybil-ramp +{}%/{}d", (step * 100.0).round(), step_days)
            }
            AttackSpec::MobileTakeover {
                budget,
                period_days,
            } => match period_days {
                Some(days) => format!("mobile-takeover B={budget} every {days}d"),
                None => format!("mobile-takeover B={budget} synced"),
            },
            AttackSpec::Compose(members) => {
                let parts: Vec<String> = members
                    .iter()
                    .map(|m| {
                        if m.start_days == 0 {
                            m.attack.label()
                        } else {
                            format!("@{}d {}", m.start_days, m.attack.label())
                        }
                    })
                    .collect();
                format!("[{}]", parts.join(" ; "))
            }
        }
    }
}

/// One experiment point: configuration + attack + run length.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// The world to build (seed overwritten per run).
    pub cfg: WorldConfig,
    /// The attack to install.
    pub attack: AttackSpec,
    /// Simulated run length.
    pub run_length: Duration,
}

impl Scenario {
    /// The §6.3 world at a given scale and collection size, no attack.
    pub fn baseline(scale: Scale, n_aus: usize) -> Scenario {
        let au_spec = AuSpec::default();
        let cfg = WorldConfig {
            n_peers: scale.n_peers(),
            n_aus,
            au_spec,
            mtbf_years: 5.0,
            cost: CostModel::default().with_au_bytes(au_spec.size_bytes),
            seed: 0, // overwritten per run
            ..WorldConfig::default()
        };
        Scenario {
            cfg,
            attack: AttackSpec::None,
            run_length: scale.run_length(),
        }
    }

    /// The same world with an attack installed.
    pub fn attacked(scale: Scale, n_aus: usize, attack: AttackSpec) -> Scenario {
        Scenario {
            attack,
            ..Scenario::baseline(scale, n_aus)
        }
    }

    /// Overrides the inter-poll interval (Fig. 2 sweep).
    pub fn with_poll_interval(mut self, interval: Duration) -> Scenario {
        self.cfg.protocol.poll_interval = interval;
        self
    }

    /// Overrides the storage MTBF (Fig. 2 sweep).
    pub fn with_mtbf_years(mut self, years: f64) -> Scenario {
        self.cfg.mtbf_years = years;
        self
    }

    /// Replaces the attack (deriving sweep points from a registered
    /// baseline scenario).
    pub fn with_attack(mut self, attack: AttackSpec) -> Scenario {
        self.attack = attack;
        self
    }

    /// Overrides the collection size.
    pub fn with_aus(mut self, n_aus: usize) -> Scenario {
        self.cfg.n_aus = n_aus;
        self
    }

    /// Overrides the run length.
    pub fn with_run_length(mut self, run_length: Duration) -> Scenario {
        self.run_length = run_length;
        self
    }

    /// The matched no-attack baseline of this scenario (same world, same
    /// run length).
    pub fn matched_baseline(&self) -> Scenario {
        Scenario {
            cfg: self.cfg.clone(),
            attack: AttackSpec::None,
            run_length: self.run_length,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_validates() {
        for scale in [Scale::Quick, Scale::Default, Scale::Paper] {
            let s = Scenario::baseline(scale, scale.small_collection());
            s.cfg.validate().expect("baseline config");
        }
    }

    #[test]
    fn attack_builders() {
        assert!(AttackSpec::None.build().is_none());
        let p = AttackSpec::PipeStoppage {
            coverage: 0.4,
            days: 30,
        }
        .build()
        .expect("pipe");
        assert_eq!(p.name(), "pipe-stoppage");
        let f = AttackSpec::AdmissionFlood {
            coverage: 1.0,
            days: 720,
        }
        .build()
        .expect("flood");
        assert_eq!(f.name(), "admission-flood");
        let b = AttackSpec::BruteForce {
            defection: Defection::None_,
        }
        .build()
        .expect("bf");
        assert_eq!(b.name(), "brute-force/NONE");
    }

    #[test]
    fn labels_are_informative() {
        let l = AttackSpec::PipeStoppage {
            coverage: 0.7,
            days: 90,
        }
        .label();
        assert!(l.contains("70"));
        assert!(l.contains("90"));
    }

    #[test]
    fn new_attack_builders() {
        let c = AttackSpec::ChurnStorm {
            coverage: 0.5,
            duty: 0.7,
        }
        .build()
        .expect("churn");
        assert_eq!(c.name(), "churn-storm");
        let s = AttackSpec::SybilRamp {
            step: 0.25,
            step_days: 30,
        }
        .build()
        .expect("ramp");
        assert_eq!(s.name(), "sybil-ramp");
        let v = AttackSpec::VoteFlood {
            votes_per_wave: 4,
            wave_hours: 6,
        }
        .build()
        .expect("votes");
        assert_eq!(v.name(), "vote-flood");
        let m = AttackSpec::MobileTakeover {
            budget: 3,
            period_days: Some(45),
        }
        .build()
        .expect("mobile");
        assert_eq!(m.name(), "mobile-takeover");
    }

    #[test]
    fn mobile_takeover_labels_show_cadence() {
        let synced = AttackSpec::MobileTakeover {
            budget: 5,
            period_days: None,
        }
        .label();
        assert!(synced.contains("B=5"), "{synced}");
        assert!(synced.contains("synced"), "{synced}");
        let fixed = AttackSpec::MobileTakeover {
            budget: 2,
            period_days: Some(45),
        }
        .label();
        assert!(fixed.contains("45d"), "{fixed}");
    }

    #[test]
    fn composite_builds_and_flattens() {
        let spec = AttackSpec::Compose(vec![
            phased(
                0,
                AttackSpec::PipeStoppage {
                    coverage: 1.0,
                    days: 60,
                },
            ),
            phased(
                90,
                AttackSpec::Compose(vec![phased(
                    30,
                    AttackSpec::AdmissionFlood {
                        coverage: 1.0,
                        days: 360,
                    },
                )]),
            ),
            phased(10, AttackSpec::None),
        ]);
        assert!(spec.is_composite());
        assert!(!spec.is_none());
        let adv = spec.build().expect("composite");
        assert_eq!(adv.name(), "composite");
        let label = spec.label();
        assert!(label.contains("stoppage"), "{label}");
        assert!(label.contains("flood"), "{label}");
    }

    #[test]
    fn empty_or_all_none_composites_build_nothing() {
        assert!(AttackSpec::Compose(Vec::new()).build().is_none());
        let spec = AttackSpec::Compose(vec![phased(5, AttackSpec::None)]);
        assert!(spec.build().is_none());
    }

    #[test]
    fn matched_baseline_strips_the_attack() {
        let s = Scenario::attacked(
            Scale::Quick,
            2,
            AttackSpec::ChurnStorm {
                coverage: 0.5,
                duty: 0.5,
            },
        );
        let b = s.matched_baseline();
        assert!(b.attack.is_none());
        assert_eq!(b.run_length, s.run_length);
        assert_eq!(b.cfg.n_peers, s.cfg.n_peers);
    }
}

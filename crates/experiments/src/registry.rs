//! The scenario registry: every runnable world as a named, self-describing
//! entry.
//!
//! The paper's evaluation is a handful of fixed sweeps; the registry turns
//! each evaluated point — and every scenario beyond them — into a named
//! entry with a description, a paper-section reference, and a declarative
//! [`ScenarioSpec`], so new worlds (including composite campaigns) are one
//! checked-in `scenarios/*.json` file, discoverable from the `lockss-sim`
//! CLI (`list` / `describe` / `run`). Determinism makes the names
//! meaningful: a registered scenario plus a seed identifies a
//! byte-reproducible execution, the record-and-replay property that makes
//! attack debugging tractable.
//!
//! The standard corpus is embedded with `include_str!` so
//! [`ScenarioRegistry::standard`] stays infallible and independent of the
//! working directory; `tests/golden_scenarios.rs` proves the corpus
//! reproduces the pre-refactor hand-coded builders exactly, and the tests
//! below pin the files to their canonical encoding.

use crate::scale::Scale;
use crate::scenario::Scenario;
use crate::spec::ScenarioSpec;

/// One registered scenario: a declarative spec (world, attack, catalog
/// metadata).
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioEntry {
    /// The spec this entry is backed by.
    pub spec: ScenarioSpec,
}

impl ScenarioEntry {
    /// Wraps a spec as a registry entry.
    pub fn new(spec: ScenarioSpec) -> ScenarioEntry {
        ScenarioEntry { spec }
    }

    /// Unique, CLI-addressable name (kebab-case).
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// One-line description of the world and what it demonstrates.
    pub fn description(&self) -> &str {
        &self.spec.description
    }

    /// The paper figure/table/section the scenario reproduces or extends.
    pub fn paper_ref(&self) -> &str {
        &self.spec.paper_ref
    }

    /// Builds the scenario at `scale`.
    pub fn build(&self, scale: Scale) -> Scenario {
        self.spec.build(scale)
    }
}

/// The standard corpus, in catalog order. Each file is the canonical
/// encoding of its spec (`ScenarioSpec::to_json`); the registry tests
/// reject a file that drifts from it.
pub const STANDARD_SCENARIOS: [(&str, &str); 21] = [
    ("baseline", include_str!("../../../scenarios/baseline.json")),
    (
        "baseline-large",
        include_str!("../../../scenarios/baseline-large.json"),
    ),
    (
        "pipe-stoppage",
        include_str!("../../../scenarios/pipe-stoppage.json"),
    ),
    (
        "pipe-stoppage-partial",
        include_str!("../../../scenarios/pipe-stoppage-partial.json"),
    ),
    (
        "admission-flood",
        include_str!("../../../scenarios/admission-flood.json"),
    ),
    (
        "admission-flood-partial",
        include_str!("../../../scenarios/admission-flood-partial.json"),
    ),
    (
        "brute-force-intro",
        include_str!("../../../scenarios/brute-force-intro.json"),
    ),
    (
        "brute-force-remaining",
        include_str!("../../../scenarios/brute-force-remaining.json"),
    ),
    (
        "brute-force-none",
        include_str!("../../../scenarios/brute-force-none.json"),
    ),
    (
        "vote-flood",
        include_str!("../../../scenarios/vote-flood.json"),
    ),
    (
        "churn-storm",
        include_str!("../../../scenarios/churn-storm.json"),
    ),
    (
        "sybil-ramp",
        include_str!("../../../scenarios/sybil-ramp.json"),
    ),
    (
        "mobile-takeover-light",
        include_str!("../../../scenarios/mobile-takeover-light.json"),
    ),
    (
        "mobile-takeover-heavy",
        include_str!("../../../scenarios/mobile-takeover-heavy.json"),
    ),
    (
        "stoppage-then-flood",
        include_str!("../../../scenarios/stoppage-then-flood.json"),
    ),
    (
        "storm-over-ramp",
        include_str!("../../../scenarios/storm-over-ramp.json"),
    ),
    (
        "stoppage-escalation",
        include_str!("../../../scenarios/stoppage-escalation.json"),
    ),
    (
        "mobile-recovery-race",
        include_str!("../../../scenarios/mobile-recovery-race.json"),
    ),
    (
        "scale-10k-baseline",
        include_str!("../../../scenarios/scale-10k-baseline.json"),
    ),
    (
        "scale-10k-churn-storm",
        include_str!("../../../scenarios/scale-10k-churn-storm.json"),
    ),
    (
        "scale-50k-attrition",
        include_str!("../../../scenarios/scale-50k-attrition.json"),
    ),
];

/// The registry: an ordered collection of named scenarios.
pub struct ScenarioRegistry {
    entries: Vec<ScenarioEntry>,
}

impl ScenarioRegistry {
    /// An empty registry.
    pub fn new() -> ScenarioRegistry {
        ScenarioRegistry {
            entries: Vec::new(),
        }
    }

    /// Registers an entry.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken — names are CLI addresses and
    /// must be unique.
    pub fn register(&mut self, entry: ScenarioEntry) {
        assert!(
            self.get(entry.name()).is_none(),
            "duplicate scenario name '{}'",
            entry.name()
        );
        self.entries.push(entry);
    }

    /// All entries, in registration order.
    pub fn entries(&self) -> &[ScenarioEntry] {
        &self.entries
    }

    /// Looks an entry up by name.
    pub fn get(&self, name: &str) -> Option<&ScenarioEntry> {
        self.entries.iter().find(|e| e.name() == name)
    }

    /// Builds the named scenario at `scale`, if registered.
    pub fn build(&self, name: &str, scale: Scale) -> Option<Scenario> {
        self.get(name).map(|e| e.build(scale))
    }

    /// All registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name()).collect()
    }

    /// Number of registered scenarios.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The scenario catalog as a markdown table (the README section; kept
    /// in sync by `tests/scenario_catalog.rs`).
    pub fn catalog_markdown(&self) -> String {
        let mut out = String::from("| scenario | paper | description |\n|---|---|---|\n");
        for e in &self.entries {
            out.push_str(&format!(
                "| `{}` | {} | {} |\n",
                e.name(),
                e.paper_ref(),
                e.description()
            ));
        }
        out
    }

    /// The standard registry: the paper's evaluated worlds plus the
    /// dynamic-environment and composite campaigns, loaded from the
    /// embedded `scenarios/` corpus.
    ///
    /// # Panics
    ///
    /// Panics if a checked-in scenario file fails to parse — a build-time
    /// defect, caught by every test that touches the registry.
    pub fn standard() -> ScenarioRegistry {
        let mut r = ScenarioRegistry::new();
        for (name, text) in STANDARD_SCENARIOS {
            let spec = ScenarioSpec::from_json(text)
                .unwrap_or_else(|e| panic!("checked-in scenario '{name}' is invalid: {e}"));
            assert_eq!(
                spec.name, name,
                "scenario file name and embedded name disagree"
            );
            r.register(ScenarioEntry::new(spec));
        }
        r
    }
}

impl Default for ScenarioRegistry {
    fn default() -> ScenarioRegistry {
        ScenarioRegistry::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_is_rich_enough() {
        let r = ScenarioRegistry::standard();
        assert!(r.len() >= 10, "want >= 10 scenarios, have {}", r.len());
        let composites = r
            .entries()
            .iter()
            .filter(|e| e.build(Scale::Quick).attack.is_composite())
            .count();
        assert!(composites >= 2, "want >= 2 composite scenarios");
        assert!(!r.is_empty());
    }

    #[test]
    fn names_are_unique_and_kebab_case() {
        let r = ScenarioRegistry::standard();
        let names = r.names();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate names");
        for n in names {
            assert!(
                n.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "name '{n}' is not kebab-case"
            );
        }
    }

    #[test]
    fn every_scenario_validates_at_every_scale() {
        let r = ScenarioRegistry::standard();
        for e in r.entries() {
            e.spec
                .validate()
                .unwrap_or_else(|err| panic!("{}: {err}", e.name()));
        }
        for scale in [Scale::Quick, Scale::Default, Scale::Paper] {
            for e in r.entries() {
                let s = e.build(scale);
                s.cfg
                    .validate()
                    .unwrap_or_else(|err| panic!("{} at {:?}: {err}", e.name(), scale));
                assert!(!s.run_length.is_zero());
            }
        }
    }

    #[test]
    fn corpus_files_are_canonical() {
        for (name, text) in STANDARD_SCENARIOS {
            let spec = ScenarioSpec::from_json(text).expect(name);
            assert_eq!(
                spec.to_json(),
                text,
                "scenarios/{name}.json is not in canonical encoding \
                 (re-emit it with ScenarioSpec::to_json)"
            );
        }
    }

    #[test]
    fn lookup_and_build() {
        let r = ScenarioRegistry::standard();
        assert!(r.get("baseline").is_some());
        assert!(r.get("no-such-scenario").is_none());
        let s = r.build("pipe-stoppage", Scale::Quick).expect("registered");
        assert!(!s.attack.is_none());
        assert!(r.build("no-such-scenario", Scale::Quick).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate scenario name")]
    fn duplicate_registration_panics() {
        let mut r = ScenarioRegistry::standard();
        let dup = r.get("baseline").expect("registered").clone();
        r.register(dup);
    }

    #[test]
    fn catalog_lists_every_entry() {
        let r = ScenarioRegistry::standard();
        let md = r.catalog_markdown();
        for e in r.entries() {
            assert!(md.contains(e.name()), "catalog missing {}", e.name());
        }
        assert_eq!(md.lines().count(), r.len() + 2, "header + one row each");
    }
}

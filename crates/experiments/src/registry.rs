//! The scenario registry: every runnable world as a named, self-describing
//! entry.
//!
//! The paper's evaluation is a handful of fixed sweeps; the registry turns
//! each evaluated point — and every scenario beyond them — into a named
//! entry with a description, a paper-section reference, and a builder, so
//! new worlds (including composite campaigns) are one-line registrations
//! discoverable from the `lockss-sim` CLI (`list` / `describe` / `run`).
//! Determinism makes the names meaningful: a registered scenario plus a
//! seed identifies a byte-reproducible execution, the record-and-replay
//! property that makes attack debugging tractable.

use lockss_adversary::Defection;
use lockss_sim::Duration;

use crate::scale::Scale;
use crate::scenario::{phased, AttackSpec, Scenario};

/// A production-scale world: `n_peers` peers preserving one AU with a
/// skewed (production-realistic) access-link mix, shorter horizons than
/// the figure worlds, and the lazy/sparse construction path exercised by
/// the population size itself. The `scale-*` registry family builds on
/// this.
fn scale_world(scale: Scale, n_peers: usize, attack: AttackSpec) -> Scenario {
    let mut s = Scenario::attacked(scale, 1, attack);
    s.cfg.n_peers = n_peers;
    // Most libraries on modest links, a few well-provisioned (drawn via
    // the O(1) alias sampler).
    s.cfg.link_mix = Some([0.6, 0.3, 0.1]);
    s.run_length = match scale {
        // Two poll generations: enough for every (peer, AU) to conclude
        // polls while keeping the CI smoke run bounded.
        Scale::Quick => Duration::from_days(200),
        Scale::Default | Scale::Paper => Duration::from_days(540),
    };
    s
}

/// One registered scenario: metadata plus a builder.
#[derive(Clone)]
pub struct ScenarioEntry {
    /// Unique, CLI-addressable name (kebab-case).
    pub name: &'static str,
    /// One-line description of the world and what it demonstrates.
    pub description: &'static str,
    /// The paper figure/table/section the scenario reproduces or extends.
    pub paper_ref: &'static str,
    /// Builds the scenario at a given experiment scale.
    pub builder: fn(Scale) -> Scenario,
}

impl ScenarioEntry {
    /// Builds the scenario at `scale`.
    pub fn build(&self, scale: Scale) -> Scenario {
        (self.builder)(scale)
    }
}

/// The registry: an ordered collection of named scenarios.
pub struct ScenarioRegistry {
    entries: Vec<ScenarioEntry>,
}

impl ScenarioRegistry {
    /// An empty registry.
    pub fn new() -> ScenarioRegistry {
        ScenarioRegistry {
            entries: Vec::new(),
        }
    }

    /// Registers an entry.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken — names are CLI addresses and
    /// must be unique.
    pub fn register(&mut self, entry: ScenarioEntry) {
        assert!(
            self.get(entry.name).is_none(),
            "duplicate scenario name '{}'",
            entry.name
        );
        self.entries.push(entry);
    }

    /// All entries, in registration order.
    pub fn entries(&self) -> &[ScenarioEntry] {
        &self.entries
    }

    /// Looks an entry up by name.
    pub fn get(&self, name: &str) -> Option<&ScenarioEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Builds the named scenario at `scale`, if registered.
    pub fn build(&self, name: &str, scale: Scale) -> Option<Scenario> {
        self.get(name).map(|e| e.build(scale))
    }

    /// All registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }

    /// Number of registered scenarios.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The scenario catalog as a markdown table (the README section; kept
    /// in sync by `tests/scenario_catalog.rs`).
    pub fn catalog_markdown(&self) -> String {
        let mut out = String::from("| scenario | paper | description |\n|---|---|---|\n");
        for e in &self.entries {
            out.push_str(&format!(
                "| `{}` | {} | {} |\n",
                e.name, e.paper_ref, e.description
            ));
        }
        out
    }

    /// The standard registry: the paper's evaluated worlds plus the
    /// dynamic-environment and composite campaigns.
    pub fn standard() -> ScenarioRegistry {
        let mut r = ScenarioRegistry::new();
        r.register(ScenarioEntry {
            name: "baseline",
            description: "the §6.3 world, small collection, no attack",
            paper_ref: "§6.3, Fig. 2",
            builder: |scale| Scenario::baseline(scale, scale.small_collection()),
        });
        r.register(ScenarioEntry {
            name: "baseline-large",
            description: "the §6.3 world at the large collection size, no attack",
            paper_ref: "§6.3, Fig. 2 (600-AU line)",
            builder: |scale| Scenario::baseline(scale, scale.large_collection()),
        });
        r.register(ScenarioEntry {
            name: "pipe-stoppage",
            description: "total network blackout, 90-day cycles, 30-day recuperation",
            paper_ref: "§7.2, Figs. 3-5",
            builder: |scale| {
                Scenario::attacked(
                    scale,
                    scale.small_collection(),
                    AttackSpec::PipeStoppage {
                        coverage: 1.0,
                        days: 90,
                    },
                )
            },
        });
        r.register(ScenarioEntry {
            name: "pipe-stoppage-partial",
            description: "pipe stoppage against 40% of the population, 30-day cycles",
            paper_ref: "§7.2, Figs. 3-5",
            builder: |scale| {
                Scenario::attacked(
                    scale,
                    scale.small_collection(),
                    AttackSpec::PipeStoppage {
                        coverage: 0.4,
                        days: 30,
                    },
                )
            },
        });
        r.register(ScenarioEntry {
            name: "admission-flood",
            description: "garbage invitations to the whole population, sustained two years",
            paper_ref: "§7.3, Figs. 6-8",
            builder: |scale| {
                Scenario::attacked(
                    scale,
                    scale.small_collection(),
                    AttackSpec::AdmissionFlood {
                        coverage: 1.0,
                        days: 720,
                    },
                )
            },
        });
        r.register(ScenarioEntry {
            name: "admission-flood-partial",
            description: "admission flood against 40% of the population, 90-day cycles",
            paper_ref: "§7.3, Figs. 6-8",
            builder: |scale| {
                Scenario::attacked(
                    scale,
                    scale.small_collection(),
                    AttackSpec::AdmissionFlood {
                        coverage: 0.4,
                        days: 90,
                    },
                )
            },
        });
        r.register(ScenarioEntry {
            name: "brute-force-intro",
            description: "effortful reservation attack: valid intro efforts, desert after Poll",
            paper_ref: "§7.4, Table 1 (INTRO)",
            builder: |scale| {
                Scenario::attacked(
                    scale,
                    scale.small_collection(),
                    AttackSpec::BruteForce {
                        defection: Defection::Intro,
                    },
                )
            },
        });
        r.register(ScenarioEntry {
            name: "brute-force-remaining",
            description: "effortful wasteful attack: take the vote, never send the receipt",
            paper_ref: "§7.4, Table 1 (REMAINING)",
            builder: |scale| {
                Scenario::attacked(
                    scale,
                    scale.small_collection(),
                    AttackSpec::BruteForce {
                        defection: Defection::Remaining,
                    },
                )
            },
        });
        r.register(ScenarioEntry {
            name: "brute-force-none",
            description: "effortful full participation: indistinguishable but insatiable poller",
            paper_ref: "§7.4, Table 1 (NONE)",
            builder: |scale| {
                Scenario::attacked(
                    scale,
                    scale.small_collection(),
                    AttackSpec::BruteForce {
                        defection: Defection::None_,
                    },
                )
            },
        });
        r.register(ScenarioEntry {
            name: "vote-flood",
            description: "unsolicited bogus votes, four per victim every six hours",
            paper_ref: "§5.1 (vote flood)",
            builder: |scale| {
                Scenario::attacked(
                    scale,
                    scale.small_collection(),
                    AttackSpec::VoteFlood {
                        votes_per_wave: 4,
                        wave_hours: 6,
                    },
                )
            },
        });
        r.register(ScenarioEntry {
            name: "churn-storm",
            description: "half the population departs each poll interval, timed over the \
                          solicitation windows",
            paper_ref: "§9 (dynamic environments)",
            builder: |scale| {
                Scenario::attacked(
                    scale,
                    scale.small_collection(),
                    AttackSpec::ChurnStorm {
                        coverage: 0.5,
                        duty: 0.7,
                    },
                )
            },
        });
        r.register(ScenarioEntry {
            name: "sybil-ramp",
            description: "sybil garbage invitations escalating +25% of the population every \
                          45 days",
            paper_ref: "§3.1 + §7.3 (unconstrained identities)",
            builder: |scale| {
                Scenario::attacked(
                    scale,
                    scale.small_collection(),
                    AttackSpec::SybilRamp {
                        step: 0.25,
                        step_days: 45,
                    },
                )
            },
        });
        r.register(ScenarioEntry {
            name: "stoppage-then-flood",
            description: "composite: 60-day total blackout, then an admission flood timed \
                          into the recovery window",
            paper_ref: "§7.2 + §7.3 composed",
            builder: |scale| {
                Scenario::attacked(
                    scale,
                    scale.small_collection(),
                    AttackSpec::Compose(vec![
                        phased(
                            0,
                            AttackSpec::PipeStoppage {
                                coverage: 1.0,
                                days: 60,
                            },
                        ),
                        phased(
                            90,
                            AttackSpec::AdmissionFlood {
                                coverage: 1.0,
                                days: 360,
                            },
                        ),
                    ]),
                )
            },
        });
        r.register(ScenarioEntry {
            name: "storm-over-ramp",
            description: "composite: churn storm and sybil admission ramp running \
                          concurrently from the first instant",
            paper_ref: "§9 + §7.3 composed",
            builder: |scale| {
                Scenario::attacked(
                    scale,
                    scale.small_collection(),
                    AttackSpec::Compose(vec![
                        phased(
                            0,
                            AttackSpec::ChurnStorm {
                                coverage: 0.5,
                                duty: 0.7,
                            },
                        ),
                        phased(
                            0,
                            AttackSpec::SybilRamp {
                                step: 0.25,
                                step_days: 45,
                            },
                        ),
                    ]),
                )
            },
        });
        r.register(ScenarioEntry {
            name: "stoppage-escalation",
            description: "composite: partial pipe stoppage that escalates to a total \
                          blackout after four months",
            paper_ref: "§7.2 phased",
            builder: |scale| {
                Scenario::attacked(
                    scale,
                    scale.small_collection(),
                    AttackSpec::Compose(vec![
                        phased(
                            0,
                            AttackSpec::PipeStoppage {
                                coverage: 0.4,
                                days: 30,
                            },
                        ),
                        phased(
                            120,
                            AttackSpec::PipeStoppage {
                                coverage: 1.0,
                                days: 60,
                            },
                        ),
                    ]),
                )
            },
        });
        r.register(ScenarioEntry {
            name: "scale-10k-baseline",
            description: "production-scale world: 10,000 peers, one AU, skewed link mix, \
                          no attack",
            paper_ref: "beyond the paper (scale layer)",
            builder: |scale| scale_world(scale, 10_000, AttackSpec::None),
        });
        r.register(ScenarioEntry {
            name: "scale-10k-churn-storm",
            description: "10,000 peers under a poll-synchronized churn storm (30% depart, \
                          50% duty)",
            paper_ref: "§9 at production scale",
            builder: |scale| {
                scale_world(
                    scale,
                    10_000,
                    AttackSpec::ChurnStorm {
                        coverage: 0.3,
                        duty: 0.5,
                    },
                )
            },
        });
        r.register(ScenarioEntry {
            name: "scale-50k-attrition",
            description: "50,000 peers under a 40%-coverage admission-flood attrition \
                          campaign, 90-day cycles",
            paper_ref: "§7.3 at production scale",
            builder: |scale| {
                scale_world(
                    scale,
                    50_000,
                    AttackSpec::AdmissionFlood {
                        coverage: 0.4,
                        days: 90,
                    },
                )
            },
        });
        r
    }
}

impl Default for ScenarioRegistry {
    fn default() -> ScenarioRegistry {
        ScenarioRegistry::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_is_rich_enough() {
        let r = ScenarioRegistry::standard();
        assert!(r.len() >= 10, "want >= 10 scenarios, have {}", r.len());
        let composites = r
            .entries()
            .iter()
            .filter(|e| e.build(Scale::Quick).attack.is_composite())
            .count();
        assert!(composites >= 2, "want >= 2 composite scenarios");
        assert!(!r.is_empty());
    }

    #[test]
    fn names_are_unique_and_kebab_case() {
        let r = ScenarioRegistry::standard();
        let names = r.names();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate names");
        for n in names {
            assert!(
                n.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "name '{n}' is not kebab-case"
            );
        }
    }

    #[test]
    fn every_scenario_validates_at_every_scale() {
        let r = ScenarioRegistry::standard();
        for scale in [Scale::Quick, Scale::Default, Scale::Paper] {
            for e in r.entries() {
                let s = e.build(scale);
                s.cfg
                    .validate()
                    .unwrap_or_else(|err| panic!("{} at {:?}: {err}", e.name, scale));
                assert!(!s.run_length.is_zero());
            }
        }
    }

    #[test]
    fn lookup_and_build() {
        let r = ScenarioRegistry::standard();
        assert!(r.get("baseline").is_some());
        assert!(r.get("no-such-scenario").is_none());
        let s = r.build("pipe-stoppage", Scale::Quick).expect("registered");
        assert!(!s.attack.is_none());
        assert!(r.build("no-such-scenario", Scale::Quick).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate scenario name")]
    fn duplicate_registration_panics() {
        let mut r = ScenarioRegistry::standard();
        r.register(ScenarioEntry {
            name: "baseline",
            description: "dup",
            paper_ref: "-",
            builder: |scale| Scenario::baseline(scale, 1),
        });
    }

    #[test]
    fn catalog_lists_every_entry() {
        let r = ScenarioRegistry::standard();
        let md = r.catalog_markdown();
        for e in r.entries() {
            assert!(md.contains(e.name), "catalog missing {}", e.name);
        }
        assert_eq!(md.lines().count(), r.len() + 2, "header + one row each");
    }
}

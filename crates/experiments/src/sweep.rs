//! The deterministic parallel sweep orchestrator.
//!
//! `lockss-sim sweep <scenario> --seeds A..B --threads N` runs one
//! registered scenario across a seed range on a worker pool and merges the
//! per-seed summaries into one report. Three properties make sweeps safe
//! to parallelize and interrupt at production scale:
//!
//! - **thread-count invariance** — workers claim `(seed)` jobs off an
//!   atomic cursor but slot results by seed index, and the merge reduces
//!   in seed order, so the rendered report is byte-identical for
//!   `--threads 1` and `--threads 8`;
//! - **resumable checkpoints** — with `--checkpoint <path>`, the partial
//!   report is rewritten (atomically, via a temp file + rename) as each
//!   seed completes; rerunning the same sweep loads it, skips the
//!   already-finished seeds, and produces a final report byte-identical to
//!   an uninterrupted run (summaries round-trip exactly: shortest-repr
//!   float formatting parses back to the same bits);
//! - **streaming memory** — each seed's run keeps fixed-size metric
//!   sketches (see `lockss-metrics::streaming`), so sweeping a 10k-peer
//!   world costs one world at a time per worker, not a buffered history.
//!
//! The checkpoint/report format is a small fixed-schema JSON document,
//! parsed by the workspace's one self-hosted recursive-descent reader
//! ([`lockss_sim::json`], re-exported here as [`json`]; the offline
//! dependency policy bans serde).

use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use lockss_metrics::Summary;
use lockss_sim::Duration;

use crate::runner::run_once;
use crate::scenario::Scenario;

// ---------------------------------------------------------------------
// Report model.
// ---------------------------------------------------------------------

/// The (possibly partial) outcome of one sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepReport {
    /// Registered scenario name.
    pub scenario: String,
    /// Scale label the scenario was built at.
    pub scale: String,
    /// Every seed the sweep was asked to run, ascending.
    pub seeds: Vec<u64>,
    /// Finished seeds with their summaries, ascending by seed.
    pub completed: Vec<(u64, Summary)>,
}

impl SweepReport {
    /// An empty report for a planned sweep.
    pub fn new(scenario: &str, scale: &str, mut seeds: Vec<u64>) -> SweepReport {
        seeds.sort_unstable();
        seeds.dedup();
        SweepReport {
            scenario: scenario.to_string(),
            scale: scale.to_string(),
            seeds,
            completed: Vec::new(),
        }
    }

    /// True once every requested seed has a summary.
    pub fn is_complete(&self) -> bool {
        self.completed.len() == self.seeds.len()
    }

    /// The mean summary over completed seeds, reduced in ascending seed
    /// order (float reductions are order-sensitive; a fixed order is what
    /// keeps the merge byte-deterministic). `None` while nothing finished.
    pub fn merged(&self) -> Option<Summary> {
        if self.completed.is_empty() {
            return None;
        }
        let runs: Vec<Summary> = self.completed.iter().map(|(_, s)| s.clone()).collect();
        Some(Summary::mean_of(&runs))
    }

    /// Records one finished seed, keeping `completed` sorted by seed.
    /// Re-recording a seed replaces its summary.
    pub fn record(&mut self, seed: u64, summary: Summary) {
        match self.completed.binary_search_by_key(&seed, |(s, _)| *s) {
            Ok(i) => self.completed[i].1 = summary,
            Err(i) => self.completed.insert(i, (seed, summary)),
        }
    }

    /// The summaries already completed, for resuming: seeds outside the
    /// requested set are dropped (the checkpoint belonged to a different
    /// seed range).
    fn restrict_to(&mut self, seeds: &[u64]) {
        self.completed.retain(|(s, _)| seeds.contains(s));
        self.seeds = seeds.to_vec();
    }

    // -- serialization ------------------------------------------------

    /// Renders the canonical JSON form: fixed field order, ascending
    /// seeds, shortest-round-trip floats. Byte-deterministic for a given
    /// logical content.
    pub fn to_json(&self) -> String {
        let seed_list: Vec<String> = self.seeds.iter().map(u64::to_string).collect();
        let rows: Vec<String> = self
            .completed
            .iter()
            .map(|(seed, s)| {
                format!(
                    "    {{\"seed\": {seed}, \"summary\": {}}}",
                    summary_to_json(s)
                )
            })
            .collect();
        let merged = self
            .merged()
            .map(|m| summary_to_json(&m))
            .unwrap_or_else(|| "null".to_string());
        format!(
            "{{\n  \"sweep\": \"{}\",\n  \"scale\": \"{}\",\n  \"seeds\": [{}],\n  \
             \"completed\": [\n{}\n  ],\n  \"merged\": {merged}\n}}\n",
            self.scenario,
            self.scale,
            seed_list.join(", "),
            rows.join(",\n"),
        )
    }

    /// Parses a report previously written by [`SweepReport::to_json`].
    pub fn from_json(text: &str) -> Result<SweepReport, String> {
        let value = json::parse(text)?;
        let obj = value.as_object("report")?;
        let scenario = json::get(obj, "sweep")?.as_str("sweep")?.to_string();
        let scale = json::get(obj, "scale")?.as_str("scale")?.to_string();
        let seeds = json::get(obj, "seeds")?
            .as_array("seeds")?
            .iter()
            .map(|v| v.as_u64("seed"))
            .collect::<Result<Vec<u64>, String>>()?;
        let mut report = SweepReport::new(&scenario, &scale, seeds);
        for row in json::get(obj, "completed")?.as_array("completed")? {
            let row = row.as_object("completed row")?;
            let seed = json::get(row, "seed")?.as_u64("seed")?;
            let summary = summary_from_json(json::get(row, "summary")?)?;
            report.record(seed, summary);
        }
        Ok(report)
    }
}

/// One summary in the canonical JSON field order shared with the
/// `lockss-sim` scenario reports.
pub fn summary_to_json(s: &Summary) -> String {
    fn f(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        }
    }
    fn ms(d: Option<Duration>) -> String {
        d.map(|d| d.as_millis().to_string())
            .unwrap_or_else(|| "null".to_string())
    }
    format!(
        "{{\"access_failure_probability\": {}, \"mean_gap_ms\": {}, \
         \"gap_p50_ms\": {}, \"gap_p90_ms\": {}, \
         \"successful_polls\": {}, \"failed_polls\": {}, \"alarms\": {}, \
         \"loyal_effort_secs\": {}, \"adversary_effort_secs\": {}}}",
        f(s.access_failure_probability),
        ms(s.mean_time_between_successes),
        ms(s.gap_p50),
        ms(s.gap_p90),
        s.successful_polls,
        s.failed_polls,
        s.alarms,
        f(s.loyal_effort_secs),
        f(s.adversary_effort_secs),
    )
}

/// Parses a summary written by [`summary_to_json`]. Floats round-trip
/// exactly (shortest-repr formatting), which is what makes
/// resume-equals-uninterrupted a byte-level guarantee.
pub fn summary_from_json(v: &json::Value) -> Result<Summary, String> {
    let obj = v.as_object("summary")?;
    let opt_ms = |key: &str| -> Result<Option<Duration>, String> {
        let v = json::get(obj, key)?;
        if v.is_null() {
            Ok(None)
        } else {
            Ok(Some(Duration::from_millis(v.as_u64(key)?)))
        }
    };
    Ok(Summary {
        access_failure_probability: json::get(obj, "access_failure_probability")?
            .as_f64("access_failure_probability")?,
        mean_time_between_successes: opt_ms("mean_gap_ms")?,
        gap_p50: opt_ms("gap_p50_ms")?,
        gap_p90: opt_ms("gap_p90_ms")?,
        successful_polls: json::get(obj, "successful_polls")?.as_u64("successful_polls")?,
        failed_polls: json::get(obj, "failed_polls")?.as_u64("failed_polls")?,
        alarms: json::get(obj, "alarms")?.as_u64("alarms")?,
        loyal_effort_secs: json::get(obj, "loyal_effort_secs")?.as_f64("loyal_effort_secs")?,
        adversary_effort_secs: json::get(obj, "adversary_effort_secs")?
            .as_f64("adversary_effort_secs")?,
    })
}

// ---------------------------------------------------------------------
// Orchestration.
// ---------------------------------------------------------------------

/// Parses a `--seeds` argument: either `A..B` (inclusive) or a bare count
/// `K` meaning `1..=K`.
pub fn parse_seed_range(arg: &str) -> Result<Vec<u64>, String> {
    let parse = |s: &str| {
        s.trim()
            .parse::<u64>()
            .map_err(|_| format!("'{s}' is not a seed number"))
    };
    let seeds = match arg.split_once("..") {
        Some((a, b)) => {
            let (a, b) = (parse(a)?, parse(b)?);
            if a > b {
                return Err(format!("empty seed range {a}..{b}"));
            }
            (a..=b).collect()
        }
        None => {
            let k = parse(arg)?;
            if k == 0 {
                return Err("need at least one seed".into());
            }
            (1..=k).collect()
        }
    };
    Ok(seeds)
}

/// Loads the resumable state from `checkpoint`, if it exists and matches
/// the planned sweep (scenario, scale); a mismatched or unreadable file is
/// ignored rather than trusted.
pub fn load_checkpoint(checkpoint: &Path, scenario: &str, scale: &str) -> Option<SweepReport> {
    let text = std::fs::read_to_string(checkpoint).ok()?;
    let report = SweepReport::from_json(&text).ok()?;
    (report.scenario == scenario && report.scale == scale).then_some(report)
}

/// Atomic-enough checkpoint write: temp file in the same directory, then
/// rename over the target (rename is atomic on POSIX filesystems).
fn write_checkpoint(path: &Path, content: &str) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, content)?;
    std::fs::rename(&tmp, path)
}

/// Runs the sweep: seeds already present in `resume` are reused verbatim,
/// the rest are executed across `threads` workers, and the returned report
/// is identical no matter the thread count or how the work was split
/// across interruptions.
///
/// With `checkpoint`, the partial report is persisted after every finished
/// seed and the final report overwrites it at the end.
pub fn run_sweep(
    scenario: &Scenario,
    name: &str,
    scale: &str,
    seeds: &[u64],
    threads: usize,
    checkpoint: Option<&Path>,
    resume: Option<SweepReport>,
) -> SweepReport {
    let mut plan = SweepReport::new(name, scale, seeds.to_vec());
    if let Some(mut prior) = resume {
        prior.restrict_to(&plan.seeds);
        plan.completed = prior.completed;
    }
    let todo: Vec<u64> = plan
        .seeds
        .iter()
        .copied()
        .filter(|s| !plan.completed.iter().any(|(done, _)| done == s))
        .collect();

    let shared = Mutex::new(plan);
    let cursor = AtomicUsize::new(0);
    let threads = threads.max(1).min(todo.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&seed) = todo.get(i) else {
                    break;
                };
                let summary = run_once(scenario, seed);
                let mut plan = shared
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                plan.record(seed, summary);
                if let Some(path) = checkpoint {
                    // Best-effort mid-run persistence; a failing disk must
                    // not kill the sweep, but it must not be silent either
                    // (the caller re-verifies the final file).
                    if let Err(e) = write_checkpoint(path, &plan.to_json()) {
                        eprintln!(
                            "warning: checkpoint write to {} failed: {e}",
                            path.display()
                        );
                    }
                }
            });
        }
    });

    let report = shared
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    if let Some(path) = checkpoint {
        if let Err(e) = write_checkpoint(path, &report.to_json()) {
            eprintln!(
                "warning: final checkpoint write to {} failed: {e}",
                path.display()
            );
        }
    }
    report
}

// ---------------------------------------------------------------------
// Fixed-schema JSON reader: shared with bench reports and scenario
// specs, hosted in the substrate crate (`lockss_sim::json`).
// ---------------------------------------------------------------------

pub use lockss_sim::json;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    fn tiny() -> Scenario {
        let mut s = Scenario::baseline(Scale::Quick, 2);
        s.cfg.n_peers = 25;
        s.run_length = Duration::from_days(120);
        s
    }

    fn summary(seed: u64) -> Summary {
        Summary {
            access_failure_probability: 1.0 / (seed as f64 * 3.0 + 0.1),
            mean_time_between_successes: Some(Duration::from_days(seed)),
            gap_p50: Some(Duration::from_days(seed)),
            gap_p90: seed
                .is_multiple_of(2)
                .then(|| Duration::from_days(2 * seed)),
            successful_polls: 10 * seed,
            failed_polls: seed,
            alarms: 0,
            loyal_effort_secs: 1.5 * seed as f64,
            adversary_effort_secs: 0.0,
        }
    }

    #[test]
    fn seed_range_parsing() {
        assert_eq!(parse_seed_range("1..4").unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(parse_seed_range("7..7").unwrap(), vec![7]);
        assert_eq!(parse_seed_range("3").unwrap(), vec![1, 2, 3]);
        assert!(parse_seed_range("4..1").is_err());
        assert!(parse_seed_range("0").is_err());
        assert!(parse_seed_range("x..y").is_err());
    }

    #[test]
    fn report_json_roundtrips_exactly() {
        let mut report = SweepReport::new("scale-10k-baseline", "quick", vec![1, 2, 3, 4]);
        report.record(3, summary(3));
        report.record(1, summary(1));
        report.record(2, summary(2));
        let text = report.to_json();
        let back = SweepReport::from_json(&text).expect("parses");
        assert_eq!(
            back, report,
            "exact struct round-trip (float bits included)"
        );
        assert_eq!(back.to_json(), text, "byte round-trip");
        assert!(!report.is_complete());
        report.record(4, summary(4));
        assert!(report.is_complete());
    }

    #[test]
    fn record_is_sorted_and_replaces() {
        let mut report = SweepReport::new("x", "quick", vec![5, 1, 3, 1]);
        assert_eq!(report.seeds, vec![1, 3, 5], "sorted, deduped");
        report.record(5, summary(5));
        report.record(1, summary(1));
        assert_eq!(report.completed[0].0, 1);
        assert_eq!(report.completed[1].0, 5);
        report.record(5, summary(2));
        assert_eq!(report.completed.len(), 2);
        assert_eq!(report.completed[1].1, summary(2));
    }

    #[test]
    fn merged_reduces_in_seed_order() {
        let mut a = SweepReport::new("x", "quick", vec![1, 2]);
        a.record(2, summary(2));
        a.record(1, summary(1));
        let mut b = SweepReport::new("x", "quick", vec![1, 2]);
        b.record(1, summary(1));
        b.record(2, summary(2));
        assert_eq!(a.merged(), b.merged(), "completion order is irrelevant");
        assert_eq!(SweepReport::new("x", "quick", vec![1]).merged(), None);
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        let s = tiny();
        let seeds = [1, 2, 3, 4];
        let one = run_sweep(&s, "tiny", "quick", &seeds, 1, None, None);
        let eight = run_sweep(&s, "tiny", "quick", &seeds, 8, None, None);
        assert_eq!(
            one.to_json(),
            eight.to_json(),
            "reports must be byte-identical"
        );
    }

    #[test]
    fn resume_equals_uninterrupted() {
        let s = tiny();
        let seeds = [1, 2, 3];
        let full = run_sweep(&s, "tiny", "quick", &seeds, 2, None, None);
        // "Interrupted": only seed 2 finished before the crash.
        let partial = run_sweep(&s, "tiny", "quick", &[2], 1, None, None);
        let resumed = run_sweep(&s, "tiny", "quick", &seeds, 2, None, Some(partial));
        assert_eq!(resumed.to_json(), full.to_json());
    }

    #[test]
    fn checkpoint_file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("lockss-sweep-{}", std::process::id()));
        let path = dir.join("sweep-test.json");
        let s = tiny();
        let report = run_sweep(&s, "tiny", "quick", &[1, 2], 2, Some(&path), None);
        let loaded = load_checkpoint(&path, "tiny", "quick").expect("checkpoint exists");
        assert_eq!(loaded, report);
        // A mismatched scenario name is ignored.
        assert!(load_checkpoint(&path, "other", "quick").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_reader_rejects_garbage() {
        assert!(json::parse("{").is_err());
        assert!(json::parse("{} trailing").is_err());
        assert!(json::parse("{\"a\": }").is_err());
        assert!(SweepReport::from_json("{\"sweep\": 3}").is_err());
    }
}

//! Post-compromise recovery threshold study (`lockss-sim sweep recovery`).
//!
//! The self-healing question the mobile-takeover family poses: for which
//! concurrency budgets does the §4.3 audit-and-repair machinery outrun a
//! migrating Byzantine compromise? Each study point runs a small world
//! under a [`MobileTakeover`] campaign with a fixed horizon (the adversary
//! cures every remaining victim and stops), then keeps simulating and
//! watches `total_damaged` — the population-wide damaged-block count —
//! until it reaches zero or a heal window expires.
//!
//! Per budget the study reports time-to-heal quantiles over the seeds
//! (p50/p90 via a seeded streaming [`Reservoir`]) and a verdict: `heals`
//! iff every seed recovered fully within the window, `data-loss`
//! otherwise. The boundary between the two verdicts is the recovery
//! threshold — VALIDATION.md pins one budget on each side.
//!
//! Determinism: each `(budget, seed)` run is a pure function of its
//! inputs (watching the world at day granularity just continues the same
//! discrete-event run), workers claim `(budget, seed)` items off one
//! atomic cursor and write into seed-indexed slots, and the reduction
//! walks the slots in order — so the rendered report is byte-identical
//! for any thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use lockss_adversary::MobileTakeover;
use lockss_core::{World, WorldConfig};
use lockss_effort::CostModel;
use lockss_metrics::streaming::Reservoir;
use lockss_sim::{Duration, Engine, SimTime};
use lockss_storage::AuSpec;

/// Study shape: which budgets, how many seeds, the campaign and the
/// patience after it.
#[derive(Clone, Debug)]
pub struct RecoveryStudy {
    /// Concurrency budgets to probe, one report row each.
    pub budgets: Vec<u32>,
    /// Seeds per budget.
    pub seeds: Vec<u64>,
    /// Campaign length in days (the adversary's cure-all horizon).
    pub attack_days: u64,
    /// Migration period in days.
    pub period_days: u64,
    /// How long after the campaign the world may keep repairing before
    /// an unhealed seed counts as data loss.
    pub heal_window_days: u64,
    /// Loyal population (small worlds keep the study CI-fast).
    pub n_peers: usize,
    /// Collection size.
    pub n_aus: usize,
    /// Blocks per AU. Small collections are where durable loss lives:
    /// a block is gone for good only when *every* replica of it is
    /// damaged (repair candidates are voters whose vote shows the block
    /// intact), and with few blocks a saturation campaign can reach that.
    pub au_blocks: u64,
}

impl Default for RecoveryStudy {
    fn default() -> RecoveryStudy {
        RecoveryStudy {
            budgets: vec![1, 2, 4, 8, 16, 24, 28, 30],
            seeds: (1..=4).collect(),
            attack_days: 240,
            period_days: 10,
            heal_window_days: 120,
            n_peers: 30,
            n_aus: 2,
            au_blocks: 4,
        }
    }
}

/// One `(budget, seed)` run's outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct PointOutcome {
    /// Days from campaign end to `total_damaged == 0`, if reached within
    /// the window.
    healed_after: Option<u64>,
    /// Damaged blocks left at the end of the watch.
    residual: u64,
}

/// One budget row of the report.
#[derive(Clone, Debug)]
pub struct BudgetRow {
    /// The probed concurrency budget.
    pub budget: u32,
    /// Seeds that reached `total_damaged == 0` within the window.
    pub healed: usize,
    /// Seeds probed.
    pub seeds: usize,
    /// Median days-to-heal over the healed seeds.
    pub p50_days: Option<u64>,
    /// 90th-percentile days-to-heal over the healed seeds.
    pub p90_days: Option<u64>,
    /// Largest residual damaged-block count over the seeds.
    pub max_residual: u64,
}

impl BudgetRow {
    /// `heals` iff every seed recovered fully within the window.
    pub fn heals(&self) -> bool {
        self.healed == self.seeds
    }
}

/// The study's result: one row per budget, in budget order.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// The study that produced the rows.
    pub study: RecoveryStudy,
    /// One row per probed budget.
    pub rows: Vec<BudgetRow>,
}

fn run_point(study: &RecoveryStudy, budget: u32, seed: u64) -> PointOutcome {
    let au_spec = AuSpec {
        size_bytes: study.au_blocks * 1_000_000,
        block_bytes: 1_000_000,
    };
    let mut cfg = WorldConfig {
        n_peers: study.n_peers,
        n_aus: study.n_aus,
        au_spec,
        seed,
        ..WorldConfig::default()
    };
    cfg.cost = CostModel::default().with_au_bytes(au_spec.size_bytes);
    // Monthly polls: the repair machinery gets a dozen audit rounds per
    // simulated year, so heal times resolve inside a CI-sized window.
    cfg.protocol.poll_interval = Duration::MONTH;
    let mut world = World::new(cfg);
    world.install_adversary(Box::new(
        MobileTakeover::new(budget)
            .with_period(Duration::from_days(study.period_days))
            .with_horizon(Duration::from_days(study.attack_days)),
    ));
    let mut eng: Engine<World> = Engine::new();
    world.start(&mut eng);
    let attack_end = SimTime::ZERO + Duration::from_days(study.attack_days);
    eng.run_until(&mut world, attack_end);
    let mut healed_after = None;
    for day in 0..=study.heal_window_days {
        eng.run_until(&mut world, attack_end + Duration::from_days(day));
        if world.peers.total_damaged() == 0 {
            healed_after = Some(day);
            break;
        }
    }
    PointOutcome {
        healed_after,
        residual: world.peers.total_damaged() as u64,
    }
}

/// Runs the study on `threads` workers. Byte-deterministic: the report
/// depends only on the study shape, never on the thread count.
pub fn run_recovery_study(study: &RecoveryStudy, threads: usize) -> RecoveryReport {
    let work: Vec<(usize, usize)> = (0..study.budgets.len())
        .flat_map(|b| (0..study.seeds.len()).map(move |s| (b, s)))
        .collect();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Vec<Option<PointOutcome>>>> = (0..study.budgets.len())
        .map(|_| Mutex::new(vec![None; study.seeds.len()]))
        .collect();
    let threads = threads.max(1).min(work.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let item = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(b, s)) = work.get(item) else {
                    break;
                };
                let outcome = run_point(study, study.budgets[b], study.seeds[s]);
                slots[b].lock().unwrap_or_else(|e| e.into_inner())[s] = Some(outcome);
            });
        }
    });

    let rows = study
        .budgets
        .iter()
        .zip(&slots)
        .map(|(&budget, slot)| {
            let outcomes = slot.lock().unwrap_or_else(|e| e.into_inner());
            // Seed-order reduction into a seeded reservoir: quantiles are
            // a pure function of the outcomes.
            let mut heal_days = Reservoir::with_seed(study.seeds.len().max(1), 0x5eed);
            let mut healed = 0;
            let mut max_residual = 0;
            for outcome in outcomes.iter().map(|o| o.expect("every slot filled")) {
                if let Some(days) = outcome.healed_after {
                    heal_days.add(days as f64);
                    healed += 1;
                }
                max_residual = max_residual.max(outcome.residual);
            }
            BudgetRow {
                budget,
                healed,
                seeds: study.seeds.len(),
                p50_days: heal_days.quantile(0.5).map(|d| d as u64),
                p90_days: heal_days.quantile(0.9).map(|d| d as u64),
                max_residual,
            }
        })
        .collect();
    RecoveryReport {
        study: study.clone(),
        rows,
    }
}

impl RecoveryReport {
    /// Deterministic text rendering (integers only: byte-stable across
    /// platforms and thread counts).
    pub fn render(&self) -> String {
        let s = &self.study;
        let mut out = format!(
            "recovery threshold study: {} peers, {} AUs x {} blocks, monthly polls, \
             attack {}d (migrate every {}d), heal window {}d, {} seeds\n\
             budget  healed  p50(d)  p90(d)  max-residual  verdict\n",
            s.n_peers,
            s.n_aus,
            s.au_blocks,
            s.attack_days,
            s.period_days,
            s.heal_window_days,
            s.seeds.len()
        );
        let opt = |d: Option<u64>| d.map_or("-".to_string(), |d| d.to_string());
        for r in &self.rows {
            out.push_str(&format!(
                "{:<7} {:<7} {:<7} {:<7} {:<13} {}\n",
                r.budget,
                format!("{}/{}", r.healed, r.seeds),
                opt(r.p50_days),
                opt(r.p90_days),
                r.max_residual,
                if r.heals() { "heals" } else { "data-loss" }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RecoveryStudy {
        RecoveryStudy {
            budgets: vec![1, 8],
            seeds: vec![1, 2],
            attack_days: 90,
            period_days: 30,
            heal_window_days: 120,
            ..RecoveryStudy::default()
        }
    }

    #[test]
    fn report_is_thread_count_invariant() {
        let study = tiny();
        let one = run_recovery_study(&study, 1).render();
        let four = run_recovery_study(&study, 4).render();
        assert_eq!(one, four, "report must not depend on the thread count");
    }

    #[test]
    fn rows_follow_budget_order_and_render_stably() {
        let study = tiny();
        let report = run_recovery_study(&study, 2);
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.rows[0].budget, 1);
        assert_eq!(report.rows[1].budget, 8);
        let rendered = report.render();
        assert!(rendered.contains("budget"), "{rendered}");
        assert!(
            rendered.contains("heals") || rendered.contains("data-loss"),
            "{rendered}"
        );
        assert_eq!(rendered, run_recovery_study(&study, 2).render());
    }

    #[test]
    fn unhealed_points_surface_residual_damage() {
        // A budget the size of the whole population with a migration
        // every 10 days and no patience afterwards: residual damage must
        // be visible in the row.
        let study = RecoveryStudy {
            budgets: vec![30],
            seeds: vec![1],
            attack_days: 90,
            period_days: 10,
            heal_window_days: 0,
            ..RecoveryStudy::default()
        };
        let report = run_recovery_study(&study, 1);
        let row = &report.rows[0];
        assert!(!row.heals(), "no heal window leaves the damage in place");
        assert!(row.max_residual > 0);
    }
}

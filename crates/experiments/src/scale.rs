//! Experiment scale selection.
//!
//! The paper's configuration (100 peers × up to 600 AUs × 2 simulated
//! years × 3 seeds) is CPU-hours per figure; the `default` scale keeps the
//! paper's population, interval, quorum, and damage model but trims the
//! collection size and seed count so a full figure regenerates in minutes
//! while preserving the result's *shape*. `quick` is a smoke-test scale
//! for CI.

use lockss_sim::Duration;

/// How big to run an experiment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Smoke test: tiny population, one seed.
    Quick,
    /// Laptop-scale shape reproduction (the EXPERIMENTS.md numbers).
    Default,
    /// The paper's §6.3 parameters.
    Paper,
}

impl Scale {
    /// Reads the scale from `--scale <s>` argv or the `LOCKSS_SCALE`
    /// environment variable; defaults to `Default`.
    pub fn from_env_and_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        for i in 0..args.len() {
            if args[i] == "--scale" && i + 1 < args.len() {
                return Scale::parse(&args[i + 1]);
            }
        }
        match std::env::var("LOCKSS_SCALE") {
            Ok(v) => Scale::parse(&v),
            Err(_) => Scale::Default,
        }
    }

    /// Parses a scale name (unknown names fall back to `Default`).
    pub fn parse(s: &str) -> Scale {
        match s.to_ascii_lowercase().as_str() {
            "quick" | "smoke" | "ci" => Scale::Quick,
            "paper" | "full" => Scale::Paper,
            _ => Scale::Default,
        }
    }

    /// Loyal peer population.
    pub fn n_peers(self) -> usize {
        match self {
            Scale::Quick => 40,
            Scale::Default | Scale::Paper => 100,
        }
    }

    /// The small collection size (the paper's 50-AU points).
    pub fn small_collection(self) -> usize {
        match self {
            Scale::Quick => 4,
            Scale::Default => 20,
            Scale::Paper => 50,
        }
    }

    /// The large collection size (the paper's 600-AU points; `paper` scale
    /// uses 200 — still 4× the small collection, direct-simulated rather
    /// than layered, see DESIGN.md).
    pub fn large_collection(self) -> usize {
        match self {
            Scale::Quick => 8,
            Scale::Default => 50,
            Scale::Paper => 200,
        }
    }

    /// Simulated run length.
    pub fn run_length(self) -> Duration {
        match self {
            Scale::Quick => Duration::from_days(360),
            Scale::Default | Scale::Paper => Duration::YEAR * 2,
        }
    }

    /// Seeds per data point (the paper: 3 runs per point).
    pub fn seeds(self) -> u64 {
        match self {
            Scale::Quick => 1,
            Scale::Default | Scale::Paper => 3,
        }
    }

    /// Attack-duration sweep for the pipe-stoppage figures (days).
    pub fn stoppage_durations(self) -> Vec<u64> {
        match self {
            Scale::Quick => vec![10, 90],
            _ => vec![1, 5, 10, 30, 60, 90, 180],
        }
    }

    /// Attack-duration sweep for the admission-flood figures (days).
    pub fn flood_durations(self) -> Vec<u64> {
        match self {
            Scale::Quick => vec![10, 180],
            _ => vec![1, 5, 10, 30, 90, 180, 720],
        }
    }

    /// Coverage sweep (fraction of the population attacked).
    pub fn coverages(self) -> Vec<f64> {
        match self {
            Scale::Quick => vec![0.4, 1.0],
            _ => vec![0.1, 0.4, 0.7, 1.0],
        }
    }

    /// Inter-poll interval sweep for Fig. 2 (months).
    pub fn poll_intervals_months(self) -> Vec<u64> {
        match self {
            Scale::Quick => vec![3, 6],
            _ => vec![2, 3, 4, 6, 9, 12],
        }
    }

    /// Storage MTBF sweep for Fig. 2 (disk-years).
    pub fn mtbf_years(self) -> Vec<f64> {
        match self {
            Scale::Quick => vec![1.0, 5.0],
            _ => vec![1.0, 2.0, 3.0, 4.0, 5.0],
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Default => "default",
            Scale::Paper => "paper",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_names() {
        assert_eq!(Scale::parse("quick"), Scale::Quick);
        assert_eq!(Scale::parse("PAPER"), Scale::Paper);
        assert_eq!(Scale::parse("default"), Scale::Default);
        assert_eq!(Scale::parse("garbage"), Scale::Default);
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Quick.n_peers() <= Scale::Default.n_peers());
        assert!(Scale::Default.small_collection() <= Scale::Paper.small_collection());
        assert!(Scale::Quick.seeds() <= Scale::Paper.seeds());
        for s in [Scale::Quick, Scale::Default, Scale::Paper] {
            assert!(s.small_collection() < s.large_collection());
        }
    }
}

//! The shared parameter sweeps behind the paper's figures and Table 1.

use lockss_adversary::Defection;
use lockss_metrics::Summary;
use lockss_sim::Duration;

use crate::cache;
use crate::registry::ScenarioRegistry;
use crate::runner::{default_threads, run_batch, MeasuredPoint};
use crate::scale::Scale;
use crate::scenario::{AttackSpec, Scenario};

/// The registered baseline world resized to `n_aus`: every sweep point
/// derives from the same `baseline` registry entry the CLI runs, so a
/// figure point is always "a registered scenario plus a parameter tweak".
fn registered_baseline(scale: Scale, n_aus: usize) -> Scenario {
    ScenarioRegistry::standard()
        .build("baseline", scale)
        .expect("'baseline' is registered")
        .with_aus(n_aus)
}

/// One point of an attack sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Coverage fraction (1.0 = whole population).
    pub coverage: f64,
    /// Attack duration in days.
    pub days: u64,
    /// True if this point uses the large collection.
    pub large: bool,
    pub measured: MeasuredPoint,
}

fn point_label(kind: &str, coverage: f64, days: u64, large: bool) -> String {
    format!(
        "{kind}|cov={}|days={days}|{}",
        (coverage * 100.0).round(),
        if large { "large" } else { "small" }
    )
}

/// Runs (or loads) the baselines for the small and large collections.
pub fn baselines(scale: Scale) -> (Summary, Summary) {
    let name = format!("baseline-{}", scale.label());
    if let Some(rows) = cache::load(&name) {
        if rows.len() == 2 {
            return (rows[0].1.clone(), rows[1].1.clone());
        }
    }
    let registry = ScenarioRegistry::standard();
    let jobs = vec![
        registry.build("baseline", scale).expect("registered"),
        registry.build("baseline-large", scale).expect("registered"),
    ];
    let out = run_batch(&jobs, scale.seeds(), default_threads());
    cache::store(
        &name,
        &[
            ("small".to_string(), out[0].clone()),
            ("large".to_string(), out[1].clone()),
        ],
    );
    (out[0].clone(), out[1].clone())
}

fn attack_sweep(
    scale: Scale,
    kind: &str,
    durations: &[u64],
    make: impl Fn(f64, u64) -> AttackSpec,
) -> Vec<SweepPoint> {
    let name = format!("{kind}-{}", scale.label());
    let (base_small, base_large) = baselines(scale);

    // Point grid: all coverages × durations on the small collection, plus
    // the 100%-coverage series on the large collection (the paper's
    // "100% 600 AUs" line).
    let mut grid: Vec<(f64, u64, bool)> = Vec::new();
    for &cov in &scale.coverages() {
        for &d in durations {
            grid.push((cov, d, false));
        }
    }
    for &d in durations {
        grid.push((1.0, d, true));
    }

    let rows = match cache::load(&name) {
        Some(rows) if rows.len() == grid.len() => rows,
        _ => {
            let jobs: Vec<Scenario> = grid
                .iter()
                .map(|&(cov, d, large)| {
                    let n_aus = if large {
                        scale.large_collection()
                    } else {
                        scale.small_collection()
                    };
                    registered_baseline(scale, n_aus).with_attack(make(cov, d))
                })
                .collect();
            let summaries = run_batch(&jobs, scale.seeds(), default_threads());
            let rows: Vec<(String, Summary)> = grid
                .iter()
                .zip(summaries)
                .map(|(&(cov, d, large), s)| (point_label(kind, cov, d, large), s))
                .collect();
            cache::store(&name, &rows);
            rows
        }
    };

    grid.iter()
        .zip(rows)
        .map(|(&(coverage, days, large), (label, attacked))| SweepPoint {
            coverage,
            days,
            large,
            measured: MeasuredPoint {
                label,
                attacked,
                baseline: if large {
                    base_large.clone()
                } else {
                    base_small.clone()
                },
            },
        })
        .collect()
}

/// The pipe-stoppage sweep behind Figures 3, 4, and 5.
pub fn pipe_sweep(scale: Scale) -> Vec<SweepPoint> {
    attack_sweep(
        scale,
        "pipe",
        &scale.stoppage_durations(),
        |coverage, days| AttackSpec::PipeStoppage { coverage, days },
    )
}

/// The admission-flood sweep behind Figures 6, 7, and 8.
pub fn flood_sweep(scale: Scale) -> Vec<SweepPoint> {
    attack_sweep(
        scale,
        "flood",
        &scale.flood_durations(),
        |coverage, days| AttackSpec::AdmissionFlood { coverage, days },
    )
}

/// One Fig. 2 point: interval × MTBF × collection size.
#[derive(Clone, Debug)]
pub struct BaselinePoint {
    pub interval_months: u64,
    pub mtbf_years: f64,
    pub large: bool,
    pub summary: Summary,
}

/// The no-attack sweep behind Figure 2.
pub fn fig2_sweep(scale: Scale) -> Vec<BaselinePoint> {
    let name = format!("fig2-{}", scale.label());
    let mut grid: Vec<(u64, f64, bool)> = Vec::new();
    for &m in &scale.poll_intervals_months() {
        for &y in &scale.mtbf_years() {
            grid.push((m, y, false));
        }
    }
    // The paper shows the 600-AU collection at 1- and 5-year MTBF.
    let extremes = {
        let ys = scale.mtbf_years();
        vec![
            *ys.first().expect("nonempty"),
            *ys.last().expect("nonempty"),
        ]
    };
    for &m in &scale.poll_intervals_months() {
        for &y in &extremes {
            if !grid.contains(&(m, y, true)) {
                grid.push((m, y, true));
            }
        }
    }

    let rows = match cache::load(&name) {
        Some(rows) if rows.len() == grid.len() => rows,
        _ => {
            let jobs: Vec<Scenario> = grid
                .iter()
                .map(|&(months, years, large)| {
                    let n_aus = if large {
                        scale.large_collection()
                    } else {
                        scale.small_collection()
                    };
                    registered_baseline(scale, n_aus)
                        .with_poll_interval(Duration::MONTH * months)
                        .with_mtbf_years(years)
                })
                .collect();
            let summaries = run_batch(&jobs, scale.seeds(), default_threads());
            let rows: Vec<(String, Summary)> = grid
                .iter()
                .zip(summaries)
                .map(|(&(m, y, large), s)| {
                    (
                        format!("fig2|m={m}|y={y}|{}", if large { "large" } else { "small" }),
                        s,
                    )
                })
                .collect();
            cache::store(&name, &rows);
            rows
        }
    };

    grid.iter()
        .zip(rows)
        .map(
            |(&(interval_months, mtbf_years, large), (_, summary))| BaselinePoint {
                interval_months,
                mtbf_years,
                large,
                summary,
            },
        )
        .collect()
}

/// One Table 1 row: defection strategy × collection size.
#[derive(Clone, Debug)]
pub struct Table1Row {
    pub defection: Defection,
    pub large: bool,
    pub measured: MeasuredPoint,
}

/// The brute-force runs behind Table 1.
pub fn table1_rows(scale: Scale) -> Vec<Table1Row> {
    let name = format!("table1-{}", scale.label());
    let (base_small, base_large) = baselines(scale);
    let grid: Vec<(Defection, bool)> = [Defection::Intro, Defection::Remaining, Defection::None_]
        .into_iter()
        .flat_map(|d| [(d, false), (d, true)])
        .collect();

    let rows = match cache::load(&name) {
        Some(rows) if rows.len() == grid.len() => rows,
        _ => {
            let jobs: Vec<Scenario> = grid
                .iter()
                .map(|&(defection, large)| {
                    let n_aus = if large {
                        scale.large_collection()
                    } else {
                        scale.small_collection()
                    };
                    registered_baseline(scale, n_aus)
                        .with_attack(AttackSpec::BruteForce { defection })
                })
                .collect();
            let summaries = run_batch(&jobs, scale.seeds(), default_threads());
            let rows: Vec<(String, Summary)> = grid
                .iter()
                .zip(summaries)
                .map(|(&(d, large), s)| {
                    (
                        format!("t1|{}|{}", d.label(), if large { "large" } else { "small" }),
                        s,
                    )
                })
                .collect();
            cache::store(&name, &rows);
            rows
        }
    };

    grid.iter()
        .zip(rows)
        .map(|(&(defection, large), (label, attacked))| Table1Row {
            defection,
            large,
            measured: MeasuredPoint {
                label,
                attacked,
                baseline: if large {
                    base_large.clone()
                } else {
                    base_small.clone()
                },
            },
        })
        .collect()
}

//! `sweep status <dir>`: read-only campaign progress, reassembled from
//! whatever checkpoints and heartbeat telemetry a directory holds.
//!
//! Checkpoints give the durable truth (which seeds are finished);
//! heartbeats add liveness (rate, memory, how fresh the worker's last
//! sign of life is). Both inputs are best-effort: a missing or torn file
//! degrades the display, never the command.

use std::io::{Read as _, Seek as _, SeekFrom};
use std::path::{Path, PathBuf};

use lockss_metrics::Table;
use lockss_sim::json;

use super::plan::SweepReport;
use crate::obs::heartbeat_path;

/// The heartbeat fields the status view and dispatch's stall detector
/// consume (a subset of what workers write).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HeartbeatRecord {
    /// Wall-clock milliseconds since the unix epoch at emission.
    pub unix_ms: u64,
    /// Seeds the shard had completed.
    pub seeds_done: u64,
    /// Seeds the shard is responsible for.
    pub seeds_total: u64,
    /// Polls opened so far (advances during a seed).
    pub polls: u64,
    /// Poll throughput, polls per wall second.
    pub polls_per_sec: f64,
    /// Resident set size in KiB at emission.
    pub vm_rss_kb: u64,
}

impl HeartbeatRecord {
    /// Parses one heartbeat JSONL line.
    pub fn from_line(line: &str) -> Result<HeartbeatRecord, String> {
        let v = json::parse(line).map_err(|e| e.to_string())?;
        let f = v.as_object("heartbeat")?;
        Ok(HeartbeatRecord {
            unix_ms: json::get(f, "unix_ms")?.as_u64("unix_ms")?,
            seeds_done: json::get(f, "seeds_done")?.as_u64("seeds_done")?,
            seeds_total: json::get(f, "seeds_total")?.as_u64("seeds_total")?,
            polls: json::get(f, "polls")?.as_u64("polls")?,
            polls_per_sec: json::get(f, "polls_per_sec")?.as_f64("polls_per_sec")?,
            vm_rss_kb: json::get(f, "vm_rss_kb")?.as_u64("vm_rss_kb")?,
        })
    }
}

/// Reads the last parseable heartbeat of `path` without slurping an
/// unbounded log: only the final 64 KiB are examined. `None` when the
/// file is missing, empty, or holds no complete record yet.
pub fn last_heartbeat(path: &Path) -> Option<HeartbeatRecord> {
    const TAIL: u64 = 64 * 1024;
    let mut f = std::fs::File::open(path).ok()?;
    let len = f.metadata().ok()?.len();
    f.seek(SeekFrom::Start(len.saturating_sub(TAIL))).ok()?;
    let mut tail = String::new();
    f.read_to_string(&mut tail).ok()?;
    tail.lines()
        .rev()
        .find_map(|l| HeartbeatRecord::from_line(l).ok())
}

/// Reads every parseable heartbeat of `path`, in file order. Torn or
/// foreign lines are skipped.
pub fn read_heartbeats(path: &Path) -> Vec<HeartbeatRecord> {
    std::fs::read_to_string(path)
        .map(|text| {
            text.lines()
                .filter_map(|l| HeartbeatRecord::from_line(l).ok())
                .collect()
        })
        .unwrap_or_default()
}

/// One shard's view in the status display.
pub struct ShardStatus {
    /// The checkpoint file this row was read from.
    pub checkpoint: PathBuf,
    /// The (possibly partial) report the checkpoint holds.
    pub report: SweepReport,
    /// The freshest heartbeat, when telemetry exists for this shard.
    pub heartbeat: Option<HeartbeatRecord>,
    /// Seed completion rate derived from the heartbeat history.
    pub seeds_per_sec: Option<f64>,
}

fn seeds_rate(hbs: &[HeartbeatRecord]) -> Option<f64> {
    let first = hbs.first()?;
    let last = hbs.last()?;
    let dt = last.unix_ms.saturating_sub(first.unix_ms) as f64 / 1000.0;
    let ds = last.seeds_done.saturating_sub(first.seeds_done) as f64;
    (dt > 0.0 && ds > 0.0).then_some(ds / dt)
}

/// Scans `dir` for sweep checkpoints and pairs each with its heartbeat
/// file under `telemetry` (pass `dir` again when heartbeats live beside
/// the checkpoints). Files that aren't valid sweep checkpoints are
/// skipped; an error is returned only when nothing at all is found.
pub fn campaign_status(dir: &Path, telemetry: &Path) -> Result<Vec<ShardStatus>, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            name.starts_with("sweep-") && name.ends_with(".json")
        })
        .collect();
    paths.sort();
    let mut out = Vec::new();
    for path in paths {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let Ok(report) = SweepReport::from_json(&text) else {
            continue; // not a sweep checkpoint (e.g. a scenario summary)
        };
        let shard = report.shard.as_ref().map(|t| (t.index, t.count));
        let hbs = read_heartbeats(&heartbeat_path(telemetry, &report.scenario, shard));
        out.push(ShardStatus {
            checkpoint: path,
            seeds_per_sec: seeds_rate(&hbs),
            heartbeat: hbs.into_iter().next_back(),
            report,
        });
    }
    if out.is_empty() {
        return Err(format!(
            "no sweep checkpoints under {} (expected sweep-*.json)",
            dir.display()
        ));
    }
    Ok(out)
}

fn format_secs(secs: f64) -> String {
    let s = secs.round() as u64;
    if s >= 3600 {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    } else if s >= 60 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{s}s")
    }
}

/// Renders the campaign table. `now_ms` is the caller's clock (unix
/// milliseconds), injected so the rendering itself stays deterministic
/// and testable.
pub fn render_status(statuses: &[ShardStatus], now_ms: u64) -> String {
    let mut table = Table::new(vec![
        "shard", "scenario", "scale", "seeds", "done", "polls/s", "rss", "beat", "eta",
    ]);
    let (mut all_done, mut all_total) = (0u64, 0u64);
    for s in statuses {
        let done = s.report.completed.len() as u64;
        let total = s.report.seeds.len() as u64;
        all_done += done;
        all_total += total;
        let label = s
            .report
            .shard
            .as_ref()
            .map_or_else(|| "1/1".to_string(), |t| t.label());
        let pct = if total > 0 {
            100.0 * done as f64 / total as f64
        } else {
            100.0
        };
        let (pps, rss, beat) = match &s.heartbeat {
            Some(hb) => (
                format!("{:.1}", hb.polls_per_sec),
                format!("{} MiB", hb.vm_rss_kb / 1024),
                format!(
                    "{} ago",
                    format_secs(now_ms.saturating_sub(hb.unix_ms) as f64 / 1000.0)
                ),
            ),
            None => ("-".into(), "-".into(), "-".into()),
        };
        let eta = if done >= total {
            "done".to_string()
        } else {
            match s.seeds_per_sec {
                Some(r) if r > 0.0 => format!("~{}", format_secs((total - done) as f64 / r)),
                _ => "-".into(),
            }
        };
        table.row(vec![
            label,
            s.report.scenario.clone(),
            s.report.scale.clone(),
            format!("{done}/{total}"),
            format!("{pct:.0}%"),
            pps,
            rss,
            beat,
            eta,
        ]);
    }
    let pct = if all_total > 0 {
        100.0 * all_done as f64 / all_total as f64
    } else {
        100.0
    };
    format!(
        "{}\ncampaign: {all_done}/{all_total} seeds ({pct:.0}%)\n",
        table.render().trim_end()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockss_obs::Heartbeat;
    use std::io::Write as _;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sweep-status-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn beat(unix_ms: u64, seeds_done: u64) -> Heartbeat {
        Heartbeat {
            unix_ms,
            scenario: "tiny".into(),
            scale: "quick".into(),
            shard: 1,
            shards: 1,
            seeds_done,
            seeds_total: 4,
            last_seed: seeds_done,
            polls: 100 * seeds_done,
            events: 1000,
            polls_per_sec: 12.5,
            vm_rss_kb: 4096,
            arena_live: 1,
            arena_total: 8,
        }
    }

    #[test]
    fn heartbeat_lines_roundtrip() {
        let hb = beat(5000, 2);
        let rec = HeartbeatRecord::from_line(&hb.to_json_line()).unwrap();
        assert_eq!(rec.unix_ms, 5000);
        assert_eq!(rec.seeds_done, 2);
        assert_eq!(rec.seeds_total, 4);
        assert_eq!(rec.polls, 200);
        assert_eq!(rec.polls_per_sec, 12.5);
        assert_eq!(rec.vm_rss_kb, 4096);
    }

    #[test]
    fn last_heartbeat_reads_the_tail() {
        let dir = tmpdir("tail");
        let path = dir.join("heartbeat-tiny.jsonl");
        for i in 0..5 {
            beat(1000 * i, i).append_to(&path).unwrap();
        }
        // A torn final line (mid-crash append) falls back to the last
        // complete record.
        std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap()
            .write_all(b"{\"unix_ms\": 9")
            .unwrap();
        let last = last_heartbeat(&path).unwrap();
        assert_eq!(last.unix_ms, 4000);
        assert_eq!(last.seeds_done, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn status_pairs_checkpoints_with_heartbeats() {
        use lockss_metrics::Summary;
        let dir = tmpdir("pair");
        let mut report = SweepReport::new("tiny", "quick", vec![1, 2, 3, 4]);
        report.record(1, Summary::default());
        report.record(2, Summary::default());
        std::fs::write(dir.join("sweep-tiny.json"), report.to_json()).unwrap();
        // Non-checkpoint JSON beside it must be skipped, not fatal.
        std::fs::write(dir.join("sweep-bogus.json"), "{\"x\": 1}").unwrap();
        beat(1000, 0)
            .append_to(&dir.join("heartbeat-tiny.jsonl"))
            .unwrap();
        beat(5000, 2)
            .append_to(&dir.join("heartbeat-tiny.jsonl"))
            .unwrap();

        let statuses = campaign_status(&dir, &dir).unwrap();
        assert_eq!(statuses.len(), 1);
        let s = &statuses[0];
        assert_eq!(s.report.completed.len(), 2);
        assert_eq!(s.heartbeat.as_ref().unwrap().seeds_done, 2);
        // 2 seeds over 4 wall seconds.
        assert!((s.seeds_per_sec.unwrap() - 0.5).abs() < 1e-9);

        let rendered = render_status(&statuses, 6000);
        assert!(rendered.contains("2/4"), "{rendered}");
        assert!(rendered.contains("50%"), "{rendered}");
        assert!(rendered.contains("1s ago"), "{rendered}");
        assert!(rendered.contains("~4s"), "{rendered}");
        assert!(rendered.contains("campaign: 2/4 seeds (50%)"), "{rendered}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dir_is_an_error() {
        let dir = tmpdir("empty");
        assert!(campaign_status(&dir, &dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! The dispatch driver: fans a campaign's shards out over worker
//! subprocesses and survives any of them dying.
//!
//! Each shard worker is this same binary running
//! `sweep <name> --shard i/N --checkpoint <dir>/...` — the checkpoint
//! *is* the job state, so the failure model is uniform: whether a worker
//! exits non-zero, is `kill -9`ed by an impatient operator, or is
//! preempted by the scheduler, the driver re-dispatches it (after an
//! exponential backoff) and the replacement resumes from whatever the
//! dead worker durably checkpointed. Preemption without process death is
//! caught by **liveness freshness**: with `--telemetry` on, the driver
//! reads each shard's heartbeat file and counts it fresh only while the
//! protocol counters (seeds done, polls opened) advance — polls advance
//! *during* a seed, so a long seed is never mistaken for a stall, and a
//! deadlocked worker whose heartbeat thread still appends records is
//! still caught. Without telemetry it falls back to checkpoint-file
//! mtime (which only moves per finished seed). Either way, a worker
//! stale for `--stall-secs` is presumed stuck, killed, and
//! re-dispatched — the straggler never holds the campaign hostage.
//! Heartbeats also feed per-shard progress lines with an ETA.
//!
//! `--jobfile` writes the per-shard command lines (plus the final merge)
//! to a file instead of executing anything, for fanning shards out over
//! hosts with ssh, a cluster scheduler, or plain GNU parallel; any
//! worker can run anywhere, because the shard topology is derived, not
//! assigned.

use std::io::{BufRead as _, BufReader, Read, Write as _};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration as StdDuration, Instant, SystemTime};

use lockss_obs::{unix_ms_now, utc_timestamp};

use super::merge::merge_files;
use super::plan::{write_checkpoint, SweepReport};
use super::shard::ShardTag;
use super::status::last_heartbeat;
use crate::obs::heartbeat_path;

/// Everything a dispatch run needs to know.
#[derive(Clone, Debug)]
pub struct DispatchPlan {
    /// Registered scenario name.
    pub scenario: String,
    /// Scale label (`quick` / `default` / `paper`).
    pub scale: String,
    /// The `--seeds` argument, verbatim — each worker re-derives its own
    /// slice from it, so the drive and the workers can never disagree.
    pub seeds_arg: String,
    /// The parsed campaign seed list.
    pub campaign: Vec<u64>,
    /// How many shards to cut the campaign into.
    pub shards: u64,
    /// Worker threads per shard subprocess.
    pub threads_per_shard: usize,
    /// Re-dispatches allowed per shard after its first attempt.
    pub retries: u32,
    /// Base backoff before a re-dispatch; doubles per attempt.
    pub backoff_ms: u64,
    /// Liveness-freshness window: a running worker that shows no
    /// progress (heartbeat counters, or checkpoint mtime as fallback)
    /// for this long is killed and re-dispatched. `None` disables
    /// straggler detection.
    pub stall_secs: Option<u64>,
    /// Directory for shard checkpoints and worker logs.
    pub dir: PathBuf,
    /// Where the merged campaign report lands.
    pub out: PathBuf,
    /// Ignore (delete) existing shard checkpoints before starting.
    pub fresh: bool,
    /// Heartbeat telemetry directory, passed through to every worker;
    /// also what the driver's stall detector and progress lines read.
    pub telemetry: Option<PathBuf>,
}

impl DispatchPlan {
    /// The checkpoint path of shard `index` (1-based).
    pub fn shard_checkpoint(&self, index: u64) -> PathBuf {
        self.dir.join(format!(
            "sweep-{}-shard-{index}of{}.json",
            self.scenario, self.shards
        ))
    }

    /// The log file capturing shard `index`'s stdout+stderr across all
    /// its attempts.
    pub fn shard_log(&self, index: u64) -> PathBuf {
        self.dir.join(format!(
            "sweep-{}-shard-{index}of{}.log",
            self.scenario, self.shards
        ))
    }

    /// The argv tail of shard `index`'s worker invocation.
    pub fn shard_args(&self, index: u64) -> Vec<String> {
        let mut args = vec![
            "sweep".into(),
            self.scenario.clone(),
            "--scale".into(),
            self.scale.clone(),
            "--seeds".into(),
            self.seeds_arg.clone(),
            "--shard".into(),
            format!("{index}/{}", self.shards),
            "--threads".into(),
            self.threads_per_shard.to_string(),
            "--checkpoint".into(),
            self.shard_checkpoint(index).display().to_string(),
        ];
        if let Some(dir) = &self.telemetry {
            args.push("--telemetry".into());
            args.push(dir.display().to_string());
        }
        args
    }

    /// The heartbeat file shard `index`'s worker appends to, when
    /// telemetry is on.
    pub fn shard_heartbeat(&self, index: u64) -> Option<PathBuf> {
        self.telemetry
            .as_ref()
            .map(|dir| heartbeat_path(dir, &self.scenario, Some((index, self.shards))))
    }

    /// Validates the topology early (shard count vs campaign size).
    pub fn validate(&self) -> Result<(), String> {
        ShardTag::new(1, self.shards, self.campaign.clone()).map(|_| ())
    }
}

/// Renders the jobfile: one worker command line per shard, then the
/// merge that reassembles them — ready to fan out over hosts.
pub fn jobfile(plan: &DispatchPlan, bin: &Path) -> Result<String, String> {
    plan.validate()?;
    let bin = bin.display();
    let mut lines = vec![format!(
        "# sweep fabric jobfile: '{}' at scale '{}', seeds {}, {} shard(s)\n\
         # run each shard line anywhere (any order, any host with this binary\n\
         # and a shared or collected filesystem), then the merge line.",
        plan.scenario, plan.scale, plan.seeds_arg, plan.shards
    )];
    for index in 1..=plan.shards {
        lines.push(format!("{bin} {}", plan.shard_args(index).join(" ")));
    }
    let checkpoints: Vec<String> = (1..=plan.shards)
        .map(|i| plan.shard_checkpoint(i).display().to_string())
        .collect();
    lines.push(format!(
        "{bin} sweep merge {} --out {}",
        checkpoints.join(" "),
        plan.out.display()
    ));
    lines.push(String::new());
    Ok(lines.join("\n"))
}

/// One shard's lifecycle inside the driver.
enum ShardState {
    /// Waiting to (re-)spawn, not before the given instant.
    Pending { not_before: Instant, attempts: u32 },
    /// A live worker.
    Running {
        child: Child,
        attempts: u32,
        last_fresh: Instant,
        last_mtime: Option<SystemTime>,
        /// Throttles heartbeat-file reads (the loop spins at 25ms).
        last_hb_check: Instant,
        /// Last observed `(seeds_done, polls)`; freshness means these
        /// advanced, not merely that the heartbeat file grew.
        last_progress: Option<(u64, u64)>,
        /// First observed `seeds_done` and when, for the ETA rate.
        progress_base: Option<(u64, Instant)>,
    },
    /// Exited 0; checkpoint validated at merge time.
    Done,
}

/// Runs the whole campaign: spawns one worker per shard, babysits them
/// (retry-with-backoff on any death, kill-and-re-dispatch on checkpoint
/// staleness), then merges the shard checkpoints and writes the final
/// report to `plan.out`. Returns the merged report.
///
/// `log` receives one line per lifecycle event (spawn, exit, retry,
/// stall kill), for the CLI to print.
pub fn dispatch(
    bin: &Path,
    plan: &DispatchPlan,
    log: &mut dyn FnMut(&str),
) -> Result<SweepReport, String> {
    plan.validate()?;
    std::fs::create_dir_all(&plan.dir).map_err(|e| format!("{}: {e}", plan.dir.display()))?;
    if plan.fresh {
        for index in 1..=plan.shards {
            let _ = std::fs::remove_file(plan.shard_checkpoint(index));
            let _ = std::fs::remove_file(plan.shard_log(index));
        }
    }

    let now = Instant::now();
    let mut states: Vec<ShardState> = (1..=plan.shards)
        .map(|_| ShardState::Pending {
            not_before: now,
            attempts: 0,
        })
        .collect();

    let result = babysit(bin, plan, &mut states, log);
    // Whatever happened, leave no orphaned workers behind.
    for state in &mut states {
        if let ShardState::Running { child, .. } = state {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
    result?;

    let checkpoints: Vec<PathBuf> = (1..=plan.shards)
        .map(|i| plan.shard_checkpoint(i))
        .collect();
    let report = merge_files(&checkpoints)?;
    let rendered = report.to_json();
    write_checkpoint(&plan.out, &rendered).map_err(|e| format!("{}: {e}", plan.out.display()))?;
    // Trust nothing: the merged campaign report is only claimed written
    // after reading the bytes back.
    match std::fs::read_to_string(&plan.out) {
        Ok(on_disk) if on_disk == rendered => Ok(report),
        _ => Err(format!(
            "merged report at {} is missing or stale after writing it",
            plan.out.display()
        )),
    }
}

/// The monitor loop: drives every shard to `Done` or fails.
fn babysit(
    bin: &Path,
    plan: &DispatchPlan,
    states: &mut [ShardState],
    log: &mut dyn FnMut(&str),
) -> Result<(), String> {
    let stall = plan.stall_secs.map(StdDuration::from_secs);
    loop {
        let mut all_done = true;
        for (i, state) in states.iter_mut().enumerate() {
            let index = i as u64 + 1;
            match state {
                ShardState::Done => {}
                ShardState::Pending {
                    not_before,
                    attempts,
                } => {
                    all_done = false;
                    if Instant::now() >= *not_before {
                        let child = spawn_shard(bin, plan, index, *attempts + 1)?;
                        log(&format!(
                            "shard {index}/{}: worker pid {} started (attempt {})",
                            plan.shards,
                            child.id(),
                            *attempts + 1
                        ));
                        *state = ShardState::Running {
                            child,
                            attempts: *attempts,
                            last_fresh: Instant::now(),
                            last_mtime: None,
                            last_hb_check: Instant::now(),
                            last_progress: None,
                            progress_base: None,
                        };
                    }
                }
                ShardState::Running {
                    child,
                    attempts,
                    last_fresh,
                    last_mtime,
                    last_hb_check,
                    last_progress,
                    progress_base,
                } => {
                    all_done = false;
                    match child.try_wait() {
                        Err(e) => return Err(format!("waiting on shard {index}: {e}")),
                        Ok(Some(status)) if status.success() => {
                            log(&format!("shard {index}/{}: finished", plan.shards));
                            *state = ShardState::Done;
                        }
                        Ok(Some(status)) => {
                            let died = format!(
                                "shard {index}/{}: worker died ({status}); the checkpoint \
                                 keeps its finished seeds",
                                plan.shards
                            );
                            *state = next_attempt(plan, index, *attempts, &died, log)?;
                        }
                        Ok(None) => {
                            // Liveness and progress, throttled to ~4 Hz so
                            // the 25ms loop doesn't hammer the filesystem.
                            if last_hb_check.elapsed() >= StdDuration::from_millis(250) {
                                *last_hb_check = Instant::now();
                                // Preferred signal: heartbeat counters.
                                // Polls advance *during* a seed, so a slow
                                // seed still reads as progress; a wedged
                                // worker's counters freeze even though its
                                // heartbeat thread keeps appending.
                                let hb =
                                    plan.shard_heartbeat(index).and_then(|p| last_heartbeat(&p));
                                if let Some(hb) = hb {
                                    let progress = (hb.seeds_done, hb.polls);
                                    if *last_progress != Some(progress) {
                                        let prev = last_progress.map(|(d, _)| d);
                                        *last_progress = Some(progress);
                                        *last_fresh = Instant::now();
                                        if progress_base.is_none() {
                                            *progress_base = Some((hb.seeds_done, Instant::now()));
                                        }
                                        if prev.is_some_and(|d| d != hb.seeds_done) {
                                            log(&progress_line(plan, index, &hb, progress_base));
                                        }
                                    }
                                }
                                // Fallback signal: checkpoint mtime, which
                                // only moves once per finished seed.
                                let mtime = std::fs::metadata(plan.shard_checkpoint(index))
                                    .and_then(|m| m.modified())
                                    .ok();
                                if mtime != *last_mtime {
                                    *last_mtime = mtime;
                                    *last_fresh = Instant::now();
                                }
                            }
                            if let Some(window) = stall {
                                if last_fresh.elapsed() > window {
                                    let _ = child.kill();
                                    let _ = child.wait();
                                    let msg = format!(
                                        "shard {index}/{}: no progress for {}s, presumed \
                                         preempted; killed the straggler",
                                        plan.shards,
                                        window.as_secs()
                                    );
                                    *state = next_attempt(plan, index, *attempts, &msg, log)?;
                                }
                            }
                        }
                    }
                }
            }
        }
        if all_done {
            return Ok(());
        }
        std::thread::sleep(StdDuration::from_millis(25));
    }
}

/// Schedules the next attempt of a dead/stalled shard, or gives up once
/// the retry budget is spent.
fn next_attempt(
    plan: &DispatchPlan,
    index: u64,
    attempts: u32,
    why: &str,
    log: &mut dyn FnMut(&str),
) -> Result<ShardState, String> {
    let attempts = attempts + 1;
    if attempts > plan.retries {
        return Err(format!(
            "{why}; retry budget exhausted ({} attempt(s)) — see {}",
            attempts,
            plan.shard_log(index).display()
        ));
    }
    let backoff = StdDuration::from_millis(plan.backoff_ms << (attempts - 1).min(6));
    log(&format!(
        "{why}; re-dispatching in {}ms (attempt {} of {})",
        backoff.as_millis(),
        attempts + 1,
        plan.retries + 1
    ));
    Ok(ShardState::Pending {
        not_before: Instant::now() + backoff,
        attempts,
    })
}

/// One per-shard progress line, with an ETA once the driver has seen
/// the completion count move.
fn progress_line(
    plan: &DispatchPlan,
    index: u64,
    hb: &super::status::HeartbeatRecord,
    progress_base: &Option<(u64, Instant)>,
) -> String {
    let mut line = format!(
        "shard {index}/{}: {}/{} seeds, {:.1} polls/s",
        plan.shards, hb.seeds_done, hb.seeds_total, hb.polls_per_sec
    );
    if let Some((base_done, base_at)) = progress_base {
        let advanced = hb.seeds_done.saturating_sub(*base_done);
        let elapsed = base_at.elapsed().as_secs_f64();
        let remaining = hb.seeds_total.saturating_sub(hb.seeds_done);
        if advanced > 0 && elapsed > 0.0 && remaining > 0 {
            let eta = remaining as f64 * elapsed / advanced as f64;
            line.push_str(&format!(", ETA ~{}s", eta.round() as u64));
        }
    }
    line
}

/// Forwards one of a worker's output streams into the shard log, each
/// line stamped `[<utc> s<index>/<shards> a<attempt>]` so interleaved
/// attempts (and the two streams) stay attributable.
fn tee_stream<R: Read + Send + 'static>(stream: R, log_path: PathBuf, tag: String) {
    std::thread::spawn(move || {
        let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&log_path)
        else {
            // No log file: drain the pipe anyway so the child never
            // blocks on a full stdout.
            let mut sink = std::io::sink();
            let _ = std::io::copy(&mut BufReader::new(stream), &mut sink);
            return;
        };
        for line in BufReader::new(stream).lines() {
            let Ok(line) = line else { break };
            let stamped = format!("[{} {tag}] {line}\n", utc_timestamp(unix_ms_now()));
            // One write per line: O_APPEND keeps concurrent writers from
            // interleaving mid-line.
            let _ = f.write_all(stamped.as_bytes());
        }
    });
}

/// Spawns one shard worker, its stdout+stderr piped through the
/// timestamping tee into the shard log.
fn spawn_shard(bin: &Path, plan: &DispatchPlan, index: u64, attempt: u32) -> Result<Child, String> {
    let mut child = Command::new(bin)
        .args(plan.shard_args(index))
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .map_err(|e| format!("spawning shard {index} ({}): {e}", bin.display()))?;
    let tag = format!("s{index}/{} a{attempt}", plan.shards);
    if let Some(out) = child.stdout.take() {
        tee_stream(out, plan.shard_log(index), tag.clone());
    }
    if let Some(err) = child.stderr.take() {
        tee_stream(err, plan.shard_log(index), tag);
    }
    Ok(child)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::plan::parse_seed_range;

    fn plan() -> DispatchPlan {
        DispatchPlan {
            scenario: "baseline".into(),
            scale: "quick".into(),
            seeds_arg: "1..10".into(),
            campaign: parse_seed_range("1..10").unwrap(),
            shards: 3,
            threads_per_shard: 2,
            retries: 3,
            backoff_ms: 250,
            stall_secs: Some(600),
            dir: PathBuf::from("results"),
            out: PathBuf::from("results/sweep-baseline.json"),
            fresh: false,
            telemetry: None,
        }
    }

    #[test]
    fn shard_args_reconstruct_the_worker_invocation() {
        let p = plan();
        let args = p.shard_args(2);
        assert_eq!(
            args.join(" "),
            "sweep baseline --scale quick --seeds 1..10 --shard 2/3 --threads 2 \
             --checkpoint results/sweep-baseline-shard-2of3.json"
        );
    }

    #[test]
    fn telemetry_flows_into_worker_args_and_heartbeat_paths() {
        let mut p = plan();
        assert!(p.shard_heartbeat(1).is_none());
        p.telemetry = Some(PathBuf::from("tele"));
        let args = p.shard_args(2).join(" ");
        assert!(args.ends_with("--telemetry tele"), "{args}");
        assert_eq!(
            p.shard_heartbeat(2).unwrap(),
            PathBuf::from("tele/heartbeat-baseline-s2of3.jsonl")
        );
    }

    #[test]
    fn progress_lines_carry_rate_and_eta() {
        use super::super::status::HeartbeatRecord;
        let p = plan();
        let hb = HeartbeatRecord {
            unix_ms: 0,
            seeds_done: 3,
            seeds_total: 4,
            polls: 300,
            polls_per_sec: 12.34,
            vm_rss_kb: 1024,
        };
        // No baseline yet: rate only.
        let line = progress_line(&p, 2, &hb, &None);
        assert_eq!(line, "shard 2/3: 3/4 seeds, 12.3 polls/s");
        // With a baseline observed one second ago having seen 1 seed
        // done, 2 seeds advanced in ~1s leaves ~1s for the last one.
        let base = Some((1, Instant::now() - StdDuration::from_secs(1)));
        let line = progress_line(&p, 2, &hb, &base);
        assert!(line.contains(", ETA ~"), "{line}");
    }

    #[test]
    fn jobfile_lists_every_shard_and_the_merge() {
        let p = plan();
        let text = jobfile(&p, Path::new("/opt/bin/lockss-sim")).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // Header comments, 3 shard lines, 1 merge line.
        let shard_lines: Vec<&&str> = lines.iter().filter(|l| l.contains("--shard")).collect();
        assert_eq!(shard_lines.len(), 3);
        for (i, line) in shard_lines.iter().enumerate() {
            assert!(line.starts_with("/opt/bin/lockss-sim sweep baseline"));
            assert!(line.contains(&format!("--shard {}/3", i + 1)));
        }
        let merge = lines.last().unwrap_or(&"");
        let merge = if merge.is_empty() {
            lines[lines.len() - 2]
        } else {
            merge
        };
        assert!(merge.contains("sweep merge"));
        assert!(merge.contains("--out results/sweep-baseline.json"));
        assert!(merge.contains("sweep-baseline-shard-1of3.json"));
        assert!(merge.contains("sweep-baseline-shard-3of3.json"));
    }

    #[test]
    fn jobfile_rejects_an_oversharded_campaign() {
        let mut p = plan();
        p.shards = 99;
        let e = jobfile(&p, Path::new("x")).unwrap_err();
        assert!(e.contains("empty shards"), "got: {e}");
    }
}

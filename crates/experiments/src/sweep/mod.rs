//! The distributed sweep fabric: deterministic Monte Carlo campaigns
//! sharded across worker threads, processes, and hosts.
//!
//! A *sweep* runs one registered scenario across a seed range and merges
//! the per-seed summaries into one report. The fabric layers four modules
//! on top of that idea:
//!
//! - [`plan`] — the report/checkpoint model and the in-process
//!   orchestrator: workers claim seeds off an atomic cursor, slot results
//!   by seed index, and the merge reduces in ascending seed order, so the
//!   rendered report is byte-identical for `--threads 1` and
//!   `--threads 8`. Checkpoints are rewritten atomically (temp file,
//!   fsync, rename, directory fsync) after every finished seed, and
//!   summaries round-trip through JSON exactly (shortest-repr floats
//!   parse back to the same bits), so a resumed sweep finishes with the
//!   same bytes an uninterrupted one would have produced.
//! - [`shard`] — the wire topology: `--shard i/N` runs the i-th of N
//!   disjoint contiguous slices of the campaign's seed list and tags the
//!   checkpoint with the full topology (index, count, campaign seeds), so
//!   any process — on any host — holding the same binary and the same
//!   seed range computes exactly its own slice and nothing else.
//! - [`merge`] — reassembly: `sweep merge <files...>` hard-fails on any
//!   topology violation (mixed scenarios/scales, a foreign format
//!   version, duplicate or missing shards, overlapping or uncovered seed
//!   ranges, an unfinished shard) and otherwise emits a report
//!   byte-identical to a single-process run of the whole campaign.
//! - [`dispatch`] — the driver: `sweep dispatch --shards N` fans the
//!   shards out over subprocesses with per-shard retry-with-backoff,
//!   preemption detection via checkpoint freshness (a worker whose
//!   checkpoint stops advancing is presumed preempted), straggler
//!   re-dispatch, and a final validated merge. `--jobfile` writes the
//!   per-shard command lines instead, for fanning out over hosts.
//!
//! Fault injection for the test suite (and CI's kill-one-shard job) is a
//! set of `LOCKSS_SWEEP_CRASH_*` environment hooks in [`shard`] that
//! abort a worker mid-checkpoint-write — the torn temp file they leave
//! behind is exactly what a real `kill -9` can produce.
//!
//! The checkpoint/report format is a small fixed-schema JSON document
//! (format tag [`plan::FORMAT`]), parsed by the workspace's one
//! self-hosted recursive-descent reader ([`lockss_sim::json`],
//! re-exported here as [`json`]; the offline dependency policy bans
//! serde).

pub mod dispatch;
pub mod merge;
pub mod plan;
pub mod shard;
pub mod status;

pub use dispatch::{dispatch, jobfile, DispatchPlan};
pub use merge::{merge_files, merge_reports};
pub use plan::{
    load_checkpoint, parse_seed_range, run_sweep, run_sweep_observed, run_sweep_shard,
    run_sweep_shard_observed, summary_from_json, summary_to_json, write_checkpoint, SweepReport,
    FORMAT,
};
pub use shard::{parse_shard_arg, partition, CrashHook, ShardTag};
pub use status::{campaign_status, last_heartbeat, render_status, HeartbeatRecord, ShardStatus};

pub use lockss_sim::json;

//! Shard topology: how a campaign's seed list is sliced across workers,
//! and the fault-injection hooks the test suite uses to kill workers at
//! the worst possible moment.
//!
//! The wire rule is deliberately boring: sort and dedup the campaign
//! seeds, split them into `count` contiguous slices whose lengths differ
//! by at most one (the first `len % count` shards get the extra seed),
//! and give shard `i` (1-based) the i-th slice. Every process that holds
//! the same campaign seed list computes the same partition — no
//! coordinator, no assignment table, nothing to desynchronize across
//! hosts.

use std::path::Path;

use lockss_sim::json;

/// The topology tag a shard checkpoint carries: which slice this is
/// (`index` of `count`, 1-based) and the *full* campaign seed list, so
/// `sweep merge` can prove the reassembled shards cover the campaign
/// exactly — no seed missing, none computed twice.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardTag {
    /// 1-based shard index.
    pub index: u64,
    /// Total shard count.
    pub count: u64,
    /// Every seed of the whole campaign, ascending and deduped.
    pub campaign: Vec<u64>,
}

impl ShardTag {
    /// Builds a validated tag: `1 <= index <= count`, and every shard
    /// must receive at least one seed.
    pub fn new(index: u64, count: u64, mut campaign: Vec<u64>) -> Result<ShardTag, String> {
        campaign.sort_unstable();
        campaign.dedup();
        if count == 0 {
            return Err("shard count must be at least 1".into());
        }
        if index == 0 || index > count {
            return Err(format!(
                "shard index {index} is outside 1..={count} (indices are 1-based)"
            ));
        }
        if (count as usize) > campaign.len() {
            return Err(format!(
                "{count} shards over {} seed(s) would leave empty shards; \
                 use at most {} shard(s)",
                campaign.len(),
                campaign.len()
            ));
        }
        Ok(ShardTag {
            index,
            count,
            campaign,
        })
    }

    /// This shard's own seed slice.
    pub fn seeds(&self) -> Vec<u64> {
        partition(&self.campaign, self.count)[(self.index - 1) as usize].clone()
    }

    /// The `i/N` display form.
    pub fn label(&self) -> String {
        format!("{}/{}", self.index, self.count)
    }

    /// Renders the tag in the checkpoint's canonical field order.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"index\": {}, \"count\": {}, \"campaign\": [{}]}}",
            self.index,
            self.count,
            json::u64_list(&self.campaign)
        )
    }

    /// Parses a tag written by [`ShardTag::to_json`], re-validating the
    /// topology (a hand-edited index outside `1..=count` is rejected
    /// here, before merge logic ever sees it).
    pub fn from_json(v: &json::Value) -> Result<ShardTag, String> {
        let obj = v.as_object("shard")?;
        let index = json::get(obj, "index")?.as_u64("shard.index")?;
        let count = json::get(obj, "count")?.as_u64("shard.count")?;
        let campaign = json::get(obj, "campaign")?.as_u64_array("shard.campaign")?;
        ShardTag::new(index, count, campaign)
    }
}

/// Splits `seeds` (assumed sorted and deduped) into `count` contiguous
/// slices whose lengths differ by at most one — the canonical partition
/// every shard, on every host, derives independently.
pub fn partition(seeds: &[u64], count: u64) -> Vec<Vec<u64>> {
    let count = (count as usize).max(1);
    let base = seeds.len() / count;
    let extra = seeds.len() % count;
    let mut out = Vec::with_capacity(count);
    let mut at = 0;
    for i in 0..count {
        let take = base + usize::from(i < extra);
        out.push(seeds[at..at + take].to_vec());
        at += take;
    }
    out
}

/// Parses a `--shard i/N` argument into its `(index, count)` pair.
pub fn parse_shard_arg(arg: &str) -> Result<(u64, u64), String> {
    let (i, n) = arg
        .split_once('/')
        .ok_or_else(|| format!("'{arg}' is not of the form i/N (e.g. --shard 2/8)"))?;
    let parse = |s: &str, what: &str| {
        s.trim()
            .parse::<u64>()
            .map_err(|_| format!("shard {what} '{s}' is not a number"))
    };
    Ok((parse(i, "index")?, parse(n, "count")?))
}

// ---------------------------------------------------------------------
// Fault injection.
// ---------------------------------------------------------------------

/// Test-only crash injection, armed via environment variables; CI's
/// kill-one-shard job and the `sweep_fabric` test harness use it to die
/// at the most damaging instant — mid-checkpoint-write, lock held, temp
/// file torn:
///
/// - `LOCKSS_SWEEP_CRASH_AFTER=k` — abort as this process completes its
///   k-th seed (counting only seeds run by this process, not resumed
///   ones), *instead of* writing that checkpoint: a truncated temp file
///   is written and the process aborts before the rename.
/// - `LOCKSS_SWEEP_CRASH_SHARD=i` — only fire when running shard index
///   `i` (unset: fire in any sweep worker).
/// - `LOCKSS_SWEEP_CRASH_ONCE=path` — fire only if `path` does not exist
///   yet, creating it just before the abort; a retried or re-dispatched
///   worker then runs to completion, which is how the tests prove
///   resume-after-crash converges.
///
/// Unset variables cost one `env::var` lookup at sweep start and nothing
/// per seed.
#[derive(Clone, Debug)]
pub struct CrashHook {
    after: usize,
    once_marker: Option<String>,
}

impl CrashHook {
    /// Reads the hook from the environment. `shard_index` is the running
    /// worker's shard index (`None` for an unsharded sweep); a hook
    /// scoped to a different shard disarms entirely.
    pub fn from_env(shard_index: Option<u64>) -> Option<CrashHook> {
        let after: usize = std::env::var("LOCKSS_SWEEP_CRASH_AFTER")
            .ok()?
            .parse()
            .ok()?;
        if let Ok(only) = std::env::var("LOCKSS_SWEEP_CRASH_SHARD") {
            if only.parse::<u64>().ok() != shard_index {
                return None;
            }
        }
        Some(CrashHook {
            after,
            once_marker: std::env::var("LOCKSS_SWEEP_CRASH_ONCE").ok(),
        })
    }

    /// Aborts the process if `done` (seeds completed by this process) has
    /// reached the armed threshold: writes a torn temp file next to
    /// `checkpoint` — half of `content`, never renamed — creates the
    /// once-marker, and dies without unwinding, exactly like `kill -9`
    /// landing mid-checkpoint-write.
    pub fn maybe_crash(&self, done: usize, checkpoint: Option<&Path>, content: &str) {
        if done != self.after {
            return;
        }
        if let Some(marker) = &self.once_marker {
            if Path::new(marker).exists() {
                return;
            }
            let _ = std::fs::write(marker, "crashed\n");
        }
        if let Some(path) = checkpoint {
            let tmp = path.with_extension("json.tmp");
            let _ = std::fs::write(&tmp, &content.as_bytes()[..content.len() / 2]);
        }
        eprintln!("LOCKSS_SWEEP_CRASH_AFTER: injected crash after {done} seed(s)");
        std::process::abort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_balanced_and_covers() {
        let seeds: Vec<u64> = (10..=30).collect(); // 21 seeds
        for count in 1..=16u64 {
            if count as usize > seeds.len() {
                break;
            }
            let parts = partition(&seeds, count);
            assert_eq!(parts.len(), count as usize);
            let flat: Vec<u64> = parts.iter().flatten().copied().collect();
            assert_eq!(flat, seeds, "concatenation reproduces the campaign");
            let min = parts.iter().map(Vec::len).min().unwrap();
            let max = parts.iter().map(Vec::len).max().unwrap();
            assert!(max - min <= 1, "slice lengths differ by at most one");
        }
    }

    #[test]
    fn shard_tag_validates_topology() {
        assert!(ShardTag::new(1, 1, vec![7]).is_ok());
        assert!(ShardTag::new(0, 3, vec![1, 2, 3]).is_err(), "1-based");
        assert!(ShardTag::new(4, 3, vec![1, 2, 3]).is_err(), "index > count");
        assert!(ShardTag::new(1, 0, vec![1]).is_err(), "zero shards");
        let e = ShardTag::new(1, 5, vec![1, 2, 3]).unwrap_err();
        assert!(e.contains("empty shards"), "got: {e}");
        // The campaign list is normalized exactly like SweepReport seeds.
        let tag = ShardTag::new(2, 2, vec![3, 1, 2, 1]).unwrap();
        assert_eq!(tag.campaign, vec![1, 2, 3]);
        assert_eq!(tag.seeds(), vec![3], "second of two shards over 3 seeds");
    }

    #[test]
    fn shard_tag_roundtrips() {
        let tag = ShardTag::new(3, 4, (1..=10).collect()).unwrap();
        let v = json::parse(&tag.to_json()).expect("valid json");
        assert_eq!(ShardTag::from_json(&v).expect("parses"), tag);
        // A hand-edited out-of-range index fails at parse time.
        let doctored = tag.to_json().replace("\"index\": 3", "\"index\": 9");
        let v = json::parse(&doctored).unwrap();
        assert!(ShardTag::from_json(&v).is_err());
    }

    #[test]
    fn shard_arg_parsing() {
        assert_eq!(parse_shard_arg("2/8").unwrap(), (2, 8));
        assert!(parse_shard_arg("2").is_err());
        assert!(parse_shard_arg("a/b").is_err());
    }

    #[test]
    fn slices_reassemble_any_topology() {
        // Every (index, count) pair over an uneven range: the union of
        // ShardTag::seeds() is the campaign, with no overlap.
        let campaign: Vec<u64> = (100..=137).collect();
        for count in 1..=16u64 {
            let mut union = Vec::new();
            for index in 1..=count {
                union.extend(
                    ShardTag::new(index, count, campaign.clone())
                        .unwrap()
                        .seeds(),
                );
            }
            union.sort_unstable();
            let before = union.len();
            union.dedup();
            assert_eq!(union.len(), before, "{count}-way slices overlap");
            assert_eq!(union, campaign, "{count}-way slices miss seeds");
        }
    }
}

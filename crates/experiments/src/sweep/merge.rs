//! Shard reassembly: `sweep merge <files...>`.
//!
//! Merging is unforgiving by design — a Monte Carlo campaign whose
//! shards silently overlap (a seed averaged twice) or leave a gap (a
//! seed never run) produces a *plausible-looking wrong number*, which is
//! the worst failure mode a statistics pipeline can have. Every
//! topology violation is therefore a hard error with a diagnostic that
//! names the offending file and says what to do about it; the merged
//! report is emitted only when the shards provably cover the campaign
//! exactly once, and it is then byte-identical to what a single-process
//! run of the whole seed range would have written.

use super::plan::SweepReport;

/// Reads, parses, and merges shard checkpoint files. Any unreadable,
/// truncated, foreign-format, or topology-violating input is a hard
/// error carrying the file name.
pub fn merge_files(paths: &[std::path::PathBuf]) -> Result<SweepReport, String> {
    if paths.is_empty() {
        return Err("nothing to merge: pass at least one shard checkpoint file".into());
    }
    let mut shards = Vec::with_capacity(paths.len());
    for path in paths {
        let label = path.display().to_string();
        let text = std::fs::read_to_string(path).map_err(|e| format!("{label}: {e}"))?;
        let report = SweepReport::from_json(&text)
            .map_err(|e| format!("{label}: {e} (truncated or torn write?)"))?;
        shards.push((label, report));
    }
    merge_reports(&shards)
}

/// Merges already-parsed shard reports (each paired with a display label,
/// normally its file name). See [`merge_files`] for the contract.
pub fn merge_reports(shards: &[(String, SweepReport)]) -> Result<SweepReport, String> {
    let (first_label, first) = &shards[0];
    let reference = first.shard.as_ref().ok_or_else(|| {
        format!(
            "{first_label}: is a single-process report, not a shard checkpoint; \
             merge reassembles files written with --shard i/N"
        )
    })?;

    // Pass 1: every file agrees on what campaign it belongs to.
    for (label, report) in shards {
        let tag = report.shard.as_ref().ok_or_else(|| {
            format!(
                "{label}: is a single-process report, not a shard checkpoint; \
                 merge reassembles files written with --shard i/N"
            )
        })?;
        if report.scenario != first.scenario {
            return Err(format!(
                "{label}: scenario '{}' does not match '{}' from {first_label}; \
                 shards of different campaigns cannot be merged",
                report.scenario, first.scenario
            ));
        }
        if report.scale != first.scale {
            return Err(format!(
                "{label}: scale '{}' does not match '{}' from {first_label}; \
                 re-run the shard at the campaign's scale",
                report.scale, first.scale
            ));
        }
        if tag.count != reference.count {
            return Err(format!(
                "{label}: {}-way shard topology does not match the {}-way topology \
                 of {first_label}",
                tag.count, reference.count
            ));
        }
        if tag.campaign != reference.campaign {
            return Err(format!(
                "{label}: campaign seed list ({} seed(s)) differs from {first_label} \
                 ({} seed(s)); the shards were cut from different --seeds ranges",
                tag.campaign.len(),
                reference.campaign.len()
            ));
        }
    }

    // Pass 2: exactly one submission per shard index, none missing.
    let count = reference.count;
    let mut seen: Vec<Option<&String>> = vec![None; count as usize];
    for (label, report) in shards {
        let tag = report.shard.as_ref().expect("checked in pass 1");
        let slot = &mut seen[(tag.index - 1) as usize];
        if let Some(prior) = slot {
            return Err(format!(
                "shard {} submitted twice: {prior} and {label}; \
                 drop one (identical shards recompute the same bytes, but a stale \
                 duplicate would silently shadow a fresh one)",
                tag.label()
            ));
        }
        *slot = Some(label);
    }
    let missing: Vec<String> = seen
        .iter()
        .enumerate()
        .filter(|(_, s)| s.is_none())
        .map(|(i, _)| (i + 1).to_string())
        .collect();
    if !missing.is_empty() {
        return Err(format!(
            "missing shard(s) {} of {count}; merge needs the complete topology \
             (run the missing shards or re-dispatch)",
            missing.join(", ")
        ));
    }

    // Pass 3: the shard seed slices tile the campaign exactly once.
    let mut owner: Vec<(u64, &String)> = Vec::with_capacity(reference.campaign.len());
    for (label, report) in shards {
        for &seed in &report.seeds {
            owner.push((seed, label));
        }
    }
    owner.sort_unstable_by_key(|a| a.0);
    for pair in owner.windows(2) {
        if pair[0].0 == pair[1].0 {
            return Err(format!(
                "seed {} appears in both {} and {}: shard seed ranges overlap, \
                 so its summary would be averaged twice",
                pair[0].0, pair[0].1, pair[1].1
            ));
        }
    }
    let covered: Vec<u64> = owner.iter().map(|(s, _)| *s).collect();
    if covered != reference.campaign {
        let missing: Vec<String> = reference
            .campaign
            .iter()
            .filter(|s| covered.binary_search(s).is_err())
            .take(8)
            .map(u64::to_string)
            .collect();
        return Err(format!(
            "the shards do not cover the campaign: seed(s) {}{} are in no shard",
            missing.join(", "),
            if missing.len() == 8 { ", ..." } else { "" }
        ));
    }

    // Pass 4: every shard actually finished its slice.
    for (label, report) in shards {
        if !report.is_complete() {
            let pending: Vec<String> = report
                .seeds
                .iter()
                .filter(|s| !report.completed.iter().any(|(done, _)| done == *s))
                .take(8)
                .map(u64::to_string)
                .collect();
            let tag = report.shard.as_ref().expect("checked in pass 1");
            return Err(format!(
                "{label}: shard {} is incomplete ({} of {} seed(s) finished; \
                 pending: {}); resume it with --shard {} --checkpoint {label}",
                tag.label(),
                report.completed.len(),
                report.seeds.len(),
                pending.join(", "),
                tag.label(),
            ));
        }
    }

    // Reduce in global seed order. The completed summaries round-tripped
    // through JSON bit-exactly, so this report — including its merged
    // mean — renders the same bytes a single-process run would have.
    let mut merged = SweepReport::new(&first.scenario, &first.scale, reference.campaign.clone());
    let mut rows: Vec<(u64, lockss_metrics::Summary)> = shards
        .iter()
        .flat_map(|(_, r)| r.completed.iter().cloned())
        .collect();
    rows.sort_unstable_by_key(|(seed, _)| *seed);
    merged.completed = rows;
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::super::plan::summary_from_json;
    use super::super::shard::ShardTag;
    use super::*;
    use lockss_metrics::Summary;
    use lockss_sim::json;
    use lockss_sim::{Duration, SimRng};

    /// A synthetic, seed-determined summary with "interesting" float
    /// bits (non-terminating binary fractions) so byte-identity failures
    /// would show.
    fn summary(seed: u64) -> Summary {
        Summary {
            access_failure_probability: 1.0 / (seed as f64 * 7.0 + 0.3),
            mean_time_between_successes: Some(Duration::from_millis(seed * 1000 + 17)),
            gap_p50: (!seed.is_multiple_of(3)).then(|| Duration::from_millis(seed * 500)),
            gap_p90: Some(Duration::from_millis(seed * 900)),
            successful_polls: seed * 13 % 101,
            failed_polls: seed % 7,
            alarms: seed % 2,
            loyal_effort_secs: 0.1 * seed as f64,
            adversary_effort_secs: 1.0 / (seed as f64 + 0.7),
        }
    }

    fn campaign_report(seeds: &[u64]) -> SweepReport {
        let mut r = SweepReport::new("synthetic", "quick", seeds.to_vec());
        for &s in seeds {
            r.record(s, summary(s));
        }
        r
    }

    fn shard_reports(seeds: &[u64], count: u64) -> Vec<(String, SweepReport)> {
        (1..=count)
            .map(|i| {
                let tag = ShardTag::new(i, count, seeds.to_vec()).unwrap();
                let mut r = SweepReport::new_shard("synthetic", "quick", tag);
                for s in r.seeds.clone() {
                    r.record(s, summary(s));
                }
                (format!("shard-{i}.json"), r)
            })
            .collect()
    }

    /// The satellite property test: random topologies (N ∈ 1..16, uneven
    /// ranges, shuffled merge input) always merge to the exact bytes of
    /// the unsharded reduction, and merge is order-invariant.
    #[test]
    fn random_topologies_merge_to_the_unsharded_bytes() {
        let mut rng = SimRng::seed_from_u64(0x5eed_fab0);
        for _ in 0..200 {
            let start = 1 + rng.below(1000) as u64;
            let len = 1 + rng.below(40) as u64;
            let seeds: Vec<u64> = (start..start + len).collect();
            let count = 1 + rng.below(seeds.len().min(16)) as u64;
            let expected = campaign_report(&seeds).to_json();

            let mut shards = shard_reports(&seeds, count);
            // Shuffle the merge input: file order must be irrelevant.
            rng.shuffle(&mut shards);
            let merged = merge_reports(&shards).expect("valid topology merges");
            assert_eq!(
                merged.to_json(),
                expected,
                "{count}-way shuffle of {len} seeds must equal the unsharded reduction"
            );
        }
    }

    #[test]
    fn merge_round_trips_through_checkpoint_bytes() {
        // Serialize each shard to JSON and back before merging — the path
        // real files take — and still demand byte identity.
        let seeds: Vec<u64> = (5..=27).collect();
        let expected = campaign_report(&seeds).to_json();
        let shards: Vec<(String, SweepReport)> = shard_reports(&seeds, 4)
            .into_iter()
            .map(|(label, r)| {
                let reparsed = SweepReport::from_json(&r.to_json()).expect("round-trips");
                (label, reparsed)
            })
            .collect();
        assert_eq!(merge_reports(&shards).unwrap().to_json(), expected);
    }

    #[test]
    fn duplicate_shard_is_rejected() {
        let seeds: Vec<u64> = (1..=10).collect();
        let mut shards = shard_reports(&seeds, 3);
        shards[2] = shards[0].clone();
        let e = merge_reports(&shards).unwrap_err();
        assert!(e.contains("submitted twice"), "got: {e}");
    }

    #[test]
    fn missing_shard_is_rejected() {
        let seeds: Vec<u64> = (1..=10).collect();
        let mut shards = shard_reports(&seeds, 3);
        shards.remove(1);
        let e = merge_reports(&shards).unwrap_err();
        assert!(e.contains("missing shard(s) 2 of 3"), "got: {e}");
    }

    #[test]
    fn overlapping_seed_ranges_are_rejected() {
        let seeds: Vec<u64> = (1..=10).collect();
        let mut shards = shard_reports(&seeds, 2);
        // Hand-doctor shard 2's seed list to re-claim a shard-1 seed.
        shards[1].1.seeds.insert(0, 3);
        shards[1].1.record(3, summary(3));
        let e = merge_reports(&shards).unwrap_err();
        assert!(e.contains("overlap"), "got: {e}");
        assert!(e.contains("seed 3"), "got: {e}");
    }

    #[test]
    fn uncovered_seeds_are_rejected() {
        let seeds: Vec<u64> = (1..=10).collect();
        let mut shards = shard_reports(&seeds, 2);
        // Shard 2 claims (and ran) fewer seeds than its slice.
        shards[1].1.seeds.pop();
        shards[1].1.completed.pop();
        let e = merge_reports(&shards).unwrap_err();
        assert!(e.contains("do not cover the campaign"), "got: {e}");
    }

    #[test]
    fn mismatched_tags_are_rejected() {
        let seeds: Vec<u64> = (1..=10).collect();
        let base = shard_reports(&seeds, 2);

        let mut other = base.clone();
        other[1].1.scenario = "other-scenario".into();
        let e = merge_reports(&other).unwrap_err();
        assert!(e.contains("scenario 'other-scenario'"), "got: {e}");

        let mut other = base.clone();
        other[1].1.scale = "paper".into();
        let e = merge_reports(&other).unwrap_err();
        assert!(e.contains("scale 'paper'"), "got: {e}");

        let mut other = base.clone();
        other[1].1.shard.as_mut().unwrap().campaign.push(99);
        let e = merge_reports(&other).unwrap_err();
        assert!(e.contains("campaign seed list"), "got: {e}");

        let mut other = base;
        other[1].1.shard = None;
        let e = merge_reports(&other).unwrap_err();
        assert!(e.contains("single-process report"), "got: {e}");
    }

    #[test]
    fn incomplete_shard_is_rejected_with_resume_hint() {
        let seeds: Vec<u64> = (1..=10).collect();
        let mut shards = shard_reports(&seeds, 2);
        shards[1].1.completed.pop();
        let e = merge_reports(&shards).unwrap_err();
        assert!(e.contains("incomplete"), "got: {e}");
        assert!(e.contains("resume it with --shard 2/2"), "got: {e}");
    }

    #[test]
    fn merge_files_reports_unreadable_and_torn_input() {
        let dir = std::env::temp_dir().join(format!("lockss-merge-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = shard_reports(&(1..=4).collect::<Vec<u64>>(), 2);

        let a = dir.join("a.json");
        std::fs::write(&a, good[0].1.to_json()).unwrap();
        let torn = dir.join("torn.json");
        let full = good[1].1.to_json();
        std::fs::write(&torn, &full[..full.len() / 2]).unwrap();
        let e = merge_files(&[a.clone(), torn]).unwrap_err();
        assert!(e.contains("torn.json"), "got: {e}");
        assert!(e.contains("truncated or torn write?"), "got: {e}");

        let absent = dir.join("absent.json");
        let e = merge_files(&[a, absent]).unwrap_err();
        assert!(e.contains("absent.json"), "got: {e}");
        assert!(merge_files(&[]).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_round_trip_is_bit_exact() {
        // The merge's byte-identity promise rests on this: a summary's
        // JSON parses back to the same float bits.
        for seed in 1..50u64 {
            let s = summary(seed);
            let text = super::super::plan::summary_to_json(&s);
            let v = json::parse(&text).unwrap();
            assert_eq!(summary_from_json(&v).unwrap(), s);
        }
    }
}

//! Sweep planning: the report/checkpoint model and the in-process
//! orchestrator.
//!
//! Three properties make sweeps safe to parallelize and interrupt at
//! production scale:
//!
//! - **thread-count invariance** — workers claim seeds off an atomic
//!   cursor but slot results by seed index, and the merge reduces in seed
//!   order, so the rendered report is byte-identical for `--threads 1`
//!   and `--threads 8`;
//! - **resumable checkpoints** — with a checkpoint path, the partial
//!   report is rewritten (atomically and durably, see
//!   [`write_checkpoint`]) as each seed completes; rerunning the same
//!   sweep loads it, skips the already-finished seeds, and produces a
//!   final report byte-identical to an uninterrupted run (summaries
//!   round-trip exactly: shortest-repr float formatting parses back to
//!   the same bits);
//! - **streaming memory** — each seed's run keeps fixed-size metric
//!   sketches (see `lockss-metrics::streaming`), so sweeping a 10k-peer
//!   world costs one world at a time per worker, not a buffered history.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use lockss_metrics::Summary;
use lockss_obs::{current_rss_kb, unix_ms_now, Heartbeat, Profiler, Span};
use lockss_sim::json;
use lockss_sim::Duration;

use lockss_trace::TraceMeta;

use super::shard::{CrashHook, ShardTag};
use crate::obs::{heartbeat_path, SweepObs};
use crate::runner::{run_once, run_once_observed, run_once_recorded_observed, Instruments};
use crate::scenario::Scenario;

/// The checkpoint/report format tag. Any file carrying a different tag
/// was written by a different grammar version and is rejected by both
/// [`SweepReport::from_json`] and `sweep merge`.
pub const FORMAT: &str = "lockss-sweep-v1";

// ---------------------------------------------------------------------
// Report model.
// ---------------------------------------------------------------------

/// The (possibly partial) outcome of one sweep — a whole campaign, or
/// one shard of it when `shard` is set.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepReport {
    /// Registered scenario name.
    pub scenario: String,
    /// Scale label the scenario was built at.
    pub scale: String,
    /// The shard topology tag, when this report covers one shard of a
    /// larger campaign rather than the whole seed range.
    pub shard: Option<ShardTag>,
    /// Every seed this report was asked to run, ascending.
    pub seeds: Vec<u64>,
    /// Finished seeds with their summaries, ascending by seed.
    pub completed: Vec<(u64, Summary)>,
}

impl SweepReport {
    /// An empty report for a planned single-process sweep.
    pub fn new(scenario: &str, scale: &str, mut seeds: Vec<u64>) -> SweepReport {
        seeds.sort_unstable();
        seeds.dedup();
        SweepReport {
            scenario: scenario.to_string(),
            scale: scale.to_string(),
            shard: None,
            seeds,
            completed: Vec::new(),
        }
    }

    /// An empty report for one shard of a campaign: the seed list is the
    /// shard's own slice, computed from the topology tag.
    pub fn new_shard(scenario: &str, scale: &str, shard: ShardTag) -> SweepReport {
        let seeds = shard.seeds();
        SweepReport {
            scenario: scenario.to_string(),
            scale: scale.to_string(),
            shard: Some(shard),
            seeds,
            completed: Vec::new(),
        }
    }

    /// True once every requested seed has a summary.
    pub fn is_complete(&self) -> bool {
        self.completed.len() == self.seeds.len()
    }

    /// The mean summary over completed seeds, reduced in ascending seed
    /// order (float reductions are order-sensitive; a fixed order is what
    /// keeps the merge byte-deterministic). `None` while nothing finished.
    pub fn merged(&self) -> Option<Summary> {
        if self.completed.is_empty() {
            return None;
        }
        let runs: Vec<Summary> = self.completed.iter().map(|(_, s)| s.clone()).collect();
        Some(Summary::mean_of(&runs))
    }

    /// Records one finished seed, keeping `completed` sorted by seed.
    /// Re-recording a seed replaces its summary.
    pub fn record(&mut self, seed: u64, summary: Summary) {
        match self.completed.binary_search_by_key(&seed, |(s, _)| *s) {
            Ok(i) => self.completed[i].1 = summary,
            Err(i) => self.completed.insert(i, (seed, summary)),
        }
    }

    /// The summaries already completed, for resuming: seeds outside the
    /// requested set are dropped (the checkpoint belonged to a different
    /// seed range).
    fn restrict_to(&mut self, seeds: &[u64]) {
        self.completed.retain(|(s, _)| seeds.contains(s));
        self.seeds = seeds.to_vec();
    }

    // -- serialization ------------------------------------------------

    /// Renders the canonical JSON form: fixed field order, ascending
    /// seeds, shortest-round-trip floats. Byte-deterministic for a given
    /// logical content — which is what lets `sweep merge` promise a
    /// merged report byte-identical to a single-process run.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .completed
            .iter()
            .map(|(seed, s)| {
                format!(
                    "    {{\"seed\": {seed}, \"summary\": {}}}",
                    summary_to_json(s)
                )
            })
            .collect();
        let merged = self
            .merged()
            .map(|m| summary_to_json(&m))
            .unwrap_or_else(|| "null".to_string());
        let shard = self
            .shard
            .as_ref()
            .map(ShardTag::to_json)
            .unwrap_or_else(|| "null".to_string());
        format!(
            "{{\n  \"format\": \"{FORMAT}\",\n  \"sweep\": \"{}\",\n  \"scale\": \"{}\",\n  \
             \"shard\": {shard},\n  \"seeds\": [{}],\n  \"completed\": [\n{}\n  ],\n  \
             \"merged\": {merged}\n}}\n",
            self.scenario,
            self.scale,
            json::u64_list(&self.seeds),
            rows.join(",\n"),
        )
    }

    /// Parses a report previously written by [`SweepReport::to_json`].
    /// A missing or foreign `format` tag is a hard error: the file was
    /// written by a different grammar version and its summaries cannot be
    /// trusted to round-trip.
    pub fn from_json(text: &str) -> Result<SweepReport, String> {
        let value = json::parse(text).map_err(|e| format!("not a sweep checkpoint: {e}"))?;
        let obj = value.as_object("report")?;
        match json::get_opt(obj, "format") {
            None => {
                return Err(format!(
                    "missing 'format' tag (a pre-fabric checkpoint or a foreign file); \
                     this binary reads '{FORMAT}'"
                ))
            }
            Some(v) => {
                let found = v.as_str("format")?;
                if found != FORMAT {
                    return Err(format!(
                        "checkpoint format '{found}' was written by a different grammar \
                         version; this binary reads '{FORMAT}'"
                    ));
                }
            }
        }
        let scenario = json::get(obj, "sweep")?.as_str("sweep")?.to_string();
        let scale = json::get(obj, "scale")?.as_str("scale")?.to_string();
        let seeds = json::get(obj, "seeds")?.as_u64_array("seeds")?;
        let mut report = SweepReport::new(&scenario, &scale, seeds);
        report.shard = match json::get_opt(obj, "shard") {
            Some(v) => Some(ShardTag::from_json(v)?),
            None => None,
        };
        for row in json::get(obj, "completed")?.as_array("completed")? {
            let row = row.as_object("completed row")?;
            let seed = json::get(row, "seed")?.as_u64("seed")?;
            let summary = summary_from_json(json::get(row, "summary")?)?;
            report.record(seed, summary);
        }
        Ok(report)
    }
}

/// One summary in the canonical JSON field order shared with the
/// `lockss-sim` scenario reports.
pub fn summary_to_json(s: &Summary) -> String {
    fn f(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        }
    }
    fn ms(d: Option<Duration>) -> String {
        d.map(|d| d.as_millis().to_string())
            .unwrap_or_else(|| "null".to_string())
    }
    format!(
        "{{\"access_failure_probability\": {}, \"mean_gap_ms\": {}, \
         \"gap_p50_ms\": {}, \"gap_p90_ms\": {}, \
         \"successful_polls\": {}, \"failed_polls\": {}, \"alarms\": {}, \
         \"loyal_effort_secs\": {}, \"adversary_effort_secs\": {}}}",
        f(s.access_failure_probability),
        ms(s.mean_time_between_successes),
        ms(s.gap_p50),
        ms(s.gap_p90),
        s.successful_polls,
        s.failed_polls,
        s.alarms,
        f(s.loyal_effort_secs),
        f(s.adversary_effort_secs),
    )
}

/// Parses a summary written by [`summary_to_json`]. Floats round-trip
/// exactly (shortest-repr formatting), which is what makes
/// resume-equals-uninterrupted a byte-level guarantee.
pub fn summary_from_json(v: &json::Value) -> Result<Summary, String> {
    let obj = v.as_object("summary")?;
    let opt_ms = |key: &str| -> Result<Option<Duration>, String> {
        let v = json::get(obj, key)?;
        if v.is_null() {
            Ok(None)
        } else {
            Ok(Some(Duration::from_millis(v.as_u64(key)?)))
        }
    };
    Ok(Summary {
        access_failure_probability: json::get(obj, "access_failure_probability")?
            .as_f64("access_failure_probability")?,
        mean_time_between_successes: opt_ms("mean_gap_ms")?,
        gap_p50: opt_ms("gap_p50_ms")?,
        gap_p90: opt_ms("gap_p90_ms")?,
        successful_polls: json::get(obj, "successful_polls")?.as_u64("successful_polls")?,
        failed_polls: json::get(obj, "failed_polls")?.as_u64("failed_polls")?,
        alarms: json::get(obj, "alarms")?.as_u64("alarms")?,
        loyal_effort_secs: json::get(obj, "loyal_effort_secs")?.as_f64("loyal_effort_secs")?,
        adversary_effort_secs: json::get(obj, "adversary_effort_secs")?
            .as_f64("adversary_effort_secs")?,
    })
}

// ---------------------------------------------------------------------
// Orchestration.
// ---------------------------------------------------------------------

/// Parses a `--seeds` argument: either `A..B` (inclusive) or a bare count
/// `K` meaning `1..=K`.
pub fn parse_seed_range(arg: &str) -> Result<Vec<u64>, String> {
    let parse = |s: &str| {
        s.trim()
            .parse::<u64>()
            .map_err(|_| format!("'{s}' is not a seed number"))
    };
    let seeds = match arg.split_once("..") {
        Some((a, b)) => {
            let (a, b) = (parse(a)?, parse(b)?);
            if a > b {
                return Err(format!("empty seed range {a}..{b}"));
            }
            (a..=b).collect()
        }
        None => {
            let k = parse(arg)?;
            if k == 0 {
                return Err("need at least one seed".into());
            }
            (1..=k).collect()
        }
    };
    Ok(seeds)
}

/// Loads the resumable state from `checkpoint`, if it exists and matches
/// the planned sweep (scenario, scale, and — for shard runs — the exact
/// shard topology); a mismatched, truncated, or otherwise unreadable file
/// is ignored rather than trusted, so a torn write surfaced by a crash
/// costs a recompute, never a corrupt resume.
pub fn load_checkpoint(
    checkpoint: &Path,
    scenario: &str,
    scale: &str,
    shard: Option<&ShardTag>,
) -> Option<SweepReport> {
    let text = std::fs::read_to_string(checkpoint).ok()?;
    let report = SweepReport::from_json(&text).ok()?;
    (report.scenario == scenario && report.scale == scale && report.shard.as_ref() == shard)
        .then_some(report)
}

/// Durable atomic checkpoint write: temp file in the same directory,
/// fsync the contents, rename over the target (atomic on POSIX
/// filesystems), then fsync the directory so the rename itself survives
/// a crash. Without the two fsyncs a power cut shortly after the rename
/// can legally surface an *empty* checkpoint — the rename's metadata can
/// reach disk before the temp file's data blocks do.
pub fn write_checkpoint(path: &Path, content: &str) -> std::io::Result<()> {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => Path::new("."),
    };
    std::fs::create_dir_all(dir)?;
    let tmp = path.with_extension("json.tmp");
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(content.as_bytes())?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, path)?;
    #[cfg(unix)]
    std::fs::File::open(dir)?.sync_all()?;
    Ok(())
}

/// Runs a single-process (unsharded) sweep: seeds already present in
/// `resume` are reused verbatim, the rest are executed across `threads`
/// workers, and the returned report is identical no matter the thread
/// count or how the work was split across interruptions.
///
/// With `checkpoint`, the partial report is persisted after every
/// finished seed and the final report overwrites it at the end.
pub fn run_sweep(
    scenario: &Scenario,
    name: &str,
    scale: &str,
    seeds: &[u64],
    threads: usize,
    checkpoint: Option<&Path>,
    resume: Option<SweepReport>,
) -> SweepReport {
    run_sweep_observed(
        scenario, name, scale, seeds, threads, checkpoint, resume, None, None,
    )
}

/// [`run_sweep`] with observability hooks: workers bump the session's
/// counters and profile into per-worker trees, and a monitor thread
/// appends heartbeats while they run.
///
/// With `record`, each *freshly executed* seed also writes its sealed
/// event trace to `<record>/trace-<scenario>-s<seed>.bin` (recording
/// never perturbs the summary, so resume invariance holds). Seeds
/// already present in `resume` are reused verbatim and are **not**
/// re-recorded — rerun with `--fresh` to capture a complete trace set.
#[allow(clippy::too_many_arguments)]
pub fn run_sweep_observed(
    scenario: &Scenario,
    name: &str,
    scale: &str,
    seeds: &[u64],
    threads: usize,
    checkpoint: Option<&Path>,
    resume: Option<SweepReport>,
    obs: Option<&SweepObs<'_>>,
    record: Option<&Path>,
) -> SweepReport {
    let plan = SweepReport::new(name, scale, seeds.to_vec());
    run_sweep_plan(scenario, plan, threads, checkpoint, resume, obs, record)
}

/// Runs one shard of a campaign: the seed slice is computed from the
/// topology tag, and the checkpoint carries the tag so `sweep merge` can
/// validate the reassembled campaign.
pub fn run_sweep_shard(
    scenario: &Scenario,
    name: &str,
    scale: &str,
    shard: ShardTag,
    threads: usize,
    checkpoint: Option<&Path>,
    resume: Option<SweepReport>,
) -> SweepReport {
    run_sweep_shard_observed(
        scenario, name, scale, shard, threads, checkpoint, resume, None, None,
    )
}

/// [`run_sweep_shard`] with observability hooks and optional per-seed
/// trace recording (see [`run_sweep_observed`]).
#[allow(clippy::too_many_arguments)]
pub fn run_sweep_shard_observed(
    scenario: &Scenario,
    name: &str,
    scale: &str,
    shard: ShardTag,
    threads: usize,
    checkpoint: Option<&Path>,
    resume: Option<SweepReport>,
    obs: Option<&SweepObs<'_>>,
    record: Option<&Path>,
) -> SweepReport {
    let plan = SweepReport::new_shard(name, scale, shard);
    run_sweep_plan(scenario, plan, threads, checkpoint, resume, obs, record)
}

/// Everything a heartbeat needs that doesn't change while the sweep
/// runs: destination path and the identity/topology fields.
struct HeartbeatCtx {
    path: PathBuf,
    scenario: String,
    scale: String,
    shard: u32,
    shards: u32,
    seeds_total: u64,
}

impl HeartbeatCtx {
    /// Snapshots the live counters into one heartbeat record and appends
    /// it. Best-effort: telemetry failures never fail the sweep.
    fn emit(
        &self,
        obs: &SweepObs<'_>,
        shared: &Mutex<SweepReport>,
        last_seed: &AtomicU64,
        polls_at_start: u64,
        started: std::time::Instant,
    ) {
        let seeds_done = shared
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .completed
            .len() as u64;
        let polls = obs.session.core.polls_started.get();
        let elapsed = started.elapsed().as_secs_f64();
        let hb = Heartbeat {
            unix_ms: unix_ms_now(),
            scenario: self.scenario.clone(),
            scale: self.scale.clone(),
            shard: self.shard,
            shards: self.shards,
            seeds_done,
            seeds_total: self.seeds_total,
            last_seed: last_seed.load(Ordering::Relaxed),
            polls,
            events: obs.session.engine.events_executed.get(),
            polls_per_sec: if elapsed > 0.0 {
                (polls - polls_at_start) as f64 / elapsed
            } else {
                0.0
            },
            vm_rss_kb: current_rss_kb(),
            arena_live: obs.session.engine.arena_live.get(),
            arena_total: obs.session.engine.arena_total.get(),
        };
        let _ = hb.append_to(&self.path);
    }
}

#[allow(clippy::too_many_arguments)]
fn run_sweep_plan(
    scenario: &Scenario,
    mut plan: SweepReport,
    threads: usize,
    checkpoint: Option<&Path>,
    resume: Option<SweepReport>,
    obs: Option<&SweepObs<'_>>,
    record: Option<&Path>,
) -> SweepReport {
    if let Some(mut prior) = resume {
        let seeds = plan.seeds.clone();
        prior.restrict_to(&seeds);
        plan.completed = prior.completed;
    }
    let todo: Vec<u64> = plan
        .seeds
        .iter()
        .copied()
        .filter(|s| !plan.completed.iter().any(|(done, _)| done == s))
        .collect();
    let crash_hook = CrashHook::from_env(plan.shard.as_ref().map(|t| t.index));

    // Heartbeat context is frozen before the plan moves into the lock.
    let hb_ctx = obs.and_then(|o| o.telemetry.as_ref()).map(|tele| {
        let _ = std::fs::create_dir_all(&tele.dir);
        let shard = plan.shard.as_ref().map(|t| (t.index, t.count));
        HeartbeatCtx {
            path: heartbeat_path(&tele.dir, &plan.scenario, shard),
            scenario: plan.scenario.clone(),
            scale: plan.scale.clone(),
            shard: shard.map_or(1, |(i, _)| i as u32),
            shards: shard.map_or(1, |(_, n)| n as u32),
            seeds_total: plan.seeds.len() as u64,
        }
    });
    let hb_interval = obs
        .and_then(|o| o.telemetry.as_ref())
        .map(|t| t.interval)
        .unwrap_or_default();

    // Trace identity is frozen before the plan moves into the lock; the
    // directory is created up front so a bad path warns once, not per seed.
    let record_ctx = record.map(|dir| {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!(
                "warning: cannot create trace directory {}: {e}",
                dir.display()
            );
        }
        (dir, plan.scenario.clone(), plan.scale.clone())
    });
    let run_length_ms = scenario.run_length.as_millis();

    let shared = Mutex::new(plan);
    let done_here = AtomicUsize::new(0);
    let last_seed = AtomicU64::new(0);
    let cursor = AtomicUsize::new(0);
    let stop_monitor = AtomicBool::new(false);
    let threads = threads.max(1).min(todo.len().max(1));
    std::thread::scope(|outer| {
        // The heartbeat monitor runs beside the workers, not among them:
        // protocol counters advance *during* a seed, so its records show
        // progress even while every worker is deep inside a long run.
        if let (Some(ctx), Some(o)) = (&hb_ctx, obs) {
            let (shared, stop, last_seed) = (&shared, &stop_monitor, &last_seed);
            let polls_at_start = o.session.core.polls_started.get();
            let started = std::time::Instant::now();
            outer.spawn(move || {
                ctx.emit(o, shared, last_seed, polls_at_start, started);
                while !stop.load(Ordering::Relaxed) {
                    let mut slept = std::time::Duration::ZERO;
                    while slept < hb_interval && !stop.load(Ordering::Relaxed) {
                        let step = std::time::Duration::from_millis(25);
                        std::thread::sleep(step);
                        slept += step;
                    }
                    ctx.emit(o, shared, last_seed, polls_at_start, started);
                }
                // One closing record so the file always ends with the
                // sweep's final state.
                ctx.emit(o, shared, last_seed, polls_at_start, started);
            });
        }
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    // Profilers are single-threaded (`Rc`): each worker
                    // grows its own tree under a `worker-chunk` root and
                    // merges it into the shared one on the way out.
                    let wprof = obs.and_then(|o| o.profiler.map(|_| Profiler::shared()));
                    let ins = match obs {
                        Some(o) => o.session.instruments(wprof.clone()),
                        None => Instruments::default(),
                    };
                    if let Some(o) = obs {
                        o.session.sweep_chunks.inc();
                    }
                    let chunk = Span::enter(&wprof, "worker-chunk");
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&seed) = todo.get(i) else {
                            break;
                        };
                        let summary = match &record_ctx {
                            Some((dir, name, scale)) => {
                                // Recording never perturbs the run, so the
                                // summary stays byte-identical to the
                                // untraced path (resume invariance holds).
                                let meta = TraceMeta {
                                    scenario: name.clone(),
                                    scale: scale.clone(),
                                    seed,
                                    run_length_ms,
                                };
                                let (summary, _, trace) =
                                    run_once_recorded_observed(scenario, seed, &meta, &ins);
                                let path = dir.join(format!("trace-{name}-s{seed}.bin"));
                                // Best-effort like checkpoints: a failing
                                // disk must not kill the sweep.
                                if let Err(e) = trace.write_to(&path) {
                                    eprintln!(
                                        "warning: trace write to {} failed: {e}",
                                        path.display()
                                    );
                                }
                                summary
                            }
                            None if ins.is_off() => run_once(scenario, seed),
                            None => run_once_observed(scenario, seed, &ins).0,
                        };
                        let mut plan = shared
                            .lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner());
                        plan.record(seed, summary);
                        last_seed.store(seed, Ordering::Relaxed);
                        if let Some(o) = obs {
                            o.session.sweep_seeds.inc();
                        }
                        let done = done_here.fetch_add(1, Ordering::Relaxed) + 1;
                        if let Some(hook) = &crash_hook {
                            // Test-only fault injection: dies here, holding the
                            // lock, leaving a torn temp file — the worst-case
                            // `kill -9` mid-checkpoint-write.
                            hook.maybe_crash(done, checkpoint, &plan.to_json());
                        }
                        if let Some(path) = checkpoint {
                            // Best-effort mid-run persistence; a failing disk must
                            // not kill the sweep, but it must not be silent either
                            // (the caller re-verifies the final file).
                            if let Err(e) = write_checkpoint(path, &plan.to_json()) {
                                eprintln!(
                                    "warning: checkpoint write to {} failed: {e}",
                                    path.display()
                                );
                            }
                        }
                    }
                    drop(chunk);
                    if let (Some(wp), Some(merged)) = (wprof, obs.and_then(|o| o.profiler)) {
                        merged
                            .lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner())
                            .absorb(&wp.borrow());
                    }
                });
            }
        });
        stop_monitor.store(true, Ordering::Relaxed);
    });

    let report = shared
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    if let Some(path) = checkpoint {
        if let Err(e) = write_checkpoint(path, &report.to_json()) {
            eprintln!(
                "warning: final checkpoint write to {} failed: {e}",
                path.display()
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    fn tiny() -> Scenario {
        let mut s = Scenario::baseline(Scale::Quick, 2);
        s.cfg.n_peers = 25;
        s.run_length = Duration::from_days(120);
        s
    }

    fn summary(seed: u64) -> Summary {
        Summary {
            access_failure_probability: 1.0 / (seed as f64 * 3.0 + 0.1),
            mean_time_between_successes: Some(Duration::from_days(seed)),
            gap_p50: Some(Duration::from_days(seed)),
            gap_p90: seed
                .is_multiple_of(2)
                .then(|| Duration::from_days(2 * seed)),
            successful_polls: 10 * seed,
            failed_polls: seed,
            alarms: 0,
            loyal_effort_secs: 1.5 * seed as f64,
            adversary_effort_secs: 0.0,
        }
    }

    #[test]
    fn seed_range_parsing() {
        assert_eq!(parse_seed_range("1..4").unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(parse_seed_range("7..7").unwrap(), vec![7]);
        assert_eq!(parse_seed_range("3").unwrap(), vec![1, 2, 3]);
        assert!(parse_seed_range("4..1").is_err());
        assert!(parse_seed_range("0").is_err());
        assert!(parse_seed_range("x..y").is_err());
    }

    #[test]
    fn report_json_roundtrips_exactly() {
        let mut report = SweepReport::new("scale-10k-baseline", "quick", vec![1, 2, 3, 4]);
        report.record(3, summary(3));
        report.record(1, summary(1));
        report.record(2, summary(2));
        let text = report.to_json();
        let back = SweepReport::from_json(&text).expect("parses");
        assert_eq!(
            back, report,
            "exact struct round-trip (float bits included)"
        );
        assert_eq!(back.to_json(), text, "byte round-trip");
        assert!(!report.is_complete());
        report.record(4, summary(4));
        assert!(report.is_complete());
    }

    #[test]
    fn shard_report_roundtrips_exactly() {
        let tag = ShardTag::new(2, 3, vec![1, 2, 3, 4, 5, 6, 7]).expect("valid topology");
        let mut report = SweepReport::new_shard("baseline", "quick", tag.clone());
        assert_eq!(report.seeds, tag.seeds(), "seed list is the shard slice");
        for &s in &report.seeds.clone() {
            report.record(s, summary(s));
        }
        let text = report.to_json();
        let back = SweepReport::from_json(&text).expect("parses");
        assert_eq!(back, report);
        assert_eq!(back.to_json(), text, "byte round-trip");
        assert_eq!(back.shard.as_ref(), Some(&tag));
    }

    #[test]
    fn foreign_format_tags_are_rejected() {
        let report = SweepReport::new("x", "quick", vec![1]);
        let text = report.to_json();
        let e = SweepReport::from_json(&text.replace(FORMAT, "lockss-sweep-v0")).unwrap_err();
        assert!(e.contains("different grammar version"), "got: {e}");
        // A pre-fabric checkpoint (no format tag at all) is also refused.
        let stripped = text.replace("  \"format\": \"lockss-sweep-v1\",\n", "");
        let e = SweepReport::from_json(&stripped).unwrap_err();
        assert!(e.contains("missing 'format' tag"), "got: {e}");
    }

    #[test]
    fn record_is_sorted_and_replaces() {
        let mut report = SweepReport::new("x", "quick", vec![5, 1, 3, 1]);
        assert_eq!(report.seeds, vec![1, 3, 5], "sorted, deduped");
        report.record(5, summary(5));
        report.record(1, summary(1));
        assert_eq!(report.completed[0].0, 1);
        assert_eq!(report.completed[1].0, 5);
        report.record(5, summary(2));
        assert_eq!(report.completed.len(), 2);
        assert_eq!(report.completed[1].1, summary(2));
    }

    #[test]
    fn merged_reduces_in_seed_order() {
        let mut a = SweepReport::new("x", "quick", vec![1, 2]);
        a.record(2, summary(2));
        a.record(1, summary(1));
        let mut b = SweepReport::new("x", "quick", vec![1, 2]);
        b.record(1, summary(1));
        b.record(2, summary(2));
        assert_eq!(a.merged(), b.merged(), "completion order is irrelevant");
        assert_eq!(SweepReport::new("x", "quick", vec![1]).merged(), None);
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        let s = tiny();
        let seeds = [1, 2, 3, 4];
        let one = run_sweep(&s, "tiny", "quick", &seeds, 1, None, None);
        let eight = run_sweep(&s, "tiny", "quick", &seeds, 8, None, None);
        assert_eq!(
            one.to_json(),
            eight.to_json(),
            "reports must be byte-identical"
        );
    }

    #[test]
    fn resume_equals_uninterrupted() {
        let s = tiny();
        let seeds = [1, 2, 3];
        let full = run_sweep(&s, "tiny", "quick", &seeds, 2, None, None);
        // "Interrupted": only seed 2 finished before the crash.
        let partial = run_sweep(&s, "tiny", "quick", &[2], 1, None, None);
        let resumed = run_sweep(&s, "tiny", "quick", &seeds, 2, None, Some(partial));
        assert_eq!(resumed.to_json(), full.to_json());
    }

    #[test]
    fn checkpoint_file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("lockss-sweep-{}", std::process::id()));
        let path = dir.join("sweep-test.json");
        let s = tiny();
        let report = run_sweep(&s, "tiny", "quick", &[1, 2], 2, Some(&path), None);
        let loaded = load_checkpoint(&path, "tiny", "quick", None).expect("checkpoint exists");
        assert_eq!(loaded, report);
        // A mismatched scenario name is ignored.
        assert!(load_checkpoint(&path, "other", "quick", None).is_none());
        // So is a shard/unsharded mismatch.
        let tag = ShardTag::new(1, 2, vec![1, 2]).unwrap();
        assert!(load_checkpoint(&path, "tiny", "quick", Some(&tag)).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Regression for the fsync-before-rename fix: the write leaves no
    /// temp residue, survives a pre-existing torn temp file from an
    /// earlier crash, and a torn *target* (what an unsynced rename can
    /// legally surface after power loss) is ignored on resume instead of
    /// trusted.
    #[test]
    fn checkpoint_write_survives_torn_writes() {
        let dir = std::env::temp_dir().join(format!("lockss-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cp.json");
        let tmp = path.with_extension("json.tmp");

        let mut report = SweepReport::new("tiny", "quick", vec![1, 2]);
        report.record(1, summary(1));
        let full = report.to_json();

        // A torn temp file left by a crashed writer must not leak into
        // the next write.
        std::fs::write(&tmp, &full[..full.len() / 2]).unwrap();
        write_checkpoint(&path, &full).expect("write succeeds");
        assert!(!tmp.exists(), "temp file renamed away, no residue");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), full);
        assert_eq!(
            load_checkpoint(&path, "tiny", "quick", None).expect("loads"),
            report
        );

        // A torn target — truncated mid-document — is a fresh start, not
        // a parse panic and not a corrupt resume.
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(load_checkpoint(&path, "tiny", "quick", None).is_none());
        assert!(SweepReport::from_json(&full[..full.len() / 2]).is_err());
        // An *empty* target (the exact artifact the missing fsync could
        // produce) is likewise ignored.
        std::fs::write(&path, "").unwrap();
        assert!(load_checkpoint(&path, "tiny", "quick", None).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_reader_rejects_garbage() {
        assert!(json::parse("{").is_err());
        assert!(json::parse("{} trailing").is_err());
        assert!(json::parse("{\"a\": }").is_err());
        assert!(SweepReport::from_json("{\"sweep\": 3}").is_err());
    }
}

//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (§7).
//!
//! Each binary (`fig2` … `fig8`, `table1`) builds the §6.3 world, installs
//! the relevant adversary, runs several seeds in parallel, and prints the
//! same rows/series the paper reports, plus a CSV copy under `results/`.
//!
//! Scale is controlled by `LOCKSS_SCALE` (or a `--scale` argument):
//! `quick` for CI smoke runs, `default` for laptop-scale shape
//! reproduction, `paper` for the full §6.3 parameters. The reproduction
//! criterion is *shape* (orderings, approximate factors, crossovers), not
//! the absolute numbers of the authors' 2004 testbed — see EXPERIMENTS.md.

pub mod cache;
pub mod layering;
pub mod runner;
pub mod scale;
pub mod scenario;
pub mod sweeps;

pub use runner::{run_scenario, MeasuredPoint};
pub use scale::Scale;
pub use scenario::{AttackSpec, Scenario};

use std::io::Write as _;
use std::path::Path;

/// Writes a rendered table and its CSV twin under `results/`.
pub fn save_results(name: &str, rendered: &str, csv: &str) {
    let dir = Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let write = |path: &Path, content: &str| {
        if let Ok(mut f) = std::fs::File::create(path) {
            let _ = f.write_all(content.as_bytes());
        }
    };
    write(&dir.join(format!("{name}.txt")), rendered);
    write(&dir.join(format!("{name}.csv")), csv);
}

//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (§7) and runs the scenario registry beyond it.
//!
//! Every runnable world is a named entry in the [`ScenarioRegistry`] —
//! baselines, each figure point's representative scenario, the
//! dynamic-environment attacks, and composite campaigns built from the
//! composable [`AttackSpec`]. The `lockss-sim` binary lists, describes,
//! and runs them (`list` / `describe <name>` / `run <name> --json`),
//! writing per-scenario JSON summaries under `results/`.
//!
//! Each figure binary (`fig2` … `fig8`, `table1`) derives its sweep grid
//! from the registered baseline, installs the relevant adversary, runs
//! several seeds in parallel, and prints the same rows/series the paper
//! reports, plus a CSV copy under `results/`.
//!
//! Scale is controlled by `LOCKSS_SCALE` (or a `--scale` argument):
//! `quick` for CI smoke runs, `default` for laptop-scale shape
//! reproduction, `paper` for the full §6.3 parameters. The reproduction
//! criterion is *shape* (orderings, approximate factors, crossovers), not
//! the absolute numbers of the authors' 2004 testbed — see EXPERIMENTS.md.

pub mod cache;
pub mod fuzz;
pub mod layering;
pub mod obs;
pub mod recovery;
pub mod registry;
pub mod runner;
pub mod scale;
pub mod scenario;
pub mod spec;
pub mod sweep;
pub mod sweeps;

pub use obs::{heartbeat_path, ObsSession, SweepObs, Telemetry};
pub use recovery::{run_recovery_study, RecoveryReport, RecoveryStudy};
pub use registry::{ScenarioEntry, ScenarioRegistry};
pub use runner::{run_scenario, Instruments, MeasuredPoint};
pub use scale::Scale;
pub use scenario::{phased, AttackSpec, PhasedAttack, Scenario};
pub use spec::{ScenarioSpec, SpecError, WorldSpec};
pub use sweep::{
    dispatch, jobfile, merge_files, run_sweep, run_sweep_shard, DispatchPlan, ShardTag, SweepReport,
};

use std::io::Write as _;
use std::path::Path;

/// Writes a rendered table and its CSV twin under `results/`.
pub fn save_results(name: &str, rendered: &str, csv: &str) {
    let dir = Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let write = |path: &Path, content: &str| {
        if let Ok(mut f) = std::fs::File::create(path) {
            let _ = f.write_all(content.as_bytes());
        }
    };
    write(&dir.join(format!("{name}.txt")), rendered);
    write(&dir.join(format!("{name}.csv")), csv);
}

//! The admission-control filter (§5.1).
//!
//! Decides, per AU, whether an arriving poll invitation is even
//! *considered*. The decision sequence is:
//!
//! 1. introduced identities bypass drops and refractory periods, consuming
//!    the introduction;
//! 2. during a refractory period, unknown and in-debt pollers are
//!    auto-rejected for free;
//! 3. unknown pollers are dropped with probability 0.90, in-debt pollers
//!    with 0.80 (whitewashing is worse than staying in debt);
//! 4. an admitted unknown/in-debt invitation starts a new refractory
//!    period (at most one such admission per period);
//! 5. known even/credit pollers bypass drops but are rate-limited to one
//!    admission per refractory period each (the self-clocking liability
//!    cap).

use lockss_sim::SimRng;
use lockss_sim::SimTime;
use std::collections::BTreeMap;

use crate::config::ProtocolConfig;
use crate::reputation::{Grade, KnownPeers, Standing};
use crate::types::Identity;

/// Outcome of the admission filter for one invitation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AdmissionOutcome {
    /// Proceed to consideration (session, effort verification, schedule).
    Admitted {
        /// The invitation was admitted by consuming an introduction.
        via_introduction: bool,
    },
    /// Silently dropped by the random-drop filter.
    RandomDrop,
    /// Auto-rejected: refractory period active for unknown/in-debt.
    Refractory,
    /// Rate-limited: this known peer already used its admission slot.
    RateLimited,
}

/// Per-AU admission state of one peer.
#[derive(Clone, Debug, Default)]
pub struct AdmissionControl {
    /// End of the current refractory period, if one is running.
    refractory_until: Option<SimTime>,
    /// Last admission instant per known identity (the per-peer liability
    /// cap).
    last_admission: BTreeMap<Identity, SimTime>,
    /// Outstanding introductions: introducee -> (introducer, when).
    introductions: BTreeMap<Identity, (Identity, SimTime)>,
    /// Counters for diagnostics.
    pub admitted_unknown_or_debt: u64,
    pub admitted_known: u64,
    pub admitted_introduced: u64,
    pub dropped: u64,
    pub rejected_refractory: u64,
}

impl AdmissionControl {
    /// Fresh state.
    pub fn new() -> AdmissionControl {
        AdmissionControl::default()
    }

    /// Records an introduction of `introducee` by `introducer` (§5.1),
    /// evicting the oldest if the cap is reached.
    pub fn introduce(
        &mut self,
        introducee: Identity,
        introducer: Identity,
        now: SimTime,
        cfg: &ProtocolConfig,
    ) {
        if self.introductions.len() >= cfg.max_introductions
            && !self.introductions.contains_key(&introducee)
        {
            if let Some((&oldest, _)) = self.introductions.iter().min_by_key(|(_, (_, when))| *when)
            {
                self.introductions.remove(&oldest);
            }
        }
        self.introductions.insert(introducee, (introducer, now));
    }

    /// Number of outstanding introductions.
    pub fn outstanding_introductions(&self) -> usize {
        self.introductions.len()
    }

    /// True if a refractory period is active at `now`.
    pub fn in_refractory(&self, now: SimTime) -> bool {
        matches!(self.refractory_until, Some(until) if now < until)
    }

    /// When the current refractory period ends, if one is running. (The
    /// paper's adversary has insider information, §3.1 — attack strategies
    /// may time their bursts with this.)
    pub fn refractory_until(&self) -> Option<SimTime> {
        self.refractory_until
    }

    /// Consumes the introduction for `introducee`, applying the §5.1
    /// forgetting rules: all other introductions by the same introducer are
    /// forgotten, as are all introductions of this introducee by others.
    fn consume_introduction(&mut self, introducee: Identity) -> bool {
        let Some((introducer, _)) = self.introductions.remove(&introducee) else {
            return false;
        };
        self.introductions.retain(|_, (by, _)| *by != introducer);
        true
    }

    /// Runs the admission filter for an invitation from `poller`.
    ///
    /// `known` is this peer's per-AU known-peers list; `now` the arrival
    /// time. Mutates refractory/rate-limit state on admission.
    pub fn filter(
        &mut self,
        poller: Identity,
        known: &KnownPeers,
        now: SimTime,
        cfg: &ProtocolConfig,
        rng: &mut SimRng,
    ) -> AdmissionOutcome {
        // 1. Introductions bypass random drops and refractory periods.
        if !cfg.ablation.no_introductions && self.introductions.contains_key(&poller) {
            self.consume_introduction(poller);
            self.admitted_introduced += 1;
            // The introduced admission still counts against the identity's
            // own rate limit going forward.
            self.last_admission.insert(poller, now);
            return AdmissionOutcome::Admitted {
                via_introduction: true,
            };
        }

        let standing = if cfg.ablation.no_reputation {
            // Ablated reputation: any known identity passes as `even`.
            match known.standing(poller, now, cfg.grade_decay) {
                Standing::Unknown => Standing::Unknown,
                Standing::Known(_) => Standing::Known(Grade::Even),
            }
        } else {
            known.standing(poller, now, cfg.grade_decay)
        };
        let privileged = matches!(
            standing,
            Standing::Known(Grade::Even) | Standing::Known(Grade::Credit)
        );

        if privileged {
            // 5. Per-peer rate limit: one admission per refractory period.
            if let Some(&last) = self.last_admission.get(&poller) {
                if now.since(last) < cfg.refractory {
                    return AdmissionOutcome::RateLimited;
                }
            }
            self.last_admission.insert(poller, now);
            self.admitted_known += 1;
            return AdmissionOutcome::Admitted {
                via_introduction: false,
            };
        }

        // Unknown or in-debt path.
        // 2. Refractory auto-reject.
        if !cfg.ablation.no_refractory && self.in_refractory(now) {
            self.rejected_refractory += 1;
            return AdmissionOutcome::Refractory;
        }
        // 3. Random drops.
        let drop_p = match standing {
            Standing::Unknown => cfg.drop_unknown,
            Standing::Known(_) => cfg.drop_debt,
        };
        if rng.chance(drop_p) {
            self.dropped += 1;
            return AdmissionOutcome::RandomDrop;
        }
        // 4. Admit and start the refractory period.
        if !cfg.ablation.no_refractory {
            self.refractory_until = Some(now + cfg.refractory);
        }
        self.last_admission.insert(poller, now);
        self.admitted_unknown_or_debt += 1;
        AdmissionOutcome::Admitted {
            via_introduction: false,
        }
    }

    /// Drops bookkeeping for identities not seen since `cutoff` (bounds
    /// memory on long runs).
    pub fn compact(&mut self, cutoff: SimTime) {
        self.last_admission.retain(|_, &mut t| t >= cutoff);
        self.introductions.retain(|_, (_, t)| *t >= cutoff);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockss_sim::Duration;

    fn cfg() -> ProtocolConfig {
        ProtocolConfig::default()
    }

    fn t(hours: u64) -> SimTime {
        SimTime::ZERO + Duration::from_hours(hours)
    }

    fn seeded_known(grade: Grade) -> KnownPeers {
        let mut kp = KnownPeers::new();
        kp.seed(Identity::loyal(1), grade, t(0));
        kp
    }

    #[test]
    fn even_peer_admitted_then_rate_limited() {
        let mut ac = AdmissionControl::new();
        let kp = seeded_known(Grade::Even);
        let mut rng = SimRng::seed_from_u64(1);
        let id = Identity::loyal(1);
        assert_eq!(
            ac.filter(id, &kp, t(1), &cfg(), &mut rng),
            AdmissionOutcome::Admitted {
                via_introduction: false
            }
        );
        assert_eq!(
            ac.filter(id, &kp, t(2), &cfg(), &mut rng),
            AdmissionOutcome::RateLimited,
            "second admission within the refractory period"
        );
        // After the refractory period the peer is admissible again.
        assert_eq!(
            ac.filter(id, &kp, t(26), &cfg(), &mut rng),
            AdmissionOutcome::Admitted {
                via_introduction: false
            }
        );
    }

    #[test]
    fn unknown_peer_faces_drops_then_refractory() {
        let mut ac = AdmissionControl::new();
        let kp = KnownPeers::new();
        let mut rng = SimRng::seed_from_u64(2);
        let mut admitted = 0;
        let mut drops = 0;
        // Try many distinct unknown identities at the same hour: at most
        // one gets admitted, which starts the refractory period.
        for i in 0..100 {
            match ac.filter(
                Identity(Identity::MINION_BASE + i),
                &kp,
                t(1),
                &cfg(),
                &mut rng,
            ) {
                AdmissionOutcome::Admitted { .. } => admitted += 1,
                AdmissionOutcome::RandomDrop => drops += 1,
                AdmissionOutcome::Refractory => {}
                AdmissionOutcome::RateLimited => panic!("unknowns are not rate-limited"),
            }
        }
        assert_eq!(admitted, 1, "refractory allows exactly one admission");
        assert!(drops > 0);
        assert!(ac.in_refractory(t(2)));
        assert!(!ac.in_refractory(t(30)));
    }

    #[test]
    fn drop_rates_match_config() {
        let cfg = cfg();
        let kp = KnownPeers::new();
        let mut rng = SimRng::seed_from_u64(3);
        let mut admitted = 0u32;
        let trials = 20_000;
        for i in 0..trials {
            // Fresh admission control each time so refractory never blocks.
            let mut ac = AdmissionControl::new();
            if matches!(
                ac.filter(
                    Identity(Identity::MINION_BASE + i),
                    &kp,
                    t(0),
                    &cfg,
                    &mut rng
                ),
                AdmissionOutcome::Admitted { .. }
            ) {
                admitted += 1;
            }
        }
        let rate = admitted as f64 / trials as f64;
        assert!((rate - 0.10).abs() < 0.01, "unknown admit rate {rate}");
    }

    #[test]
    fn in_debt_peers_use_the_softer_drop() {
        let cfg = cfg();
        let mut kp = KnownPeers::new();
        let id = Identity::loyal(7);
        kp.seed(id, Grade::Debt, t(0));
        let mut rng = SimRng::seed_from_u64(4);
        let mut admitted = 0u32;
        let trials = 20_000;
        for _ in 0..trials {
            let mut ac = AdmissionControl::new();
            if matches!(
                ac.filter(id, &kp, t(0), &cfg, &mut rng),
                AdmissionOutcome::Admitted { .. }
            ) {
                admitted += 1;
            }
        }
        let rate = admitted as f64 / trials as f64;
        assert!((rate - 0.20).abs() < 0.01, "in-debt admit rate {rate}");
    }

    #[test]
    fn introduction_bypasses_refractory_and_drops() {
        let mut ac = AdmissionControl::new();
        let kp = KnownPeers::new();
        let mut rng = SimRng::seed_from_u64(5);
        let c = cfg();
        // Exhaust the unknown slot to start a refractory period.
        loop {
            let out = ac.filter(Identity(Identity::MINION_BASE), &kp, t(0), &c, &mut rng);
            if matches!(out, AdmissionOutcome::Admitted { .. }) {
                break;
            }
        }
        assert!(ac.in_refractory(t(1)));
        let introducee = Identity::loyal(9);
        ac.introduce(introducee, Identity::loyal(2), t(1), &c);
        assert_eq!(
            ac.filter(introducee, &kp, t(1), &c, &mut rng),
            AdmissionOutcome::Admitted {
                via_introduction: true
            }
        );
        // The introduction is consumed.
        assert_eq!(ac.outstanding_introductions(), 0);
    }

    #[test]
    fn consuming_forgets_same_introducer_and_same_introducee() {
        let mut ac = AdmissionControl::new();
        let c = cfg();
        let alice = Identity::loyal(1);
        let bob = Identity::loyal(2);
        let carol = Identity::loyal(3);
        let dave = Identity::loyal(4);
        // Alice introduces Bob and Carol; Dave also introduces Bob... but
        // the map keys by introducee, so Dave's introduction of Bob
        // replaces Alice's. Use a distinct introducee for the "same
        // introducer" rule instead.
        ac.introduce(bob, alice, t(0), &c);
        ac.introduce(carol, alice, t(1), &c);
        ac.introduce(dave, Identity::loyal(5), t(2), &c);
        assert_eq!(ac.outstanding_introductions(), 3);
        assert!(ac.consume_introduction(bob));
        // Carol (same introducer: Alice) is forgotten; Dave survives.
        assert_eq!(ac.outstanding_introductions(), 1);
        assert!(!ac.consume_introduction(carol));
        assert!(ac.consume_introduction(dave));
    }

    #[test]
    fn introduction_cap_evicts_oldest() {
        let mut ac = AdmissionControl::new();
        let mut c = cfg();
        c.max_introductions = 2;
        ac.introduce(Identity::loyal(1), Identity::loyal(10), t(0), &c);
        ac.introduce(Identity::loyal(2), Identity::loyal(11), t(1), &c);
        ac.introduce(Identity::loyal(3), Identity::loyal(12), t(2), &c);
        assert_eq!(ac.outstanding_introductions(), 2);
        assert!(
            !ac.introductions.contains_key(&Identity::loyal(1)),
            "oldest evicted"
        );
    }

    #[test]
    fn compact_bounds_memory() {
        let mut ac = AdmissionControl::new();
        let c = cfg();
        let kp = seeded_known(Grade::Even);
        let mut rng = SimRng::seed_from_u64(8);
        let _ = ac.filter(Identity::loyal(1), &kp, t(0), &c, &mut rng);
        ac.introduce(Identity::loyal(2), Identity::loyal(3), t(0), &c);
        ac.compact(t(100));
        assert_eq!(ac.outstanding_introductions(), 0);
        assert!(ac.last_admission.is_empty());
    }
}

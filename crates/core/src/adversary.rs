//! The adversary interface.
//!
//! Attack strategies (implemented in `lockss-adversary`) plug into the
//! world through this trait. The adversary owns minion nodes (created with
//! [`crate::world::World::add_minions`]) that sit *outside* the loyal
//! population: loyal peers never invite them to vote, and the adversary
//! only ever invites loyal peers (§6.2). Its effort is charged to the
//! run's adversary ledger, its coordination is free and instantaneous
//! (total information awareness, §3.1).

use lockss_net::NodeId;
use lockss_sim::Engine;

use crate::msg::Message;
use crate::world::World;

/// An attack strategy.
pub trait Adversary {
    /// Human-readable strategy name (for reports).
    fn name(&self) -> &'static str;

    /// Called once after the world is built; schedule attack events here.
    fn begin(&mut self, world: &mut World, eng: &mut Engine<World>);

    /// A message from a loyal peer arrived at one of the adversary's
    /// minion nodes.
    fn on_message(
        &mut self,
        world: &mut World,
        eng: &mut Engine<World>,
        minion: NodeId,
        from: NodeId,
        msg: Message,
    ) {
        let _ = (world, eng, minion, from, msg);
    }

    /// A timer scheduled via [`schedule_adversary_timer`] fired.
    ///
    /// `tag` is strategy-defined (cycle phases, per-victim bursts, ...).
    fn on_timer(&mut self, world: &mut World, eng: &mut Engine<World>, tag: u64) {
        let _ = (world, eng, tag);
    }
}

/// Schedules a wake-up for the installed adversary after `delay`.
///
/// The event re-enters the adversary through [`Adversary::on_timer`] with
/// the given tag; if no adversary is installed when it fires, it is a
/// no-op.
///
/// The world's current *adversary channel* is captured with the timer and
/// restored when it fires, so a composite adversary can stamp a channel per
/// child strategy, dispatch `on_timer` by [`World::adversary_channel`], and
/// let children keep their strategy-private tag encodings without
/// collisions. Simple (non-composite) adversaries run entirely on the
/// default channel 0 and never notice any of this.
pub fn schedule_adversary_timer(
    world: &World,
    eng: &mut Engine<World>,
    delay: lockss_sim::Duration,
    tag: u64,
) {
    let channel = world.adversary_channel();
    eng.schedule_in(delay, move |w: &mut World, e| {
        if let Some(mut adv) = w.adversary.take() {
            w.set_adversary_channel(channel);
            w.trace(e, || crate::trace::TraceEvent::AdversaryTimer {
                channel,
                tag,
            });
            adv.on_timer(w, e, tag);
            w.adversary = Some(adv);
        }
    });
}

/// The no-attack adversary (baseline runs).
#[derive(Default)]
pub struct NullAdversary;

impl Adversary for NullAdversary {
    fn name(&self) -> &'static str {
        "none"
    }

    fn begin(&mut self, _world: &mut World, _eng: &mut Engine<World>) {}
}

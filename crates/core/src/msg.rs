//! Protocol messages (§4.1's time-line: Poll, PollAck, PollProof, Vote,
//! RepairRequest, Repair, EvaluationReceipt).
//!
//! In simulation mode, effort proofs are carried as validity flags (their
//! cost is charged through `lockss-effort`, exactly as the paper's Narses
//! runs modelled them) and a vote carries the voter's damage-set snapshot,
//! from which block-hash agreement is computed set-wise.

use lockss_effort::CostModel;
use lockss_sim::SimTime;
use lockss_storage::AuId;

use crate::types::{Identity, PollId};

/// A protocol message body.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Invitation into a poll, carrying the introductory effort proof
    /// (§5.1: sized to cover the voter's wait for the PollProof).
    Poll {
        au: AuId,
        poll: PollId,
        /// The identity the poller presents (reputation is tracked on
        /// identities; the adversary mints them freely).
        poller: Identity,
        /// Whether the introductory effort proof verifies (the admission
        /// flood adversary sends garbage).
        intro_valid: bool,
        /// When the poller needs the vote by.
        vote_deadline: SimTime,
    },
    /// Acceptance or refusal of an invitation (§4.1: the voter commits and
    /// reserves local resources on acceptance).
    PollAck {
        au: AuId,
        poll: PollId,
        accept: bool,
    },
    /// The remaining effort proof plus the vote-construction nonce.
    PollProof {
        au: AuId,
        poll: PollId,
        remaining_valid: bool,
    },
    /// A vote: running block hashes of the voter's replica, modelled as the
    /// damage-set snapshot, plus discovery nominations (§4.2).
    Vote {
        au: AuId,
        poll: PollId,
        /// The voting identity.
        voter: Identity,
        /// Damaged block indices of the voter's replica (sorted).
        damage: Vec<u64>,
        /// Identities nominated from the voter's reference list.
        nominations: Vec<Identity>,
        /// Whether the vote's embedded effort proof verifies.
        proof_valid: bool,
    },
    /// Request for a repair block from a disagreeing voter (§4.3).
    RepairRequest { au: AuId, poll: PollId, block: u64 },
    /// The repair block content.
    Repair { au: AuId, poll: PollId, block: u64 },
    /// Proof that the poller evaluated the vote: the MBF byproduct (§5.1).
    EvaluationReceipt { au: AuId, poll: PollId, valid: bool },
}

impl Message {
    /// The AU this message concerns.
    pub fn au(&self) -> AuId {
        match self {
            Message::Poll { au, .. }
            | Message::PollAck { au, .. }
            | Message::PollProof { au, .. }
            | Message::Vote { au, .. }
            | Message::RepairRequest { au, .. }
            | Message::Repair { au, .. }
            | Message::EvaluationReceipt { au, .. } => *au,
        }
    }

    /// The poll this message belongs to.
    pub fn poll(&self) -> PollId {
        match self {
            Message::Poll { poll, .. }
            | Message::PollAck { poll, .. }
            | Message::PollProof { poll, .. }
            | Message::Vote { poll, .. }
            | Message::RepairRequest { poll, .. }
            | Message::Repair { poll, .. }
            | Message::EvaluationReceipt { poll, .. } => *poll,
        }
    }

    /// Wire size in bytes under the cost model (drives transfer delays).
    pub fn wire_bytes(&self, cost: &CostModel) -> u64 {
        match self {
            // Invitation with an MBF introductory proof (~4 KB of witness).
            Message::Poll { .. } => 4_096,
            Message::PollAck { .. } => 256,
            // Remaining effort proof is the bulk of the poller's witness.
            Message::PollProof { .. } => 8_192,
            // One 20-byte running hash per block, plus nominations.
            Message::Vote { nominations, .. } => cost.vote_bytes() + 64 * nominations.len() as u64,
            Message::RepairRequest { .. } => 256,
            // A full block of content.
            Message::Repair { .. } => cost.block_bytes + 256,
            Message::EvaluationReceipt { .. } => 256,
        }
    }

    /// Short human-readable tag for tracing.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Poll { .. } => "Poll",
            Message::PollAck { .. } => "PollAck",
            Message::PollProof { .. } => "PollProof",
            Message::Vote { .. } => "Vote",
            Message::RepairRequest { .. } => "RepairRequest",
            Message::Repair { .. } => "Repair",
            Message::EvaluationReceipt { .. } => "EvaluationReceipt",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poll_msg() -> Message {
        Message::Poll {
            au: AuId(1),
            poll: PollId(9),
            poller: Identity::loyal(3),
            intro_valid: true,
            vote_deadline: SimTime::ZERO,
        }
    }

    #[test]
    fn accessors() {
        let m = poll_msg();
        assert_eq!(m.au(), AuId(1));
        assert_eq!(m.poll(), PollId(9));
        assert_eq!(m.kind(), "Poll");
    }

    #[test]
    fn vote_size_scales_with_blocks_and_nominations() {
        let cost = CostModel::default();
        let small = Message::Vote {
            au: AuId(0),
            poll: PollId(0),
            voter: Identity::loyal(2),
            damage: vec![],
            nominations: vec![],
            proof_valid: true,
        };
        let big = Message::Vote {
            au: AuId(0),
            poll: PollId(0),
            voter: Identity::loyal(2),
            damage: vec![],
            nominations: vec![Identity::loyal(1); 8],
            proof_valid: true,
        };
        assert_eq!(small.wire_bytes(&cost), cost.vote_bytes());
        assert_eq!(big.wire_bytes(&cost), cost.vote_bytes() + 512);
        // 500 blocks at 20 bytes each dominates.
        assert!(small.wire_bytes(&cost) > 10_000);
    }

    #[test]
    fn repair_carries_a_block() {
        let cost = CostModel::default();
        let m = Message::Repair {
            au: AuId(0),
            poll: PollId(0),
            block: 3,
        };
        assert!(m.wire_bytes(&cost) > cost.block_bytes);
    }
}
